"""Liquor-sales case study (paper section 7.4.3): pandemic buying shifts.

Run with::

    python examples/liquor_pandemic.py

Four explain-by attributes (bottle volume, pack size, category, vendor);
TSExplain surfaces that only bottle volume and pack size matter: people
switched to large packs when the pandemic hit, BV=1000 collapsed with the
March bar shutdown and rebounded after reopening.
"""

from __future__ import annotations

from repro import ExplainConfig, ExplainSession
from repro.datasets import load_liquor
from repro.viz import explanation_table, k_variance_table, segmentation_chart


def main() -> None:
    dataset = load_liquor()
    config = ExplainConfig.optimized(smoothing_window=dataset.smoothing_window)
    session = ExplainSession(
        dataset.relation,
        measure=dataset.measure,
        explain_by=dataset.explain_by,
        config=config,
    )
    result = session.explain()

    print(f"epsilon = {result.epsilon} candidates "
          f"({result.filtered_epsilon} after the support filter)")
    print(f"K = {result.k} picked by the elbow; "
          f"end-to-end latency {result.timings['total']:.2f}s\n")
    print(segmentation_chart(result))
    print()
    print(explanation_table(result))
    print()
    print(k_variance_table(result))

    attributes = {
        name
        for segment in result.segments
        for scored in segment.explanations
        for name in scored.explanation.attributes()
    }
    print(f"\nAttributes appearing in explanations: {sorted(attributes)}")
    print("(vendor_name and category_name were specified but carry no "
          "signal — TSExplain ignores the uninteresting attributes.)")

    # Run-tier knobs vary per query without re-preparing: same cube, but
    # unsmoothed and with 5 explanations per segment for the first period.
    first = result.segments[0]
    raw = (session.query()
           .window(first.start_label, first.stop_label)
           .smoothing(None)
           .top(5)
           .run())
    print(f"\nFirst period re-queried unsmoothed with top-5 "
          f"({raw.timings['precomputation'] * 1000:.1f} ms of run-tier prep):")
    for segment in raw.segments:
        print(" ", segment.describe())


if __name__ == "__main__":
    main()
