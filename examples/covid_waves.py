"""Covid case study (paper section 7.4.1): which states drive each wave?

Run with::

    python examples/covid_waves.py

Explains both Covid queries — cumulative and daily confirmed cases — and
contrasts TSExplain's explanation-aware cuts with the Bottom-Up baseline's
shape-only cuts.
"""

from __future__ import annotations

from repro import ExplainConfig, TSExplain
from repro.baselines import BottomUpSegmenter
from repro.datasets import load_covid_daily, load_covid_total
from repro.viz import explanation_table, segment_sparklines


def explain(dataset, config):
    engine = TSExplain(
        dataset.relation,
        measure=dataset.measure,
        explain_by=dataset.explain_by,
        config=config,
    )
    return engine, engine.explain()


def main() -> None:
    total = load_covid_total()
    engine, result = explain(total, ExplainConfig.optimized())
    print("=== total-confirmed-cases (Figure 11) ===")
    print(f"K = {result.k} (elbow), latency {result.timings['total']:.2f}s")
    print(explanation_table(result))

    print("\nBottom-Up with the same K (explanation-agnostic):")
    series = total.series()
    boundaries = BottomUpSegmenter().segment(series.values, result.k)
    print("  cuts:", [str(series.label_at(b)) for b in boundaries])

    daily = load_covid_daily()
    config = ExplainConfig.optimized(smoothing_window=daily.smoothing_window)
    _, result = explain(daily, config)
    print("\n=== daily-confirmed-cases (Figure 12 / Table 3) ===")
    print(f"K = {result.k} (elbow); 7-day moving average applied")
    print(segment_sparklines(result))

    # Drill into one wave interactively, the OLAP workflow of section 1.
    print("\nZoom into the spring wave only:")
    zoomed = engine.explain(start="2020-03-01", stop="2020-06-01")
    print(explanation_table(zoomed))


if __name__ == "__main__":
    main()
