"""Covid case study (paper section 7.4.1): which states drive each wave?

Run with::

    python examples/covid_waves.py

Explains both Covid queries — cumulative and daily confirmed cases — and
contrasts TSExplain's explanation-aware cuts with the Bottom-Up baseline's
shape-only cuts.  Each query is an :class:`ExplainSession`, so zooming
into a single wave afterwards is an O(window) slice of the cube the full
explanation already built — the interactive OLAP workflow of section 1.
"""

from __future__ import annotations

from repro import ExplainConfig, ExplainSession
from repro.baselines import BottomUpSegmenter
from repro.datasets import load_covid_daily, load_covid_total
from repro.viz import explanation_table, segment_sparklines


def open_session(dataset, config):
    return ExplainSession(
        dataset.relation,
        measure=dataset.measure,
        explain_by=dataset.explain_by,
        config=config,
    )


def main() -> None:
    total = load_covid_total()
    session = open_session(total, ExplainConfig.optimized())
    result = session.explain()
    print("=== total-confirmed-cases (Figure 11) ===")
    print(f"K = {result.k} (elbow), latency {result.timings['total']:.2f}s")
    print(explanation_table(result))

    print("\nBottom-Up with the same K (explanation-agnostic):")
    series = total.series()
    boundaries = BottomUpSegmenter().segment(series.values, result.k)
    print("  cuts:", [str(series.label_at(b)) for b in boundaries])

    daily = load_covid_daily()
    daily_session = open_session(
        daily, ExplainConfig.optimized(smoothing_window=daily.smoothing_window)
    )
    result = daily_session.explain()
    print("\n=== daily-confirmed-cases (Figure 12 / Table 3) ===")
    print(f"K = {result.k} (elbow); 7-day moving average applied")
    print(segment_sparklines(result))

    # Drill into one wave interactively: the session serves the window as
    # a slice of the cube prepared above, so the zoom costs milliseconds.
    print("\nZoom into the spring wave only (prepare reused):")
    zoomed = session.query().window("2020-03-01", "2020-06-01").run()
    print(explanation_table(zoomed))
    print(f"zoom precomputation: {zoomed.timings['precomputation'] * 1000:.2f} ms "
          "(cube slice, no rebuild)")


if __name__ == "__main__":
    main()
