"""Real-time incremental explanation (paper section 8).

Run with::

    python examples/streaming_updates.py

Feeds a KPI to the :class:`StreamingExplainer` day by day.  After the
initial explanation, each update scatters only the new rows into the
stream's prepared explanation cube (O(delta), no rescan of history) and
re-segments over the previous cutting points plus the newly arrived
region, so the explanation stays fresh without re-searching the whole
history.  The stream holds one long-lived
:class:`~repro.core.session.ExplainSession`; the example ends by
borrowing it for an ad-hoc zoom served straight from the incrementally
maintained cube.
"""

from __future__ import annotations

import numpy as np

from repro.core import ExplainConfig, StreamingExplainer
from repro.relation import Relation, Schema


def rows_for(days, driver):
    """One (day, category, sales) row per category for each day."""
    rows = {"day": [], "category": [], "sales": []}
    for day in days:
        for category in ("search", "social", "email"):
            base = {"search": 50.0, "social": 30.0, "email": 20.0}[category]
            rows["day"].append(f"2024-{day:03d}")
            rows["category"].append(category)
            rows["sales"].append(base + driver(day, category))
    schema = Schema.build(dimensions=["category"], measures=["sales"], time="day")
    return Relation(rows, schema)


def main() -> None:
    # Phase 1 (days 0-29): the 'search' channel ramps up.
    initial = rows_for(range(30), lambda d, c: 4.0 * d if c == "search" else 0.0)
    explainer = StreamingExplainer(
        initial,
        measure="sales",
        explain_by=["category"],
        config=ExplainConfig(use_filter=False),
    )
    result = explainer.refresh()
    print("Initial explanation (30 days):")
    print(result.describe())

    # Phase 2 (days 30-59): 'social' takes over; search plateaus.
    def phase2(day, category):
        if category == "search":
            return 4.0 * 29
        if category == "social":
            return 6.0 * (day - 29)
        return 0.0

    for chunk_start in range(30, 60, 10):
        update = rows_for(range(chunk_start, chunk_start + 10), phase2)
        result = explainer.update(update)
        print(f"\nAfter appending days {chunk_start}-{chunk_start + 9}:")
        print(result.describe())

    final_top = result.segments[-1].explanations[0].explanation
    print(f"\nLatest regime driver: {final_top!r}")

    # Ad-hoc interactive question against the live stream: the snapshot
    # session still holds the cube from the last update, so zooming into
    # the most recent fortnight is a run-tier slice, not a rebuild.
    recent = explainer.session().query().window("2024-045", "2024-059").run()
    print("\nZoom into the last 15 days (served from the snapshot's cube):")
    for segment in recent.segments:
        print(" ", segment.describe())


if __name__ == "__main__":
    main()
