"""Advanced analysis: attribute recommendation, variance hints, seasonality.

Run with::

    python examples/advanced_analysis.py

Exercises the three extension features the paper lists as future work
(section 9) — recommending explain-by attributes, hinting at high-variance
segments worth drilling into, and explaining a seasonal KPI through
classical decomposition — all through the prepare-once/query-many
:class:`~repro.core.session.ExplainSession`: recommendation and drill-down
are run-tier queries against one prepared session, never fresh scans.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    ExplainConfig,
    ExplainSession,
    decompose,
    drill_down,
    variance_hints,
)
from repro.datasets import load_liquor
from repro.relation import Relation, Schema, aggregate_over_time


def recommendation_demo() -> None:
    print("=== 1. Which attributes should I explain by? (liquor) ===")
    dataset = load_liquor(n_products=150)
    session = ExplainSession(
        dataset.relation, measure=dataset.measure, explain_by=dataset.explain_by
    )
    for score in session.recommend():
        print(" ", score.row())
    print("  -> bottle volume / pack carry the signal; vendor and category\n"
          "     are texture, matching the paper's observation.\n")


def hints_demo() -> None:
    print("=== 2. Variance hints: find the segment hiding a regime ===")
    rows = {"t": [], "cat": [], "v": []}
    for t in range(45):
        for cat in ("a", "b", "c"):
            value = 10.0
            if cat == "a" and t < 15:
                value += 5.0 * t
            if cat == "a" and t >= 15:
                value += 5.0 * 14
            if cat == "b" and 15 <= t < 30:
                value += 6.0 * (t - 15)
            if cat == "b" and t >= 30:
                value += 6.0 * 14
            if cat == "c" and t >= 30:
                value += 7.0 * (t - 30)
            rows["t"].append(f"d{t:03d}")
            rows["cat"].append(cat)
            rows["v"].append(value)
    schema = Schema.build(dimensions=["cat"], measures=["v"], time="t")
    session = ExplainSession(
        Relation(rows, schema),
        measure="v",
        explain_by=["cat"],
        config=ExplainConfig(use_filter=False),
    )
    coarse = session.query().segments(2).run()
    print("  Deliberately under-segmented (K=2):")
    print("  " + coarse.describe().replace("\n", "\n  "))
    for hint in variance_hints(coarse, factor=1.2):
        print("  HINT:", hint.describe())
        # Drilling down re-explains the flagged window as a slice of the
        # session's prepared cube — no rescan of the relation.
        inner = drill_down(session, hint.segment)
        print("  After drilling down:")
        print("  " + inner.describe().replace("\n", "\n  "))
    print()


def seasonal_demo() -> None:
    print("=== 3. Seasonal KPI: decompose, then explain the trend ===")
    n, period = 84, 7
    t = np.arange(n, dtype=np.float64)
    rows = {"t": [], "cat": [], "v": []}
    weekly = 8.0 * np.sin(2 * np.pi * t / period)
    for day in range(n):
        for cat in ("web", "store"):
            trend = 2.0 * day if (cat == "web") == (day < n // 2) else 0.0
            rows["t"].append(f"d{day:03d}")
            rows["cat"].append(cat)
            rows["v"].append(50.0 + trend + weekly[day] / 2.0)
    schema = Schema.build(dimensions=["cat"], measures=["v"], time="t")
    relation = Relation(rows, schema)
    observed = aggregate_over_time(relation, "v")
    decomposition = decompose(observed, period=period)
    print(f"  seasonal amplitude: {np.ptp(decomposition.seasonal.values):.1f}, "
          f"residual std: {decomposition.residual.values.std():.2f}")
    # Explain the raw series with smoothing matched to the period — the
    # paper's recommendation for seasonal data.  Smoothing is a run-tier
    # knob, so it rides on the session's cube via the query builder.
    session = ExplainSession(
        relation,
        measure="v",
        explain_by=["cat"],
        config=ExplainConfig(use_filter=False),
    )
    result = session.query().smoothing(period).run()
    print("  trend explanation:")
    print("  " + result.describe().replace("\n", "\n  "))


if __name__ == "__main__":
    recommendation_demo()
    hints_demo()
    seasonal_demo()
