"""Quickstart: prepare once, query many.

Run with::

    python examples/quickstart.py

Builds a tiny sales relation whose growth driver switches from category
``a`` to category ``b`` half-way through, then opens an
:class:`~repro.core.session.ExplainSession` — the expensive prepare tier
(building the explanation cube) runs once, and every query after that is
an O(window) slice of the prepared arrays: the full explanation, a zoomed
window, and a two-point diff.
"""

from __future__ import annotations

import numpy as np

from repro import ExplainConfig, ExplainSession
from repro.relation import Relation, Schema
from repro.viz import full_report


def build_relation(n_days: int = 60, switch: int = 30) -> Relation:
    """One row per (day, category); 'a' grows early, 'b' grows late."""
    rng = np.random.default_rng(0)
    rows = {"day": [], "category": [], "sales": []}
    for day in range(n_days):
        for category in ("a", "b", "c"):
            if category == "a":
                value = 20.0 + (3.0 * day if day < switch else 3.0 * switch)
            elif category == "b":
                value = 20.0 + (0.0 if day < switch else 4.0 * (day - switch))
            else:
                value = 15.0
            rows["day"].append(f"2024-{day:03d}")
            rows["category"].append(category)
            rows["sales"].append(value + rng.normal(0, 0.5))
    schema = Schema.build(dimensions=["category"], measures=["sales"], time="day")
    return Relation(rows, schema)


def main() -> None:
    relation = build_relation()

    # PREPARE once: bind the relation and cube parameters to a session.
    # The first query builds the explanation cube; every later query —
    # windowed, re-metric'd, re-topped — reuses it as an array slice.
    session = ExplainSession(
        relation,
        measure="sales",
        explain_by=["category"],
        config=ExplainConfig(use_filter=False),  # 3 candidates; nothing to filter
    )

    # 1. The aggregated time series ("what happened").
    series = session.series()
    print(f"Aggregated series: {len(series)} points, "
          f"{series.values[0]:.0f} -> {series.values[-1]:.0f}\n")

    # 2. Evolving explanations ("why did it change, and when did the
    #    reasons change").  K is selected automatically with the elbow.
    result = session.explain()
    print(full_report(result))

    # 3. QUERY many: zoom into the hand-over window.  This does not rescan
    #    the relation — it slices the cube built in step 2.
    mid = len(series) // 2
    zoom = (session.query()
            .window(series.label_at(mid - 10), series.label_at(mid + 10))
            .top(2)
            .run())
    print(f"\nZoomed into {zoom.series.label_at(0)} .. "
          f"{zoom.series.label_at(len(zoom.series) - 1)} "
          f"(prepare cost this query: {zoom.timings['precomputation'] * 1000:.2f} ms):")
    for segment in zoom.segments:
        print(" ", segment.describe())

    # 4. Classic two-relations diff between two endpoints, for contrast:
    #    it only sees the *net* effect and misses the hand-over.
    print("\nTwo-point diff over the whole range (what prior engines see):")
    for scored in session.diff(series.label_at(0), series.label_at(len(series) - 1)):
        print(f"  {scored.explanation!r} ({scored.effect_symbol}) gamma={scored.gamma:.1f}")


if __name__ == "__main__":
    main()
