"""Quickstart: explain a synthetic KPI with evolving contributors.

Run with::

    python examples/quickstart.py

Builds a tiny sales relation whose growth driver switches from category
``a`` to category ``b`` half-way through, asks TSExplain to explain the
aggregated series, and prints the evolving top explanations (the library's
equivalent of the paper's Figure 2).
"""

from __future__ import annotations

import numpy as np

from repro import ExplainConfig, TSExplain
from repro.relation import Relation, Schema
from repro.viz import full_report


def build_relation(n_days: int = 60, switch: int = 30) -> Relation:
    """One row per (day, category); 'a' grows early, 'b' grows late."""
    rng = np.random.default_rng(0)
    rows = {"day": [], "category": [], "sales": []}
    for day in range(n_days):
        for category in ("a", "b", "c"):
            if category == "a":
                value = 20.0 + (3.0 * day if day < switch else 3.0 * switch)
            elif category == "b":
                value = 20.0 + (0.0 if day < switch else 4.0 * (day - switch))
            else:
                value = 15.0
            rows["day"].append(f"2024-{day:03d}")
            rows["category"].append(category)
            rows["sales"].append(value + rng.normal(0, 0.5))
    schema = Schema.build(dimensions=["category"], measures=["sales"], time="day")
    return Relation(rows, schema)


def main() -> None:
    relation = build_relation()
    engine = TSExplain(
        relation,
        measure="sales",
        explain_by=["category"],
        config=ExplainConfig(use_filter=False),  # 3 candidates; nothing to filter
    )

    # 1. The aggregated time series ("what happened").
    series = engine.series()
    print(f"Aggregated series: {len(series)} points, "
          f"{series.values[0]:.0f} -> {series.values[-1]:.0f}\n")

    # 2. Evolving explanations ("why did it change, and when did the
    #    reasons change").  K is selected automatically with the elbow.
    result = engine.explain()
    print(full_report(result))

    # 3. Classic two-relations diff between two endpoints, for contrast:
    #    it only sees the *net* effect and misses the hand-over.
    print("\nTwo-point diff over the whole range (what prior engines see):")
    for scored in engine.top_explanations(series.label_at(0), series.label_at(len(series) - 1)):
        print(f"  {scored.explanation!r} ({scored.effect_symbol}) gamma={scored.gamma:.1f}")


if __name__ == "__main__":
    main()
