"""S&P 500 case study (paper section 7.4.2): crash and rebound by sector.

Run with::

    python examples/sp500_crash.py

Hierarchical explain-by attributes (category -> subcategory -> stock);
TSExplain finds the 2020 phases: tech/internet-retail-led rise, the
February-March crash (technology, financials, communication), the
tech-led recovery that financials sit out, and the autumn pullback.
"""

from __future__ import annotations

import numpy as np

from repro import ExplainConfig, ExplainSession
from repro.datasets import load_sp500
from repro.viz import explanation_table, segmentation_chart


def main() -> None:
    dataset = load_sp500()
    session = ExplainSession(
        dataset.relation,
        measure=dataset.measure,
        explain_by=dataset.explain_by,
        config=ExplainConfig.optimized(),
    )
    result = session.explain()

    print(f"{len(dataset.relation.distinct_values('stock'))} stocks, "
          f"epsilon = {result.epsilon} (hierarchy-deduplicated)")
    print(f"K = {result.k} (elbow)\n")
    print(segmentation_chart(result))
    print()
    print(explanation_table(result))

    # Identify the crash and recovery segments by their index move.
    moves = [
        result.series.values[s.stop] - result.series.values[s.start]
        for s in result.segments
    ]
    crash = result.segments[int(np.argmin(moves))]
    recovery = result.segments[int(np.argmax(moves))]
    print(f"\nCrash segment    {crash.start_label} ~ {crash.stop_label}: "
          + ", ".join(f"{s.explanation!r}({s.effect_symbol})" for s in crash.explanations))
    print(f"Recovery segment {recovery.start_label} ~ {recovery.stop_label}: "
          + ", ".join(f"{s.explanation!r}({s.effect_symbol})" for s in recovery.explanations))
    recovered = {repr(s.explanation) for s in recovery.explanations}
    if not any("financial" in name for name in recovered):
        print("Note: financials are absent from the recovery — they did not "
              "bounce back (the paper's Table 4 observation).")

    # The session keeps the prepared cube, so asking a follow-up question
    # about the crash is a cheap run-tier query, not a rebuild.
    print("\nTwo-point diff across the crash (reusing the prepared cube):")
    for scored in session.diff(crash.start_label, crash.stop_label, m=3):
        print(f"  {scored.explanation!r} ({scored.effect_symbol}) "
              f"gamma={scored.gamma:.1f}")


if __name__ == "__main__":
    main()
