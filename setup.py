"""Legacy setup shim.

The execution environment has no network access and an older setuptools
without the ``wheel`` package, so PEP 517 editable installs fail; this shim
lets ``pip install -e . --no-build-isolation`` use the legacy code path.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
