"""Rollup specifications: the unit the lattice plans, builds and routes.

A :class:`RollupSpec` names one raw explanation cube shape — the explain-by
dimensions, the measure, the aggregate and the cube-shaping knobs
(``max_order``, ``deduplicate``).  It is deliberately the same parameter
set as :class:`repro.cube.cache.CubeKey` minus the data fingerprint: a
spec plus a fingerprint *is* a cache key (:func:`rollup_key`), so every
rollup the lattice materializes lands in the ordinary rollup cache and is
indistinguishable from a cube the classic prepare path would have stored.

Windows and run-tier knobs (smoothing, filter, metric, ``k``/``m``) are
deliberately **not** part of a spec: a rollup always covers the full time
axis and sessions serve windows as O(window) slices of it, so one rollup
answers every window of its shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cube.cache import CubeKey, cube_key_for_fingerprint
from repro.exceptions import QueryError
from repro.relation.aggregates import get_aggregate


@dataclass(frozen=True)
class RollupSpec:
    """One rollup cube shape: ``(dims, measure, aggregate, cube knobs)``.

    ``dims`` is normalized to sorted order (the cube sorts ``explain_by``
    too, so attribute order never splits the lattice) and the aggregate
    must be a registry aggregate supporting state subtraction — the same
    constraint the explanation cube itself imposes.
    """

    dims: tuple[str, ...]
    measure: str
    aggregate: str = "sum"
    max_order: int = 3
    deduplicate: bool = True

    def __post_init__(self):
        if not self.dims:
            raise QueryError("a rollup spec needs at least one dimension")
        object.__setattr__(self, "dims", tuple(sorted(self.dims)))
        function = get_aggregate(self.aggregate)
        if not function.subtractable:
            raise QueryError(
                f"aggregate {function.name!r} is not subtractable and cannot "
                "back an explanation-cube rollup"
            )
        object.__setattr__(self, "aggregate", function.name)
        if self.max_order < 1:
            raise QueryError(f"max_order must be >= 1, got {self.max_order}")

    @property
    def effective_order(self) -> int:
        """The deepest conjunction order this rollup actually holds.

        ``max_order`` is stored raw (it is part of the cache key), but
        candidate enumeration clamps it to the dimension count — a
        3-order cube over 2 dims holds subsets up to order 2 only.
        """
        return min(self.max_order, len(self.dims))

    def describe(self) -> str:
        """One human-readable token, e.g. ``a,b@var``."""
        return f"{','.join(self.dims)}@{self.aggregate}"


def rollup_key(fingerprint: str, spec: RollupSpec, time_attr: str) -> CubeKey:
    """The rollup-cache key ``spec`` resolves to for one data fingerprint."""
    return cube_key_for_fingerprint(
        fingerprint,
        spec.measure,
        spec.dims,
        aggregate=spec.aggregate,
        time_attr=time_attr,
        max_order=spec.max_order,
        deduplicate=spec.deduplicate,
    )


def parse_rollup_spec(
    text: str,
    measure: str,
    aggregate: str = "sum",
    max_order: int = 3,
    deduplicate: bool = True,
) -> RollupSpec:
    """Parse one CLI rollup token: ``dim1,dim2`` or ``dim1,dim2@agg``.

    The aggregate defaults to the query's own; measure and cube knobs
    always come from the query (they are not spellable per-rollup).
    """
    token = text.strip()
    if "@" in token:
        dims_part, _, agg_part = token.rpartition("@")
        aggregate = agg_part.strip() or aggregate
    else:
        dims_part = token
    dims = tuple(d.strip() for d in dims_part.split(",") if d.strip())
    if not dims:
        raise QueryError(f"rollup spec {text!r} names no dimensions")
    return RollupSpec(
        dims=dims,
        measure=measure,
        aggregate=aggregate,
        max_order=max_order,
        deduplicate=deduplicate,
    )


def default_lattice(
    dims: Sequence[str],
    measure: str,
    aggregate: str = "sum",
    max_order: int = 3,
    deduplicate: bool = True,
) -> list[RollupSpec]:
    """The default lattice for a query: the full cube plus every single dim.

    The full-dims rollup is the finest shape (drill-down requests derive
    from it); the single-dim rollups are the shapes dashboards actually
    open with.  The planner (:func:`repro.lattice.build.plan_roots`)
    collapses this list to the cubes that truly need a source scan — with
    a derivable aggregate, that is the full cube alone.
    """
    specs = [
        RollupSpec(
            dims=tuple(dims),
            measure=measure,
            aggregate=aggregate,
            max_order=max_order,
            deduplicate=deduplicate,
        )
    ]
    for dim in sorted(dims):
        spec = RollupSpec(
            dims=(dim,),
            measure=measure,
            aggregate=aggregate,
            max_order=max_order,
            deduplicate=deduplicate,
        )
        if spec not in specs:
            specs.append(spec)
    return specs
