"""The persisted lattice manifest: which rollups exist for a fingerprint.

One JSON document per data fingerprint, stored next to the cube entries
in the rollup cache (:meth:`repro.cube.cache.RollupCache` with the
``.lattice.json`` suffix).  It is the router's index — *which* specs have
materialized rollups and where each came from (``built`` in the single
scan, ``derived`` on demand, ``promoted`` from the ad-hoc build path).

Unlike cube entries (where corruption is a silent miss and a rebuild),
the manifest is a **correctness input** to routing: a corrupt document or
one whose recorded fingerprint disagrees with the source must fail loudly
(:class:`~repro.exceptions.QueryError`) rather than silently serving or
rebuilding against the wrong data — that is the negative-path contract
``tests/test_lattice.py`` pins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import QueryError
from repro.lattice.spec import RollupSpec

#: Bump when the manifest JSON layout changes; older documents then fail
#: loudly (the lattice must be rebuilt, never guessed at).
MANIFEST_FORMAT = 1

#: Where a manifest entry's rollup came from.
ORIGINS = ("built", "derived", "promoted")


@dataclass(frozen=True)
class RollupEntry:
    """One materialized rollup: its spec and how it came to exist."""

    spec: RollupSpec
    origin: str = "built"

    def __post_init__(self):
        if self.origin not in ORIGINS:
            raise QueryError(
                f"unknown rollup origin {self.origin!r}; expected one of {ORIGINS}"
            )


@dataclass(frozen=True)
class LatticeManifest:
    """The rollup roster of one data fingerprint (immutable value object)."""

    fingerprint: str
    time_attr: str
    entries: tuple[RollupEntry, ...] = ()

    def specs(self) -> tuple[RollupSpec, ...]:
        return tuple(entry.spec for entry in self.entries)

    def __contains__(self, spec: RollupSpec) -> bool:
        return any(entry.spec == spec for entry in self.entries)

    def get(self, spec: RollupSpec) -> RollupEntry | None:
        for entry in self.entries:
            if entry.spec == spec:
                return entry
        return None

    def with_entry(self, spec: RollupSpec, origin: str) -> "LatticeManifest":
        """A manifest with ``spec`` added (or its origin replaced)."""
        entry = RollupEntry(spec=spec, origin=origin)
        kept = tuple(e for e in self.entries if e.spec != spec)
        return LatticeManifest(
            fingerprint=self.fingerprint,
            time_attr=self.time_attr,
            entries=kept + (entry,),
        )

    # ------------------------------------------------------------------
    # JSON (de)serialization
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        return {
            "format": MANIFEST_FORMAT,
            "fingerprint": self.fingerprint,
            "time_attr": self.time_attr,
            "rollups": [
                {
                    "dims": list(entry.spec.dims),
                    "measure": entry.spec.measure,
                    "aggregate": entry.spec.aggregate,
                    "max_order": entry.spec.max_order,
                    "deduplicate": entry.spec.deduplicate,
                    "origin": entry.origin,
                }
                for entry in self.entries
            ],
        }

    @classmethod
    def from_payload(
        cls, payload: object, expected_fingerprint: str | None = None
    ) -> "LatticeManifest":
        """Decode and validate a manifest document.

        Raises :class:`~repro.exceptions.QueryError` on any malformation,
        a format-version mismatch, or — when ``expected_fingerprint`` is
        given — a fingerprint that disagrees with the source's.
        """
        try:
            if not isinstance(payload, dict):
                raise ValueError("manifest payload is not an object")
            if payload.get("format") != MANIFEST_FORMAT:
                raise ValueError(
                    f"manifest format {payload.get('format')!r} != {MANIFEST_FORMAT}"
                )
            fingerprint = str(payload["fingerprint"])
            time_attr = str(payload["time_attr"])
            entries = tuple(
                RollupEntry(
                    spec=RollupSpec(
                        dims=tuple(str(d) for d in row["dims"]),
                        measure=str(row["measure"]),
                        aggregate=str(row["aggregate"]),
                        max_order=int(row["max_order"]),
                        deduplicate=bool(row["deduplicate"]),
                    ),
                    origin=str(row.get("origin", "built")),
                )
                for row in payload["rollups"]
            )
        except QueryError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            raise QueryError(f"corrupt lattice manifest: {error}") from error
        if expected_fingerprint is not None and fingerprint != expected_fingerprint:
            raise QueryError(
                f"lattice manifest fingerprint {fingerprint!r} does not match "
                f"the source fingerprint {expected_fingerprint!r}; the data "
                "changed under the lattice — rebuild with 'repro lattice build'"
            )
        return cls(fingerprint=fingerprint, time_attr=time_attr, entries=entries)
