"""Plan and build a rollup lattice in a single pass over the data.

Two stages:

1. :func:`plan_roots` collapses the requested specs to the minimal set of
   **root** cubes that truly need a source scan — a spec becomes a root
   only when no finer root already covers it
   (:func:`repro.lattice.derive.can_derive`).  With the default lattice
   (full dims + singles, one aggregate) that is a single root.
2. :func:`build_lattice` builds every root from **one scan** — chunked
   through :func:`repro.store.ingest.scan_cubes_from_source` for data
   sources (bounded residency), or directly over an in-memory relation —
   then derives every non-root from its root's ledger without touching
   the data again.

With a rollup cache, every cube is stored under its ordinary
:class:`~repro.cube.cache.CubeKey` (fingerprint + spec) and the
:class:`~repro.lattice.manifest.LatticeManifest` is persisted next to the
entries, so a later :class:`~repro.lattice.router.LatticeRouter` — in
another process — can answer from the prepared lattice cold.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.cube.cache import RollupCache
from repro.cube.datacube import ExplanationCube
from repro.exceptions import QueryError
from repro.lattice.derive import aggregate_components, can_derive, derive_rollup
from repro.lattice.manifest import LatticeManifest
from repro.lattice.spec import RollupSpec, rollup_key
from repro.relation.table import Relation
from repro.store.base import DEFAULT_CHUNK_ROWS, DataSource
from repro.store.ingest import SOURCE_KEY_PREFIX, scan_cubes_from_source


def _coverage(spec: RollupSpec) -> tuple:
    """Sort key: how much of the lattice a spec can answer (descending)."""
    return (
        -len(spec.dims),
        -len(aggregate_components(spec.aggregate)),
        -spec.effective_order,
        spec.dims,
        spec.aggregate,
    )


def plan_roots(
    specs: Sequence[RollupSpec],
) -> tuple[list[RollupSpec], dict[RollupSpec, RollupSpec]]:
    """Split specs into scan roots and derivation assignments.

    Returns ``(roots, derived_from)`` where every requested spec is either
    in ``roots`` (it needs its own build during the scan) or a key of
    ``derived_from`` (it re-aggregates from the mapped root's ledger).
    Greedy from the widest spec down: a spec joins the roots only when no
    existing root covers it, so the common case — one full cube plus its
    drill-down shapes — scans once.
    """
    unique: list[RollupSpec] = []
    for spec in specs:
        if spec not in unique:
            unique.append(spec)
    roots: list[RollupSpec] = []
    derived_from: dict[RollupSpec, RollupSpec] = {}
    for spec in sorted(unique, key=_coverage):
        root = next((r for r in roots if can_derive(r, spec)), None)
        if root is None:
            roots.append(spec)
        else:
            derived_from[spec] = root
    return roots, derived_from


@dataclass(frozen=True)
class LatticeBuildReport:
    """What one :func:`build_lattice` call actually did.

    ``built``/``derived`` partition the requested specs by how each cube
    came to exist; ``chunks``/``rows``/``out_of_core`` describe the single
    scan (shared across all roots); ``stored`` counts the cache entries
    (plus manifest) persisted.
    """

    fingerprint: str
    time_attr: str
    built: tuple[RollupSpec, ...]
    derived: tuple[RollupSpec, ...]
    chunks: int
    rows: int
    out_of_core: bool
    build_seconds: float
    stored: int = 0


def lattice_fingerprint(data: "Relation | DataSource") -> str:
    """The data fingerprint a lattice over ``data`` is keyed by.

    Sources use the cheap source fingerprint in the ``src-`` namespace
    (the same key :func:`~repro.store.ingest.source_cube_key` uses, so a
    lattice rollup and a classic source-keyed build of the same shape
    share one cache entry); relations use the full content fingerprint.
    """
    if isinstance(data, DataSource):
        return f"{SOURCE_KEY_PREFIX}{data.fingerprint()}"
    return data.fingerprint()


def build_lattice(
    data: "Relation | DataSource | str",
    specs: Sequence[RollupSpec],
    cache: RollupCache | None = None,
    time_attr: str | None = None,
    columnar: bool = True,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    out_of_core: bool = True,
) -> tuple[dict[RollupSpec, ExplanationCube], LatticeBuildReport]:
    """Materialize a rollup lattice; returns ``(cubes by spec, report)``.

    ``data`` is a relation, a :class:`~repro.store.DataSource`, or a
    source URI.  Roots are built in one scan (chunk-safe sources stream
    through the append ledger with bounded residency), non-roots derive
    from their root's ledger, and — with a ``cache`` — every cube plus the
    lattice manifest is persisted under the data fingerprint.
    """
    if isinstance(data, str):
        from repro.store.uri import resolve_source

        data = resolve_source(data)
    if not specs:
        raise QueryError("build_lattice needs at least one rollup spec")
    schema = data.schema
    time_attr = time_attr or schema.require_time()
    fingerprint = lattice_fingerprint(data)
    roots, derived_from = plan_roots(specs)

    started = time.perf_counter()
    if isinstance(data, DataSource):
        root_cubes, scan = scan_cubes_from_source(
            data,
            [
                {
                    "explain_by": root.dims,
                    "measure": root.measure,
                    "aggregate": root.aggregate,
                    "max_order": root.max_order,
                    "deduplicate": root.deduplicate,
                }
                for root in roots
            ],
            time_attr=time_attr,
            columnar=columnar,
            chunk_rows=chunk_rows,
            out_of_core=out_of_core,
        )
        chunks, rows, chunked = scan.chunks, scan.rows, scan.out_of_core
    else:
        if data.n_rows == 0:
            raise QueryError("cannot build a lattice over an empty relation")
        root_cubes = [
            ExplanationCube(
                data,
                root.dims,
                root.measure,
                aggregate=root.aggregate,
                time_attr=time_attr,
                max_order=root.max_order,
                deduplicate=root.deduplicate,
                columnar=columnar,
                appendable=True,
            )
            for root in roots
        ]
        chunks, rows, chunked = 1, data.n_rows, False

    cubes: dict[RollupSpec, ExplanationCube] = dict(zip(roots, root_cubes))
    for spec, root in derived_from.items():
        cubes[spec] = derive_rollup(cubes[root], spec)

    stored = 0
    if cache is not None:
        manifest = _existing_manifest(cache, fingerprint, time_attr)
        for spec, cube in cubes.items():
            try:
                cache.store(rollup_key(fingerprint, spec, time_attr), cube)
                stored += 1
            except (TypeError, OSError):
                # Unstorable labels or an unwritable directory degrade to
                # an unpersisted rollup — and it must then stay out of the
                # manifest, or the router would list an unloadable cube.
                continue
            manifest = manifest.with_entry(
                spec, "derived" if spec in derived_from else "built"
            )
        if cache.store_manifest_payload(fingerprint, manifest.to_payload()):
            stored += 1

    return cubes, LatticeBuildReport(
        fingerprint=fingerprint,
        time_attr=time_attr,
        built=tuple(roots),
        derived=tuple(derived_from),
        chunks=chunks,
        rows=rows,
        out_of_core=chunked,
        build_seconds=time.perf_counter() - started,
        stored=stored,
    )


def _existing_manifest(
    cache: RollupCache, fingerprint: str, time_attr: str
) -> LatticeManifest:
    """The manifest to extend: the persisted one, or a fresh empty one.

    A rebuild *overwrites* a corrupt or mismatched document rather than
    failing — build is the recovery path the router's loud errors point
    operators at.
    """
    try:
        payload = cache.load_manifest_payload(fingerprint)
        if payload is not None:
            manifest = LatticeManifest.from_payload(
                payload, expected_fingerprint=fingerprint
            )
            if manifest.time_attr == time_attr:
                return manifest
    except QueryError:
        pass
    return LatticeManifest(fingerprint=fingerprint, time_attr=time_attr)
