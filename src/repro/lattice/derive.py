"""Finer→coarser rollup derivation over the delta ledger.

The reason the lattice never re-ingests: an appendable cube already
retains, per explain-by attribute subset, the pre-finalize aggregate
states its build scattered (:mod:`repro.cube.delta`).  A coarser rollup —
fewer dimensions, or a component-subset aggregate like SUM out of a VAR
cube — needs exactly a subset of those ledgers:

* every attribute subset of the coarser ``dims`` is also a subset of the
  finer ``dims``, enumerated in the same order (sorted attributes,
  ascending conjunction order), so the finer ledger already holds its
  groups, counts, parent maps and states;
* all subtractable aggregates here share additive state components
  (``count`` / ``sum`` / ``sumsq``), and :meth:`scatter_into` applies each
  component's ``np.add.at`` pass independently — so projecting the VAR
  state's ``sum`` row yields byte-for-byte the array a scratch SUM build
  over the same rows would have produced.

:func:`derive_rollup` therefore copies the needed ledgers, projects the
state components, and re-finalizes — **bit-identical** to building the
coarser cube from the relation, at the cost of an O(groups × times) copy
instead of an O(rows) scan.  The property suite in
``tests/test_properties.py`` pins that equivalence across
SUM/COUNT/AVG/VAR.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.cube.datacube import ExplanationCube
from repro.cube.delta import CubeAppendState, SubsetLedger
from repro.exceptions import ExplanationError, QueryError
from repro.lattice.spec import RollupSpec
from repro.relation.aggregates import get_aggregate

#: State-component names per subtractable aggregate, in the exact row
#: order :meth:`_AdditiveAggregate._components` emits them.  A target
#: aggregate is derivable from a source aggregate iff its component names
#: are a subset of the source's — the projection indices come from here.
AGGREGATE_COMPONENTS: dict[str, tuple[str, ...]] = {
    "sum": ("sum",),
    "count": ("count",),
    "avg": ("count", "sum"),
    "var": ("count", "sum", "sumsq"),
}


def aggregate_components(name: str) -> tuple[str, ...]:
    """The state-component names of a registry aggregate (or ``()``)."""
    return AGGREGATE_COMPONENTS.get(name, ())


def covering_aggregate(names: "set[str] | Sequence[str]") -> str:
    """The cheapest single aggregate whose state covers all of ``names``.

    ``{"sum", "count"}`` → ``avg`` (its state holds both components);
    anything involving ``sumsq`` → ``var``.  Raises
    :class:`~repro.exceptions.QueryError` for an unknown or uncoverable
    aggregate name.
    """
    needed: set[str] = set()
    for name in names:
        components = aggregate_components(name)
        if not components:
            raise QueryError(
                f"aggregate {name!r} has no decomposable state components; "
                f"lattice rollups support {sorted(AGGREGATE_COMPONENTS)}"
            )
        needed.update(components)
    for candidate in ("sum", "count", "avg", "var"):
        if needed <= set(AGGREGATE_COMPONENTS[candidate]):
            return candidate
    raise QueryError(f"no registry aggregate covers components {sorted(needed)}")


def can_derive(source: RollupSpec, target: RollupSpec) -> bool:
    """Whether ``target`` is derivable from a cube built for ``source``.

    Requires the same measure and deduplication mode, target dims a
    subset of source dims, target aggregate components a subset of the
    source's, and a target conjunction depth the source ledger actually
    holds (``effective_order``).
    """
    source_components = aggregate_components(source.aggregate)
    target_components = aggregate_components(target.aggregate)
    if not source_components or not target_components:
        return False
    return (
        source.measure == target.measure
        and source.deduplicate == target.deduplicate
        and set(target.dims) <= set(source.dims)
        and set(target_components) <= set(source_components)
        and target.effective_order <= source.effective_order
    )


def spec_of_cube(cube: ExplanationCube) -> RollupSpec:
    """The :class:`RollupSpec` a built cube answers."""
    state = cube.append_state
    max_order = state.max_order if state is not None else len(cube.explain_by)
    deduplicate = state.deduplicate if state is not None else True
    return RollupSpec(
        dims=cube.explain_by,
        measure=cube.measure,
        aggregate=cube.aggregate.name,
        max_order=max_order,
        deduplicate=deduplicate,
    )


def derive_rollup(cube: ExplanationCube, target: RollupSpec) -> ExplanationCube:
    """A coarser rollup cube re-aggregated from a finer cube's ledger.

    The result is byte-identical to building ``target`` from the same
    relation (same candidate order, same float bits, same supports) and
    is itself appendable — derived rollups keep absorbing streamed deltas
    and can be cached like any built cube.
    """
    state = cube.append_state
    if state is None:
        raise ExplanationError(
            "rollup derivation needs the cube's delta ledger; build with "
            "appendable=True or load a ledger-bearing (format-2) cache entry"
        )
    source = spec_of_cube(cube)
    if not can_derive(source, target):
        raise QueryError(
            f"rollup {target.describe()} is not derivable from "
            f"{source.describe()} (measure {source.measure!r}, "
            f"max_order {source.max_order}, deduplicate {source.deduplicate})"
        )
    source_components = aggregate_components(source.aggregate)
    component_rows = [
        source_components.index(name)
        for name in aggregate_components(target.aggregate)
    ]

    ledgers: list[SubsetLedger] = []
    for order in range(1, target.effective_order + 1):
        for subset in itertools.combinations(target.dims, order):
            src = state.ledgers[state.ledger_index[subset]]
            # Fancy-indexing the component axis copies: the derived ledger
            # owns its state and later appends to either cube stay
            # independent.
            ledger = SubsetLedger(
                attrs=subset,
                state=src.state[component_rows],
                counts=src.counts.copy(),
                values=[list(column) for column in src.values],
                parents=[p.copy() for p in src.parents],
                redundant=src.redundant.copy(),
            )
            ledger.conjunctions = list(src.conjunctions)
            ledger.sorted_order = src.sorted_order.copy()
            ledgers.append(ledger)

    derived = CubeAppendState(
        schema=state.schema,
        measure=state.measure,
        explain_by=target.dims,
        time_attr=state.time_attr,
        max_order=target.max_order,
        deduplicate=target.deduplicate,
        aggregate=get_aggregate(target.aggregate),
        labels=state.labels,
        overall=state.overall[component_rows],
        ledgers=ledgers,
    )
    # Copied flags are already consistent (redundancy depends only on the
    # copied counts/parent maps), but re-deriving keeps the invariant in
    # one place — the same replay a cache load performs.
    derived._recompute_redundancy()
    return ExplanationCube.from_append_state(derived)
