"""repro.lattice — the rollup-lattice prepare tier and its query router.

The amortization story for many concurrent sessions: instead of paying
one cube build per (dims, measure, aggregate) shape, **one scan** over
the data feeds every root rollup of a configurable lattice
(:func:`build_lattice`, chunk-safe through the storage layer), coarser
rollups **derive** from finer ones by re-aggregation over the delta
ledger (:func:`derive_rollup` — byte-identical to a scratch build, no
re-ingest), and a :class:`LatticeRouter` answers each incoming cube
request from the finest matching-or-coarser rollup — falling back to the
classic build path on a miss while counting and eventually **promoting**
popular ad-hoc shapes into the lattice.

See ``docs/ARCHITECTURE.md`` (lattice section) for the router's decision
diagram and the promotion policy, and ``tests/test_lattice.py`` +
``tests/test_properties.py`` for the equivalence harness that pins the
bit-identity claims.
"""

from repro.lattice.build import (
    LatticeBuildReport,
    build_lattice,
    lattice_fingerprint,
    plan_roots,
)
from repro.lattice.derive import (
    AGGREGATE_COMPONENTS,
    aggregate_components,
    can_derive,
    covering_aggregate,
    derive_rollup,
    spec_of_cube,
)
from repro.lattice.manifest import MANIFEST_FORMAT, LatticeManifest, RollupEntry
from repro.lattice.router import LatticeRouter, RouteInfo
from repro.lattice.spec import (
    RollupSpec,
    default_lattice,
    parse_rollup_spec,
    rollup_key,
)

__all__ = [
    "AGGREGATE_COMPONENTS",
    "MANIFEST_FORMAT",
    "LatticeBuildReport",
    "LatticeManifest",
    "LatticeRouter",
    "RollupEntry",
    "RollupSpec",
    "RouteInfo",
    "aggregate_components",
    "build_lattice",
    "can_derive",
    "covering_aggregate",
    "default_lattice",
    "derive_rollup",
    "lattice_fingerprint",
    "parse_rollup_spec",
    "plan_roots",
    "rollup_key",
    "spec_of_cube",
]
