"""The query router: answer each cube request from the prepared lattice.

Routing decision, per requested :class:`~repro.lattice.spec.RollupSpec`
(checked in this order):

1. **exact** — the manifest lists the spec itself: serve the resident
   cube, or load its cache entry.  A listed-but-unloadable rollup raises
   :class:`~repro.exceptions.QueryError` loudly — the lattice claimed to
   hold it, so silently rebuilding would hide cache corruption.
2. **derived** — some listed rollup covers the request
   (:func:`~repro.lattice.derive.can_derive`): derive from the *finest
   matching-or-coarser* source — the cheapest covering rollup by
   (dims, components, order) — install the result as a new lattice member
   and persist it, so the derivation is paid once.
3. **miss** — nothing covers the request: return ``None`` and count a
   ``lattice_miss``; the caller falls back to the ordinary build path and
   reports the built cube back via :meth:`LatticeRouter.record_build`,
   which **promotes** shapes requested often enough (``promote_after``)
   into the lattice — ad-hoc shapes that turn out popular stop paying
   rebuilds.

The router is thread-safe (one lock around the manifest, the resident
cubes and the counters); the expensive work it guards — one derivation —
is exactly what the registry's single-flight test pins to once under
concurrent cold requests.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.cube.cache import RollupCache
from repro.cube.datacube import ExplanationCube
from repro.exceptions import QueryError
from repro.lattice.derive import aggregate_components, can_derive, derive_rollup
from repro.lattice.manifest import LatticeManifest
from repro.lattice.spec import RollupSpec, rollup_key
from repro.obs.metrics import get_registry as _get_metrics
from repro.obs.trace import span


def _routes_counter():
    return _get_metrics().counter(
        "repro_lattice_routes_total",
        "Lattice routing decisions (exact / derived / miss)",
        labels=("decision",),
    )


@dataclass(frozen=True)
class RouteInfo:
    """How one request was answered: the decision and the serving rollup."""

    decision: str  # "exact" | "derived" | "miss"
    requested: RollupSpec
    served_by: RollupSpec | None = None


def _derivation_cost(spec: RollupSpec) -> tuple:
    """Sort key: prefer the finest matching-or-coarser source (ascending)."""
    return (
        len(spec.dims),
        len(aggregate_components(spec.aggregate)),
        spec.effective_order,
        spec.dims,
        spec.aggregate,
    )


class LatticeRouter:
    """Route cube requests for **one data fingerprint** through its lattice.

    Parameters
    ----------
    fingerprint:
        The data fingerprint every rollup is keyed by (relation
        fingerprint, or ``src-…`` for data sources).
    time_attr:
        The time attribute the rollups were built over.
    cache:
        Rollup cache backing the lattice; ``None`` keeps the lattice
        purely in-memory (rollups seeded or promoted this process).
    manifest:
        Pre-validated manifest; when omitted it is loaded from the cache
        — raising :class:`~repro.exceptions.QueryError` on a corrupt
        document or a fingerprint mismatch, per the lattice's loud-failure
        contract — or starts empty without a cache.
    promote_after:
        Misses of one spec before :meth:`record_build` promotes its built
        cube into the lattice (default 2: the second rebuild of a shape
        proves it popular).
    """

    def __init__(
        self,
        fingerprint: str,
        time_attr: str,
        cache: RollupCache | None = None,
        manifest: LatticeManifest | None = None,
        promote_after: int = 2,
    ):
        if promote_after < 1:
            raise QueryError(f"promote_after must be >= 1, got {promote_after}")
        self._fingerprint = fingerprint
        self._time_attr = time_attr
        self._cache = cache
        self._promote_after = promote_after
        self._lock = threading.RLock()
        self._cubes: dict[RollupSpec, ExplanationCube] = {}
        self._miss_counts: dict[RollupSpec, int] = {}
        self._exact_hits = 0
        self._derived_hits = 0
        self._lattice_miss = 0
        self._derivations = 0
        self._promotions = 0
        if manifest is None:
            payload = (
                cache.load_manifest_payload(fingerprint)
                if cache is not None
                else None
            )
            if payload is not None:
                manifest = LatticeManifest.from_payload(
                    payload, expected_fingerprint=fingerprint
                )
            else:
                manifest = LatticeManifest(
                    fingerprint=fingerprint, time_attr=time_attr
                )
        elif manifest.fingerprint != fingerprint:
            raise QueryError(
                f"lattice manifest fingerprint {manifest.fingerprint!r} does "
                f"not match the router's fingerprint {fingerprint!r}"
            )
        self._manifest = manifest

    # ------------------------------------------------------------------
    @classmethod
    def for_relation(
        cls, relation, cache: RollupCache | None = None, time_attr: str | None = None, **kwargs
    ) -> "LatticeRouter":
        """A router keyed by a relation's content fingerprint."""
        from repro.lattice.build import lattice_fingerprint

        return cls(
            lattice_fingerprint(relation),
            time_attr or relation.schema.require_time(),
            cache=cache,
            **kwargs,
        )

    @classmethod
    def for_source(
        cls, source, cache: RollupCache | None = None, time_attr: str | None = None, **kwargs
    ) -> "LatticeRouter":
        """A router keyed by a data source's cheap ``src-…`` fingerprint."""
        from repro.lattice.build import lattice_fingerprint
        from repro.store.uri import resolve_source

        source = resolve_source(source)
        return cls(
            lattice_fingerprint(source),
            time_attr or source.schema.require_time(),
            cache=cache,
            **kwargs,
        )

    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        return self._fingerprint

    @property
    def time_attr(self) -> str:
        return self._time_attr

    @property
    def manifest(self) -> LatticeManifest:
        with self._lock:
            return self._manifest

    def seed(self, cubes: "dict[RollupSpec, ExplanationCube]", origin: str = "built") -> None:
        """Install already-built rollups (e.g. a :func:`build_lattice` result).

        Memory-resident only — persisting is the builder's job; seeding
        merely tells the router these cubes are answerable.
        """
        with self._lock:
            for spec, cube in cubes.items():
                self._cubes[spec] = cube
                self._manifest = self._manifest.with_entry(spec, origin)

    # ------------------------------------------------------------------
    def route(
        self, spec: RollupSpec
    ) -> tuple[ExplanationCube | None, RouteInfo]:
        """Answer one cube request from the lattice; ``None`` on a miss."""
        with span("lattice-route"), self._lock:
            if spec in self._manifest:
                cube = self._load(spec)
                self._exact_hits += 1
                _routes_counter().inc(decision="exact")
                return cube, RouteInfo("exact", spec, spec)
            candidates = [
                entry.spec
                for entry in self._manifest.entries
                if can_derive(entry.spec, spec)
            ]
            if candidates:
                source = min(candidates, key=_derivation_cost)
                cube = derive_rollup(self._load(source), spec)
                self._derivations += 1
                self._derived_hits += 1
                _routes_counter().inc(decision="derived")
                self._install(spec, cube, "derived")
                return cube, RouteInfo("derived", spec, source)
            self._lattice_miss += 1
            _routes_counter().inc(decision="miss")
            self._miss_counts[spec] = self._miss_counts.get(spec, 0) + 1
            return None, RouteInfo("miss", spec)

    def record_build(self, spec: RollupSpec, cube: ExplanationCube) -> bool:
        """Feed a fallback-built cube back; returns whether it was promoted.

        Promotion requires the shape to have missed ``promote_after``
        times (popularity, not one-off curiosity) and the cube to carry
        its ledger (a ledger-less cube could not serve derivations).
        """
        with self._lock:
            if spec in self._manifest:
                return False
            if self._miss_counts.get(spec, 0) < self._promote_after:
                return False
            if not cube.appendable:
                return False
            self._install(spec, cube, "promoted")
            self._promotions += 1
            return True

    def stats(self) -> dict:
        """Routing counters (aggregated into the serving tier's /stats)."""
        with self._lock:
            return {
                "rollups": len(self._manifest.entries),
                "resident_cubes": len(self._cubes),
                "exact_hits": self._exact_hits,
                "derived_hits": self._derived_hits,
                "lattice_miss": self._lattice_miss,
                "derivations": self._derivations,
                "promotions": self._promotions,
            }

    # ------------------------------------------------------------------
    # Internals (lock held)
    # ------------------------------------------------------------------
    def _load(self, spec: RollupSpec) -> ExplanationCube:
        """A manifest-listed rollup — resident, cache-loaded, or a loud error."""
        cube = self._cubes.get(spec)
        if cube is not None:
            return cube
        if self._cache is not None:
            cube = self._cache.load(
                rollup_key(self._fingerprint, spec, self._time_attr)
            )
            if cube is not None:
                self._cubes[spec] = cube
                return cube
        raise QueryError(
            f"lattice manifest lists rollup {spec.describe()} but its cache "
            "entry is missing or unreadable; rebuild the lattice with "
            "'repro lattice build' (or clear the cache)"
        )

    def _install(self, spec: RollupSpec, cube: ExplanationCube, origin: str) -> None:
        self._cubes[spec] = cube
        self._manifest = self._manifest.with_entry(spec, origin)
        if self._cache is not None:
            try:
                self._cache.store(
                    rollup_key(self._fingerprint, spec, self._time_attr), cube
                )
                self._cache.store_manifest_payload(
                    self._fingerprint, self._manifest.to_payload()
                )
            except (TypeError, OSError):
                # An unpersistable rollup still serves from memory; the
                # on-disk manifest must not list what is not on disk, so
                # skip the manifest write too.
                pass
