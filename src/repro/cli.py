"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``explain``
    Run TSExplain on a bundled dataset, a CSV file, or any
    :mod:`repro.store` source URI (``--source csv:…|npz:…|sqlite:…``) and
    print the evolving explanations.  ``--out-of-core`` builds the cube
    chunk-by-chunk from the source, so the full relation is never
    resident.  With ``--follow`` the CSV is tailed like
    ``tail -f``: newly appended rows are parsed incrementally (O(delta)
    per poll, byte-offset tailing — no re-read of the whole file) and fed
    to a :class:`~repro.core.streaming.StreamingExplainer`, which appends
    them into its prepared cube and re-segments incrementally.  Quoted
    fields containing raw newlines are not supported in followed files.
``diff``
    Classic two-relations diff between two timestamps.
``recommend``
    Rank candidate explain-by attributes for a query.
``detect``
    Streaming anomaly detection over the prepared cube
    (:mod:`repro.detect`): tiered day-of-week rolling baselines score
    every ``(candidate, timestamp)`` cell.  ``scan`` reports the
    anomalies, ``plan`` groups them into a reviewable JSON suppression
    plan cross-linked to the top explanations, ``apply`` executes a
    reviewed plan (suppress / correct / ignore) and can re-explain the
    corrected data, and ``follow`` tails a CSV like ``explain --follow``
    but scores each delta incrementally — only the touched baseline
    columns are rescored.
``datasets``
    List the bundled datasets.
``cache``
    Manage the persistent rollup cache: ``build`` the cube for a query
    ahead of time, ``inspect`` the stored entries, ``clear`` them.
    Prewarmed entries are keyed on the *full* relation and serve every
    ``explain`` over it — including windowed ``--start/--stop`` runs,
    which slice the prepared cube instead of rebuilding one.
``store``
    Inspect a data source (schema discovery, row count, chunk safety,
    cheap content fingerprint) or ``convert`` it between backends —
    e.g. CSV to the memory-mapped ``npz`` columnar snapshot, or into a
    SQLite table for pushdown queries.
``lattice``
    Prepare a rollup *lattice* ahead of time: one scan over the data
    ``build``s every root rollup, coarser rollups derive from the roots'
    ledgers without rescanning, and the manifest is persisted in the
    rollup cache.  ``inspect`` lists the lattices a cache directory
    holds.  ``explain --lattice`` and ``serve --lattice`` then route
    each prepare through the lattice instead of building from scratch.
``serve``
    Start the concurrent JSON-over-HTTP serving tier
    (:mod:`repro.serve`): many datasets behind a memory-budget + TTL
    session LRU, single-flight cold builds (optionally sharded across
    worker processes), and a query thread pool that dedupes identical
    in-flight requests.  ``--profile-hz`` runs a continuous sampling
    profiler feeding per-phase self-time into ``/metrics``;
    ``--profile-slow`` auto-captures a profile for every request that
    crosses ``--slow-query-ms``.
``obs``
    Aggregate the serve tier's exported observability files
    (``<cache-dir>/obs``): ``top`` ranks profile hotspots and per-phase
    self-time, ``flame`` merges captured profiles into one collapsed-
    stack file (flamegraph.pl-compatible), ``traces`` summarizes
    exported span trees per endpoint and lists the slowest requests
    with their phase breakdown.
``bench``
    The perf-regression gate: ``bench check`` compares the newest
    record of every ``benchmarks/BENCH_*.json`` trajectory against the
    rolling median of its prior runs and exits non-zero naming each
    metric outside tolerance (:mod:`repro.obs.bench`).

Examples
--------
::

    python -m repro explain --dataset covid-total
    python -m repro explain --csv sales.csv --time day \\
        --dimensions region,channel --measure revenue --k 4
    python -m repro diff --dataset covid-total \\
        --start 2020-03-01 --stop 2020-06-01
    python -m repro recommend --dataset liquor
    python -m repro cache build --dataset sp500 --cache-dir ./cube-cache
    python -m repro explain --dataset sp500 --cache-dir ./cube-cache
    python -m repro cache inspect --cache-dir ./cube-cache
    python -m repro cache clear --cache-dir ./cube-cache
    python -m repro explain --csv live.csv --time day \\
        --dimensions region --measure revenue --follow --poll-interval 2
    python -m repro store convert \\
        'csv:sales.csv?time=day&dims=region,channel&measure=revenue' \\
        npz:sales.npz
    python -m repro store inspect npz:sales.npz
    python -m repro explain --source npz:sales.npz --out-of-core \\
        --chunk-rows 100000 --cache-dir ./cube-cache
    python -m repro explain \\
        --source "sqlite:sales.db?table=sales&time=day&dims=region&measure=revenue&where=region='EU'"
    python -m repro lattice build --dataset sp500 --cache-dir ./cube-cache
    python -m repro lattice inspect --cache-dir ./cube-cache
    python -m repro explain --dataset sp500 --explain-by category \\
        --cache-dir ./cube-cache --lattice
    python -m repro serve --datasets covid-total,npz:sales.npz --port 8765 \\
        --cache-dir ./cube-cache --build-shards 4 --lattice
    curl 'http://127.0.0.1:8765/explain?dataset=covid-total'
    python -m repro detect scan --dataset covid-daily --top 10
    python -m repro detect plan --dataset covid-daily --out plan.json
    python -m repro detect apply --dataset covid-daily --plan plan.json \\
        --write-csv corrected.csv --explain
    python -m repro detect follow --csv live.csv --time day \\
        --dimensions region --measure revenue --poll-interval 2
    python -m repro serve --cache-dir ./cube-cache --slow-query-ms 250 \\
        --profile-slow --profile-hz 19
    curl 'http://127.0.0.1:8765/debug/profile?seconds=2' > profile.collapsed
    python -m repro obs top --obs-dir ./cube-cache/obs
    python -m repro obs flame --obs-dir ./cube-cache/obs --out flame.collapsed
    python -m repro obs traces --obs-dir ./cube-cache/obs --n 5
    python -m repro bench check --results-dir benchmarks
"""

from __future__ import annotations

import argparse
import csv as _csv
import io
import json as _json
import os
import sys
import tempfile
import time as _time
from typing import Sequence

from repro import __version__
from repro.core.config import ExplainConfig
from repro.core.pipeline import ExplainPipeline
from repro.core.session import ExplainSession
from repro.core.streaming import StreamingExplainer
from repro.cube.cache import RollupCache, cube_key
from repro.datasets.base import Dataset
from repro.datasets.registry import available_datasets, load_dataset
from repro.exceptions import ReproError, SchemaError
from repro.relation.csvio import coerce_csv_columns, read_csv, write_csv
from repro.relation.schema import Schema
from repro.relation.table import Relation
from repro.store import (
    SOURCE_SCHEMES,
    convert,
    dataset_from_source,
    is_source_uri,
    resolve_source,
    split_list,
)
from repro.viz.report import explanation_table, full_report, segment_sparklines


def _add_source_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_argument_group("data source (pick one)")
    source.add_argument("--dataset", help="bundled dataset name")
    source.add_argument("--csv", help="path to a CSV file")
    source.add_argument(
        "--source",
        help="data-source URI: csv:path, npz:path or sqlite:path?table=t "
        "(see docs/ARCHITECTURE.md for the grammar and pushdown params)",
    )
    source.add_argument("--time", help="time column (CSV/URI sources)")
    source.add_argument(
        "--dimensions",
        help="comma-separated dimension columns (CSV/URI sources)",
    )
    source.add_argument("--measure", help="measure column")
    source.add_argument(
        "--explain-by",
        help="comma-separated explain-by attributes (default: all dimensions)",
    )
    source.add_argument("--aggregate", default=None, help="aggregate function (default sum)")


def _split_names(text: str | None) -> list[str]:
    return list(split_list(text))


def _split_dataset_names(entries: "Sequence[str] | None") -> list[str]:
    """Flatten repeated ``serve --datasets`` values into dataset names.

    A flag value that is itself one valid entry — a bundled dataset name
    or a source URI — is taken whole, commas and all; repeating the flag
    once per dataset is therefore always unambiguous.  Any other value
    is treated as a comma-separated list.  Source URIs can contain
    commas inside query parameters (``...&dims=region,channel&...``), so
    within a list a fragment that does not start a new entry is rejoined
    onto the previous one; that heuristic can mis-split when such a
    fragment *looks like* an entry (a dimension value named like a
    bundled dataset, or ending in ``.csv``) — use one flag per dataset,
    or percent-encode the comma as ``%2C``, when it bites.
    """
    known = set(available_datasets())

    def single_entry(value: str) -> bool:
        if value in known:
            return True
        if not is_source_uri(value):
            return False
        # A comma-bearing value only counts as ONE entry when it names an
        # explicit scheme — extension inference would otherwise swallow a
        # whole list ending in e.g. `.db?...`.
        return "," not in value or value.partition(":")[0] in SOURCE_SCHEMES

    names: list[str] = []
    for value in entries or ():
        value = value.strip()
        if not value:
            continue
        if single_entry(value):
            names.append(value)
            continue
        start = len(names)
        for fragment in _split_names(value):
            if (
                len(names) > start
                and fragment not in known
                and not is_source_uri(fragment)
            ):
                names[-1] = f"{names[-1]},{fragment}"
            else:
                names.append(fragment)
    return names


def _resolve_cli_source(args: argparse.Namespace):
    """Resolve ``--source`` with the role flags layered over URI params."""
    return resolve_source(
        args.source,
        dimensions=_split_names(args.dimensions),
        measures=[args.measure] if args.measure else (),
        time=args.time,
    )


def _require_one_source(args: argparse.Namespace) -> None:
    picked = [flag for flag in (args.dataset, args.csv, args.source) if flag]
    if len(picked) != 1:
        raise ReproError("specify exactly one of --dataset, --csv or --source")


def _load_source(args: argparse.Namespace) -> Dataset:
    _require_one_source(args)
    if args.dataset:
        dataset = load_dataset(args.dataset)
        if args.measure:
            dataset = Dataset(
                name=dataset.name,
                relation=dataset.relation,
                measure=args.measure,
                explain_by=dataset.explain_by,
                aggregate=args.aggregate or dataset.aggregate,
                description=dataset.description,
                smoothing_window=dataset.smoothing_window,
                extras=dataset.extras,
            )
        return dataset
    if args.source:
        return dataset_from_source(_resolve_cli_source(args), aggregate=args.aggregate)
    if not (args.time and args.dimensions and args.measure):
        raise ReproError("--csv requires --time, --dimensions and --measure")
    dimensions = _split_names(args.dimensions)
    relation = read_csv(
        args.csv, dimensions=dimensions, measures=[args.measure], time=args.time
    )
    return Dataset(
        name=args.csv,
        relation=relation,
        measure=args.measure,
        explain_by=tuple(dimensions),
        aggregate=args.aggregate or "sum",
    )


def _explain_by(args: argparse.Namespace, dataset: Dataset) -> tuple[str, ...]:
    if args.explain_by:
        return tuple(name.strip() for name in args.explain_by.split(",") if name.strip())
    return dataset.explain_by


def _build_config(args: argparse.Namespace, dataset: Dataset | None = None) -> ExplainConfig:
    if args.vanilla:
        config = ExplainConfig.vanilla()
    else:
        config = ExplainConfig.optimized()
    overrides: dict = {}
    if args.k is not None:
        overrides["k"] = args.k
    if args.m is not None:
        overrides["m"] = args.m
    if args.metric is not None:
        overrides["metric"] = args.metric
    if args.variant is not None:
        overrides["variant"] = args.variant
    smoothing = args.smoothing
    if smoothing is None and dataset is not None:
        smoothing = dataset.smoothing_window
    if smoothing is not None and smoothing > 1:
        overrides["smoothing_window"] = smoothing
    if getattr(args, "cache_dir", None):
        overrides["cache_dir"] = args.cache_dir
    if getattr(args, "max_order", None) is not None:
        overrides["max_order"] = args.max_order
    return config.updated(**overrides) if overrides else config


def _session(args: argparse.Namespace, dataset: Dataset, config: ExplainConfig) -> ExplainSession:
    return ExplainSession(
        dataset.relation,
        measure=dataset.measure,
        explain_by=_explain_by(args, dataset),
        aggregate=dataset.aggregate,
        config=config,
    )


def _print_result(args: argparse.Namespace, result) -> None:
    if args.report == "table":
        print(explanation_table(result))
    elif args.report == "sparklines":
        print(segment_sparklines(result))
    else:
        print(full_report(result))
    print(
        f"\nK={result.k}{' (auto)' if result.k_was_auto else ''}  "
        f"epsilon={result.epsilon} (filtered {result.filtered_epsilon})  "
        f"latency={result.timings['total']:.2f}s"
    )


def _command_explain(args: argparse.Namespace) -> int:
    # Validated up front so the --follow/--out-of-core branches cannot
    # silently ignore a conflicting --dataset/--csv flag.
    _require_one_source(args)
    if args.follow:
        if args.lattice:
            raise ReproError("--lattice does not combine with --follow")
        return _follow_explain(args)
    if args.lattice:
        return _lattice_explain(args)
    if args.out_of_core:
        return _out_of_core_explain(args)
    dataset = _load_source(args)
    config = _build_config(args, dataset)
    session = _session(args, dataset, config)
    result = session.query().window(args.start, args.stop).run()
    _print_result(args, result)
    return 0


def _out_of_core_explain(args: argparse.Namespace) -> int:
    """``explain --source URI --out-of-core``: bounded-memory ingestion.

    The cube streams out of the source chunk-by-chunk (or straight out of
    the source-keyed rollup cache when ``--cache-dir`` holds a warm
    entry); the relation is never materialized whole.
    """
    if not args.source:
        raise ReproError("--out-of-core requires --source")
    source = _resolve_cli_source(args)
    session = ExplainSession.from_source(
        source,
        explain_by=_split_names(args.explain_by) or None,
        aggregate=args.aggregate,
        config=_build_config(args),
        chunk_rows=args.chunk_rows,
    )
    result = session.query().window(args.start, args.stop).run()
    _print_result(args, result)
    report = session.ingest_report
    if report is not None:
        if report.cache_hit:
            print("ingest: served from the rollup cache (source untouched)")
        else:
            print(
                f"ingest: {report.rows} rows in {report.chunks} chunk(s), "
                f"peak chunk {report.peak_chunk_rows} rows, "
                f"{'out-of-core' if report.out_of_core else 'one-shot fallback'}"
            )
    return 0


def _lattice_explain(args: argparse.Namespace) -> int:
    """``explain --lattice``: route the prepare through the rollup lattice.

    The requested shape is answered from the finest matching-or-coarser
    prepared rollup (exact cache entry, or a derivation over its ledger);
    only a true lattice miss pays the classic build, and the router
    counts it so repeatedly-missed shapes get promoted.
    """
    # Imported lazily: plain explain runs never pay the lattice import.
    from repro.lattice import LatticeRouter

    if not args.cache_dir:
        raise ReproError(
            "--lattice needs --cache-dir: the lattice lives in the rollup "
            "cache (prepare it with 'repro lattice build')"
        )
    cache = RollupCache(args.cache_dir)
    if args.source:
        source = _resolve_cli_source(args)
        router = LatticeRouter.for_source(source, cache=cache)
        session = ExplainSession.from_lattice(
            router,
            source=source,
            explain_by=_split_names(args.explain_by) or None,
            aggregate=args.aggregate,
            config=_build_config(args),
            chunk_rows=args.chunk_rows,
        )
    else:
        dataset = _load_source(args)
        router = LatticeRouter.for_relation(dataset.relation, cache=cache)
        session = ExplainSession.from_lattice(
            router,
            relation=dataset.relation,
            measure=dataset.measure,
            explain_by=_explain_by(args, dataset),
            aggregate=dataset.aggregate,
            config=_build_config(args, dataset),
        )
    result = session.query().window(args.start, args.stop).run()
    _print_result(args, result)
    info = session.route_info
    if info is not None:
        origin = f" from {info.served_by.describe()}" if info.served_by else ""
        print(f"lattice: {info.decision}{origin}")
    return 0


# ----------------------------------------------------------------------
# explain --follow: tail a growing CSV into a StreamingExplainer
# ----------------------------------------------------------------------
def _complete_lines(path: str, offset: int) -> tuple[bytes, int]:
    """New complete lines appended to ``path`` since byte ``offset``.

    Only whole lines are consumed — a torn trailing line (a writer caught
    mid-append) stays in the file for the next poll.  Returns the chunk
    and the advanced offset.
    """
    try:
        size = os.path.getsize(path)
    except OSError as error:
        raise ReproError(f"cannot stat followed CSV {path}: {error}") from None
    if size < offset:
        raise ReproError(
            f"followed CSV {path} shrank from {offset} to {size} bytes; "
            "--follow only supports append-only files"
        )
    if size == offset:
        return b"", offset
    with open(path, "rb") as handle:
        handle.seek(offset)
        chunk = handle.read()
    complete, newline, _ = chunk.rpartition(b"\n")
    if not newline:
        return b"", offset
    return complete + b"\n", offset + len(complete) + 1


def _rows_to_relation(
    chunk: bytes,
    fieldnames: list[str],
    dimensions: list[str],
    measure: str,
    time_attr: str,
) -> Relation:
    """Parse tailed CSV lines into a relation (read_csv's dtype policy)."""
    schema = Schema.build(dimensions=dimensions, measures=[measure], time=time_attr)
    index = {name: fieldnames.index(name) for name in schema.names}
    raw: dict[str, list[str]] = {name: [] for name in schema.names}
    for row in _csv.reader(io.StringIO(chunk.decode("utf-8"))):
        if not row:
            continue
        if len(row) != len(fieldnames):
            raise ReproError(
                f"malformed CSV line with {len(row)} fields (header has "
                f"{len(fieldnames)})"
            )
        for name in schema.names:
            raw[name].append(row[index[name]])
    return Relation(coerce_csv_columns(raw, schema), schema)


def _tail_bootstrap(
    args: argparse.Namespace, dimensions: list[str]
) -> tuple[list[str], Relation, int]:
    """Wait for a followed CSV's header and first two timestamps.

    tail -f semantics: a just-created file may not have its header (or
    enough rows to segment) yet — wait for the producer, don't error.
    Returns ``(fieldnames, initial_relation, byte_offset)``.
    """
    path = args.csv
    waiting_announced = False
    header_chunk, offset = _complete_lines(path, 0)
    while not header_chunk:
        if not waiting_announced:
            print(f"waiting for {path} to grow a header line...", file=sys.stderr)
            waiting_announced = True
        _time.sleep(args.poll_interval)
        header_chunk, offset = _complete_lines(path, 0)
    lines = header_chunk.split(b"\n", 1)
    fieldnames = next(_csv.reader([lines[0].decode("utf-8")]))
    missing = set(dimensions + [args.measure, args.time]) - set(fieldnames)
    if missing:
        raise SchemaError(f"CSV {path} lacks columns {sorted(missing)}")
    duplicated = [
        name
        for name in dimensions + [args.measure, args.time]
        if fieldnames.count(name) > 1
    ]
    if duplicated:
        raise SchemaError(
            f"CSV {path} header repeats needed column(s) {duplicated}"
        )
    initial = _rows_to_relation(
        lines[1] if len(lines) > 1 else b"",
        fieldnames,
        dimensions,
        args.measure,
        args.time,
    )
    waiting_announced = False
    while len(set(initial.column(args.time))) < 2:
        # A single timestamp has no change to explain yet.
        if not waiting_announced:
            print(
                f"waiting for {path} to span two timestamps...", file=sys.stderr
            )
            waiting_announced = True
        _time.sleep(args.poll_interval)
        chunk, offset = _complete_lines(path, offset)
        if chunk:
            initial = initial.concat(
                _rows_to_relation(chunk, fieldnames, dimensions, args.measure, args.time)
            )
    return fieldnames, initial, offset


def _require_followable(args: argparse.Namespace) -> list[str]:
    if not args.csv:
        raise ReproError("--follow requires --csv (bundled datasets are static)")
    if not (args.time and args.dimensions and args.measure):
        raise ReproError("--csv requires --time, --dimensions and --measure")
    return _split_names(args.dimensions)


def _follow_explain(args: argparse.Namespace) -> int:
    dimensions = _require_followable(args)
    path = args.csv
    fieldnames, initial, offset = _tail_bootstrap(args, dimensions)
    dataset = Dataset(
        name=path,
        relation=initial,
        measure=args.measure,
        explain_by=tuple(dimensions),
        aggregate=args.aggregate or "sum",
    )
    config = _build_config(args, dataset)
    explainer = StreamingExplainer(
        initial,
        measure=dataset.measure,
        explain_by=_explain_by(args, dataset),
        aggregate=dataset.aggregate,
        time_attr=args.time,
        config=config,
    )
    result = explainer.refresh()
    print(f"== {path}: initial explanation ({len(result.series)} points) ==")
    _print_result(args, result)

    updates = 0
    while args.max_updates is None or updates < args.max_updates:
        _time.sleep(args.poll_interval)
        chunk, offset = _complete_lines(path, offset)
        if not chunk:
            continue
        delta = _rows_to_relation(
            chunk, fieldnames, dimensions, args.measure, args.time
        )
        if delta.n_rows == 0:
            continue
        result = explainer.update(delta)
        updates += 1
        print(
            f"\n== update {updates}: +{delta.n_rows} rows, "
            f"{len(result.series)} points =="
        )
        _print_result(args, result)
    return 0


def _command_diff(args: argparse.Namespace) -> int:
    dataset = _load_source(args)
    session = _session(args, dataset, ExplainConfig(m=args.m or 3))
    for scored in session.diff(args.start, args.stop):
        print(f"{scored.explanation!r} ({scored.effect_symbol}) gamma={scored.gamma:g}")
    return 0


def _command_recommend(args: argparse.Namespace) -> int:
    dataset = _load_source(args)
    # explain_by stays at the dataset default: recommendation ranks *all*
    # dimensions, so users learn which explain_by to bind a session to.
    session = ExplainSession(
        dataset.relation,
        measure=dataset.measure,
        explain_by=dataset.explain_by,
        aggregate=dataset.aggregate,
    )
    for score in session.recommend(m=args.m or 3):
        print(score.row())
    return 0


# ----------------------------------------------------------------------
# detect: tiered-baseline anomaly scanning and suppression plans
# ----------------------------------------------------------------------
def _detect_config(args: argparse.Namespace) -> "DetectConfig":
    from repro.detect import DetectConfig

    overrides: dict = {}
    if args.z_warn is not None:
        overrides["z_warn"] = args.z_warn
    if args.z_alert is not None:
        overrides["z_alert"] = args.z_alert
    if args.z_critical is not None:
        overrides["z_critical"] = args.z_critical
    if args.min_volume is not None:
        overrides["min_volume"] = args.min_volume
    if args.min_deviation is not None:
        overrides["min_deviation"] = args.min_deviation
    if args.direction is not None:
        overrides["direction"] = args.direction
    if args.top is not None:
        overrides["max_cells"] = args.top
    return DetectConfig().override(**overrides)


def _detect_explain_config(args: argparse.Namespace) -> ExplainConfig:
    overrides: dict = {}
    if getattr(args, "cache_dir", None):
        overrides["cache_dir"] = args.cache_dir
    if getattr(args, "max_order", None) is not None:
        overrides["max_order"] = args.max_order
    return ExplainConfig.optimized(**overrides)


def _print_detect_report(report) -> None:
    for cell in report.cells:
        print(f"  {cell.describe()}")
    counts = report.counts()
    truncated = f" (+{report.truncated} over the --top cap)" if report.truncated else ""
    print(
        f"{len(report.cells)} anomalous cell(s){truncated}: "
        f"{counts['critical']} critical, {counts['alert']} alert, "
        f"{counts['warn']} warn — {report.cells_scored} cells over "
        f"{report.columns_scored} column(s) scored, "
        f"{report.columns_abstained} column(s) abstained"
    )


def _detect_session(
    args: argparse.Namespace,
    dataset: Dataset,
    time_attr: str | None = None,
) -> "DetectSession":
    from repro.detect import DetectSession

    session = ExplainSession(
        dataset.relation,
        measure=dataset.measure,
        explain_by=_explain_by(args, dataset),
        aggregate=dataset.aggregate,
        time_attr=time_attr,
        config=_detect_explain_config(args),
    )
    return DetectSession(session, config=_detect_config(args))


def _command_detect(args: argparse.Namespace) -> int:
    if args.action == "apply":
        return _detect_apply(args)
    if args.action == "follow":
        return _detect_follow(args)
    # scan / plan share the one-shot path; plan additionally reviews.
    dataset = _load_source(args)
    detect = _detect_session(args, dataset)
    report = detect.scan()
    print(f"== {dataset.name}: baseline scan ==")
    _print_detect_report(report)
    if args.json:
        from pathlib import Path

        Path(args.json).write_text(
            _json.dumps(report.to_json(), indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote scan report to {args.json}")
    if args.action == "plan" or args.out:
        plan = detect.plan(report, link=not args.no_link, source=dataset.name)
        if args.out:
            plan.save(args.out)
            print(
                f"wrote suppression plan ({len(plan.entries)} entr"
                f"{'y' if len(plan.entries) == 1 else 'ies'}) to {args.out}"
            )
        else:
            print(plan.describe())
    return 0


def _detect_follow(args: argparse.Namespace) -> int:
    """``detect follow``: tail a CSV and score each delta incrementally."""
    dimensions = _require_followable(args)
    path = args.csv
    fieldnames, initial, offset = _tail_bootstrap(args, dimensions)
    dataset = Dataset(
        name=path,
        relation=initial,
        measure=args.measure,
        explain_by=tuple(dimensions),
        aggregate=args.aggregate or "sum",
    )
    detect = _detect_session(args, dataset, time_attr=args.time)
    report = detect.scan()
    print(
        f"== {path}: initial scan "
        f"({detect.baselines.n_times} points) =="
    )
    _print_detect_report(report)

    updates = 0
    while args.max_updates is None or updates < args.max_updates:
        _time.sleep(args.poll_interval)
        chunk, offset = _complete_lines(path, offset)
        if not chunk:
            continue
        delta = _rows_to_relation(
            chunk, fieldnames, dimensions, args.measure, args.time
        )
        if delta.n_rows == 0:
            continue
        update = detect.append(delta)
        updates += 1
        print(
            f"\n== update {updates}: +{delta.n_rows} rows, "
            f"{update.recomputed_columns} column(s) rescored =="
        )
        _print_detect_report(update.report)
    if args.out:
        # The exit plan reviews the full axis, so anomalies from every
        # update (and the initial scan) land in one reviewable artifact.
        plan = detect.plan(link=not args.no_link, source=path)
        plan.save(args.out)
        print(
            f"wrote suppression plan ({len(plan.entries)} entr"
            f"{'y' if len(plan.entries) == 1 else 'ies'}) to {args.out}"
        )
    return 0


def _detect_apply(args: argparse.Namespace) -> int:
    """``detect apply``: execute a reviewed plan, explain the corrected data."""
    from repro.detect import SuppressionPlan, apply_plan

    if not args.plan:
        raise ReproError("detect apply requires --plan <plan.json>")
    plan = SuppressionPlan.load(args.plan)
    dataset = _load_source(args)
    applied = apply_plan(plan, dataset.relation)
    print(applied.describe())
    for missed in applied.missed_entries:
        print(f"  no rows matched: {missed}", file=sys.stderr)
    if args.write_csv:
        write_csv(applied.corrected, args.write_csv)
        print(
            f"wrote corrected relation ({applied.corrected.n_rows} rows) "
            f"to {args.write_csv}"
        )
    if args.explain:
        session = ExplainSession(
            applied.corrected,
            measure=plan.measure,
            explain_by=plan.explain_by or _explain_by(args, dataset),
            aggregate=plan.aggregate,
            config=_detect_explain_config(args),
        )
        result = session.explain()
        print("\n== corrected relation, explained ==")
        print(explanation_table(result))
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    cache = RollupCache(args.cache_dir)
    if args.action == "inspect":
        entries = cache.entries()
        if not entries:
            print(f"cache at {cache.directory} is empty")
            return 0
        total = 0
        for entry in entries:
            total += entry.size_bytes
            print(entry.row())
        print(f"{len(entries)} entr{'y' if len(entries) == 1 else 'ies'}, {total} bytes")
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached cube(s) from {cache.directory}")
        return 0
    # action == "build": warm the cache for a query without running the
    # segmentation — exactly the prepare phase the next explain will skip.
    dataset = _load_source(args)
    # Vanilla config: the stored artifact is the *raw* cube, so the
    # reported epsilon matches what later (filtered or not) runs reuse.
    # max_order is only overridden when given, so build and explain share
    # the ExplainConfig default and prewarmed entries keep matching.
    overrides = {"cache_dir": args.cache_dir}
    if args.max_order is not None:
        overrides["max_order"] = args.max_order
    config = ExplainConfig.vanilla(**overrides)
    explain_by = _explain_by(args, dataset)
    pipeline = ExplainPipeline(
        dataset.relation,
        dataset.measure,
        explain_by,
        aggregate=dataset.aggregate,
        config=config,
    )
    scorer = pipeline.prepare()
    stats = f"epsilon={scorer.cube.n_explanations} n={scorer.cube.n_times}"
    if pipeline.cache_hit:
        print(f"reused existing entry: {stats} under {cache.directory}")
        return 0
    # prepare() degrades store failures to an uncached build; a prewarm
    # command must not report success unless the entry really landed.
    # Re-deriving the key here is safe because the CLI only ever passes
    # registry aggregate names (strings), so load_or_build's off-registry
    # bypass can never make this lookup disagree with the pipeline's.
    key = cube_key(
        dataset.relation,
        dataset.measure,
        explain_by,
        aggregate=dataset.aggregate,
        max_order=config.max_order,
        deduplicate=config.deduplicate,
    )
    if cache.load(key) is not None:  # round-trips, not merely exists
        print(f"built and stored: {stats} under {cache.directory}")
        return 0
    print(
        f"built but NOT stored: {stats} — cache directory {cache.directory} "
        "is not writable or the query's labels are not cacheable",
        file=sys.stderr,
    )
    return 1


def _command_lattice(args: argparse.Namespace) -> int:
    from repro.lattice import build_lattice, default_lattice, parse_rollup_spec

    cache = RollupCache(args.cache_dir)
    if args.action == "inspect":
        return _lattice_inspect(cache)
    # action == "build": plan roots, scan once, derive the rest, persist.
    _require_one_source(args)
    if args.source:
        data = _resolve_cli_source(args)
        schema = data.schema
        measures = schema.measure_names()
        if not measures:
            raise ReproError(f"source {data.uri} binds no measure column")
        measure = measures[0]
        aggregate = args.aggregate or data.default_aggregate
        dims = _split_names(args.explain_by) or schema.dimension_names()
    else:
        dataset = _load_source(args)
        data = dataset.relation
        measure = dataset.measure
        aggregate = args.aggregate or dataset.aggregate
        dims = _explain_by(args, dataset)
    max_order = args.max_order if args.max_order is not None else 3
    if args.rollups:
        specs = [
            parse_rollup_spec(entry, measure, aggregate=aggregate, max_order=max_order)
            for entry in args.rollups.split(";")
            if entry.strip()
        ]
        if not specs:
            raise ReproError("--rollups named no rollup shapes")
    else:
        specs = default_lattice(dims, measure, aggregate=aggregate, max_order=max_order)
    kwargs = {}
    if args.chunk_rows is not None:
        kwargs["chunk_rows"] = args.chunk_rows
    cubes, report = build_lattice(data, specs, cache=cache, **kwargs)
    print(
        f"lattice {report.fingerprint}: {len(cubes)} rollup(s) — "
        f"{len(report.built)} built in one scan of {report.rows} rows "
        f"({report.chunks} chunk(s), "
        f"{'out-of-core' if report.out_of_core else 'in-memory'}), "
        f"{len(report.derived)} derived from the roots, "
        f"{report.build_seconds:.2f}s"
    )
    for spec in report.built:
        print(f"  built    {spec.describe()} (max_order={spec.max_order})")
    for spec in report.derived:
        print(f"  derived  {spec.describe()} (max_order={spec.max_order})")
    # stored counts cubes + the manifest; anything short of that means
    # the cache could not persist the full lattice — fail loudly, a
    # prewarm that silently did not land would defeat its purpose.
    if report.stored < len(cubes) + 1:
        print(
            f"stored only {report.stored}/{len(cubes) + 1} artifact(s) under "
            f"{cache.directory} — directory unwritable or labels uncacheable",
            file=sys.stderr,
        )
        return 1
    print(f"stored {len(cubes)} rollup(s) + manifest under {cache.directory}")
    return 0


def _lattice_inspect(cache: RollupCache) -> int:
    """List every lattice manifest a cache directory holds."""
    import json as _json
    from pathlib import Path

    from repro.cube.cache import MANIFEST_SUFFIX
    from repro.lattice import LatticeManifest

    paths = sorted(Path(cache.directory).glob(f"*{MANIFEST_SUFFIX}"))
    if not paths:
        print(f"no lattice manifests under {cache.directory}")
        return 0
    corrupt = 0
    for path in paths:
        try:
            manifest = LatticeManifest.from_payload(
                _json.loads(path.read_text(encoding="utf-8"))
            )
        except (OSError, ValueError, ReproError) as error:
            corrupt += 1
            print(f"{path.name}: unreadable ({error})", file=sys.stderr)
            continue
        print(f"lattice {manifest.fingerprint} (time={manifest.time_attr}):")
        for entry in manifest.entries:
            spec = entry.spec
            print(
                f"  {spec.describe():<40s} max_order={spec.max_order} "
                f"[{entry.origin}]"
            )
    print(
        f"{len(paths) - corrupt} manifest(s)"
        + (f", {corrupt} unreadable" if corrupt else "")
    )
    return 1 if corrupt else 0


def _command_store(args: argparse.Namespace) -> int:
    source = resolve_source(
        args.source_uri,
        dimensions=_split_names(args.dimensions),
        measures=[args.measure] if args.measure else (),
        time=args.time,
        # inspect is schema *discovery*: it must work on a file whose
        # roles the user does not know yet.
        require_binding=args.action != "inspect",
    )
    if args.action == "convert":
        if not args.dest:
            raise ReproError("store convert needs a destination URI")
        path, rows = convert(source, args.dest)
        print(f"wrote {rows} rows from {source.uri} to {path}")
        return 0
    # action == "inspect": schema discovery + cheap identity, no
    # materialization beyond what the backend needs for counting.
    print(f"uri:         {source.uri}")
    print(f"scheme:      {source.scheme}")
    available = source.column_names()
    bound = {name: source.schema.attribute(name).kind.value for name in source.schema.names}
    print(
        "columns:     "
        + ", ".join(
            f"{name}:{bound[name]}" if name in bound else f"{name}:(unbound)"
            for name in available
        )
    )
    rows = source.count_rows()
    print(f"rows:        {rows if rows is not None else 'unknown (lazy scan)'}")
    chunk_safe = getattr(source, "chunk_safe", None)
    if chunk_safe is not None:
        print(f"chunk-safe:  {'yes' if chunk_safe else 'no (out-of-core degrades to one-shot)'}")
    print(f"fingerprint: {source.fingerprint()}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    # Imported here so plain explain/diff runs never pay the serving
    # tier's import (thread pools, http.server).
    from repro.serve.http import make_app

    names = None
    if args.datasets:
        names = _split_dataset_names(args.datasets)
        known = set(available_datasets())
        unknown = []
        for name in names:
            if name in known:
                continue
            if is_source_uri(name):
                # Resolve eagerly (cheap, no IO): a malformed URI must
                # fail at startup, not 400 every request after binding.
                resolve_source(name)
                continue
            unknown.append(name)
        if unknown:
            raise ReproError(
                f"unknown dataset(s) {unknown}; available: {sorted(known)} "
                "(or csv:/npz:/sqlite: source URIs)"
            )
    options = dict(
        datasets=names,
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        memory_budget_bytes=(
            int(args.memory_budget_mb * 1024 * 1024)
            if args.memory_budget_mb is not None
            else None
        ),
        ttl_seconds=args.ttl,
        query_workers=args.query_workers,
        build_shards=args.build_shards,
        build_workers=args.build_workers,
        max_requests=args.max_requests,
        max_inflight=args.max_inflight,
        lattice=args.lattice,
        verbose=args.verbose,
        access_log=args.access_log,
        slow_query_ms=args.slow_query_ms,
        trace_sample=args.trace_sample,
        profile_hz=args.profile_hz,
        profile_slow=args.profile_slow,
    )
    workers = args.workers
    if workers > 1:
        from repro.serve.http import reuseport_available

        if not reuseport_available():
            print(
                f"SO_REUSEPORT unavailable on this platform; "
                f"ignoring --workers {workers} and serving single-process",
                file=sys.stderr,
                flush=True,
            )
            workers = 1
        elif not options["cache_dir"]:
            # Workers share memory only through the mmap-ed artifact, and
            # the artifact needs a directory to live in.
            options["cache_dir"] = tempfile.mkdtemp(prefix="repro-serve-")
            print(
                f"--workers needs a cache dir for the shared cube artifact; "
                f"using {options['cache_dir']}",
                file=sys.stderr,
                flush=True,
            )
    if workers > 1:
        from repro.serve.multiproc import WorkerPool

        options["artifacts"] = True
        pool = WorkerPool(options, workers=workers).start()
        # The port line is machine-read by smoke tests (--port 0 binds an
        # ephemeral port), so print and flush it before blocking.
        print(f"repro serve listening on {pool.url}", flush=True)
        print(
            f"endpoints: {pool.url}/explain?dataset=NAME  /diff  /recommend  "
            "/detect  /datasets  /stats  /healthz  /metrics  /debug/profile",
            flush=True,
        )
        print(f"workers: {len(pool.pids)} (pids {', '.join(map(str, pool.pids))})", flush=True)
        try:
            pool.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            pool.shutdown()
        print("serve workers stopped")
        return 0
    app = make_app(**options)
    # The port line is machine-read by smoke tests (--port 0 binds an
    # ephemeral port), so print and flush it before blocking.
    print(f"repro serve listening on {app.url}", flush=True)
    print(
        f"endpoints: {app.url}/explain?dataset=NAME  /diff  /recommend  "
        "/detect  /datasets  /stats  /healthz  /metrics  /debug/profile",
        flush=True,
    )
    try:
        app.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        app.shutdown()
    print(f"served {app.requests_served} request(s)")
    return 0


# ----------------------------------------------------------------------
# obs: aggregate exported profiles and span trees
# ----------------------------------------------------------------------
def _obs_profile_files(args: argparse.Namespace) -> list:
    """Profile inputs: explicit paths plus every capture in --obs-dir.

    Recognizes both storage formats: ``slowprof-*.jsonl`` (and their
    rotated ``.1`` predecessors) written by ``--profile-slow``, and
    collapsed-stack text files saved from ``/debug/profile``.
    """
    from pathlib import Path

    paths = [Path(p) for p in args.paths]
    if args.obs_dir:
        base = Path(args.obs_dir).expanduser()
        paths.extend(sorted(base.glob("slowprof-*.jsonl")))
        paths.extend(sorted(base.glob("slowprof-*.jsonl.1")))
    return paths


def _obs_load_reports(paths) -> list:
    from repro.obs.profile import ProfileReport, SlowProfileWriter, parse_collapsed

    reports = []
    for path in paths:
        if ".jsonl" in path.name:
            for entry in SlowProfileWriter.read(path):
                reports.append(ProfileReport.from_json(entry))
        else:
            try:
                text = path.read_text(encoding="utf-8")
            except OSError as error:
                raise ReproError(f"cannot read profile {path}: {error}") from None
            reports.append(parse_collapsed(text))
    return [report for report in reports if report.samples]


def _obs_trace_files(args: argparse.Namespace) -> list:
    from pathlib import Path

    paths = [Path(p) for p in args.paths]
    if args.obs_dir:
        base = Path(args.obs_dir).expanduser()
        paths.extend(sorted(base.glob("traces-*.jsonl")))
        paths.extend(sorted(base.glob("traces-*.jsonl.1")))
    return paths


def _percentile(values: list, fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _obs_traces(args: argparse.Namespace) -> int:
    """``obs traces``: per-endpoint latency summary + slowest span trees."""
    from repro.obs.trace import JsonLinesExporter

    traces: list[dict] = []
    for path in _obs_trace_files(args):
        traces.extend(JsonLinesExporter.read(path))
    if not traces:
        print("no exported traces found (need --obs-dir or trace files)", file=sys.stderr)
        return 1
    by_name: dict[str, list[float]] = {}
    for trace in traces:
        by_name.setdefault(trace.get("name", "?"), []).append(
            float(trace.get("duration_ms") or 0.0)
        )
    print(f"{'endpoint':<20s} {'count':>6s} {'p50_ms':>9s} {'p95_ms':>9s} {'max_ms':>9s}")
    for name, latencies in sorted(by_name.items(), key=lambda kv: -len(kv[1])):
        print(
            f"{name:<20s} {len(latencies):>6d} "
            f"{_percentile(latencies, 0.50):>9.1f} "
            f"{_percentile(latencies, 0.95):>9.1f} "
            f"{max(latencies):>9.1f}"
        )
    slowest = sorted(
        traces, key=lambda t: -(float(t.get("duration_ms") or 0.0))
    )[: args.n]
    print(f"\nslowest {len(slowest)} request(s):")
    for trace in slowest:
        phases: dict[str, float] = {}
        for span_row in trace.get("spans", ()):
            if span_row.get("parent") is None:  # the root is the request
                continue
            duration = span_row.get("duration_ms")
            if duration is not None:
                name = span_row.get("name", "?")
                phases[name] = phases.get(name, 0.0) + float(duration)
        breakdown = ", ".join(
            f"{name} {duration:.1f}ms"
            for name, duration in sorted(phases.items(), key=lambda kv: -kv[1])[:4]
        )
        print(
            f"  {trace.get('trace_id', '?'):<18s} {trace.get('name', '?'):<14s} "
            f"{float(trace.get('duration_ms') or 0.0):>8.1f}ms  {breakdown}"
        )
    return 0


def _command_obs(args: argparse.Namespace) -> int:
    # Imported lazily like the serve tier: plain explain runs never pay it.
    if args.action == "traces":
        return _obs_traces(args)
    from pathlib import Path

    from repro.obs.profile import ProfileReport

    reports = _obs_load_reports(_obs_profile_files(args))
    if not reports:
        print(
            "no profile samples found (need --obs-dir with slowprof files, "
            "or saved /debug/profile captures)",
            file=sys.stderr,
        )
        return 1
    merged = ProfileReport.merge(reports)
    if args.action == "flame":
        text = merged.collapsed()
        if args.out:
            Path(args.out).write_text(text, encoding="utf-8")
            print(
                f"wrote {len(merged.stacks)} collapsed stack(s) "
                f"({merged.samples} samples from {len(reports)} capture(s)) "
                f"to {args.out}"
            )
        else:
            print(text, end="")
        return 0
    # action == "top": phase self-time, then leaf-frame hotspots.
    print(
        f"{merged.samples} samples over {merged.duration_seconds:.1f}s "
        f"({len(reports)} capture(s))"
    )
    print(f"\n{'phase':<24s} {'samples':>8s} {'self_s':>8s}")
    for phase, seconds in merged.phase_self_seconds().items():
        print(f"{phase:<24s} {merged.phase_samples[phase]:>8d} {seconds:>8.2f}")
    print(f"\n{'hotspot (leaf frame)':<56s} {'samples':>8s} {'self_s':>8s}")
    for frame, samples, seconds in merged.top(args.n):
        print(f"{frame:<56s} {samples:>8d} {seconds:>8.2f}")
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    """``bench check``: gate the newest bench records against history."""
    from pathlib import Path

    from repro.obs import bench as bench_gate

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        results_dir = args.results_dir or "benchmarks"
        paths = bench_gate.discover_bench_files(results_dir)
        if not paths:
            print(f"no BENCH_*.json files under {results_dir}", file=sys.stderr)
            return 2
    checks = bench_gate.check_files(
        paths,
        tolerance=args.tolerance,
        window=args.window,
        min_history=args.min_history,
        min_latency_ms=args.min_latency_ms,
    )
    failed = False
    for check in checks:
        print(check.summary())
        for regression in check.regressions:
            failed = True
            print(f"  REGRESSION {regression.message()}")
    if failed:
        print("bench check FAILED: newest record regressed vs its trajectory",
              file=sys.stderr)
        return 1
    print(f"bench check OK ({len(checks)} trajectory file(s))")
    return 0


def _command_datasets(_: argparse.Namespace) -> int:
    for name in available_datasets():
        dataset = load_dataset(name) if name != "liquor" else load_dataset(name, n_products=50)
        print(f"{name:<14s} {dataset.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TSExplain: explain aggregated time series by their evolving contributors",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    explain = commands.add_parser("explain", help="segment and explain a KPI")
    _add_source_arguments(explain)
    explain.add_argument("--k", type=int, help="fixed segment count (default: elbow)")
    explain.add_argument("--m", type=int, help="explanations per segment (default 3)")
    explain.add_argument("--metric", help="difference metric (default absolute-change)")
    explain.add_argument("--variant", help="variance design (default tse)")
    explain.add_argument("--smoothing", type=int, help="moving-average window")
    explain.add_argument("--vanilla", action="store_true", help="disable all optimizations")
    explain.add_argument("--start", help="first timestamp label of the window")
    explain.add_argument("--stop", help="last timestamp label of the window")
    explain.add_argument(
        "--report",
        choices=("full", "table", "sparklines"),
        default="table",
        help="output style",
    )
    explain.add_argument(
        "--cache-dir",
        help="rollup-cache directory; reuses a previously built cube when possible",
    )
    explain.add_argument(
        "--max-order",
        type=int,
        help="candidate order threshold beta_max (default 3); must match any "
        "`cache build --max-order` prewarm for the cache to hit",
    )
    explain.add_argument(
        "--lattice",
        action="store_true",
        help="answer the prepare from the rollup lattice in --cache-dir "
        "(exact or derived rollup; see 'repro lattice build')",
    )
    storage = explain.add_argument_group("out-of-core ingestion (--source only)")
    storage.add_argument(
        "--out-of-core",
        action="store_true",
        help="build the cube chunk-by-chunk from the source (peak relation "
        "residency bounded by --chunk-rows; byte-identical to in-memory)",
    )
    storage.add_argument(
        "--chunk-rows",
        type=int,
        default=None,
        help="rows per ingestion chunk (default 100000)",
    )
    follow = explain.add_argument_group("streaming (--csv sources only)")
    follow.add_argument(
        "--follow",
        action="store_true",
        help="tail the CSV for appended rows and update the explanation "
        "incrementally (O(delta) per update)",
    )
    follow.add_argument(
        "--poll-interval",
        type=float,
        default=1.0,
        help="seconds between polls of the followed CSV (default 1.0)",
    )
    follow.add_argument(
        "--max-updates",
        type=int,
        default=None,
        help="stop following after this many updates (default: run until "
        "interrupted)",
    )
    explain.set_defaults(handler=_command_explain)

    diff = commands.add_parser("diff", help="two-point diff between timestamps")
    _add_source_arguments(diff)
    diff.add_argument("--start", required=True, help="control timestamp label")
    diff.add_argument("--stop", required=True, help="test timestamp label")
    diff.add_argument("--m", type=int, help="number of explanations (default 3)")
    diff.set_defaults(handler=_command_diff)

    recommend = commands.add_parser("recommend", help="rank explain-by attributes")
    _add_source_arguments(recommend)
    recommend.add_argument("--m", type=int, help="probe quota (default 3)")
    recommend.set_defaults(handler=_command_recommend)

    detect = commands.add_parser(
        "detect",
        help="tiered-baseline anomaly detection and suppression plans",
    )
    detect.add_argument(
        "action",
        choices=("scan", "follow", "plan", "apply"),
        help="scan: score every cube cell against its rolling baseline; "
        "follow: tail a CSV and score each delta incrementally; "
        "plan: scan and emit a reviewable suppression plan; "
        "apply: execute a reviewed plan against the data",
    )
    _add_source_arguments(detect)
    thresholds = detect.add_argument_group("detector thresholds")
    thresholds.add_argument(
        "--z-warn", type=float, help="warn threshold on |z| (default 2.5)"
    )
    thresholds.add_argument(
        "--z-alert", type=float, help="alert threshold on |z| (default 3.5)"
    )
    thresholds.add_argument(
        "--z-critical", type=float, help="critical threshold on |z| (default 6.0)"
    )
    thresholds.add_argument(
        "--min-volume",
        type=float,
        help="skip cells where both |baseline| and |value| are below this",
    )
    thresholds.add_argument(
        "--min-deviation",
        type=float,
        help="skip cells whose |value - baseline| is below this",
    )
    thresholds.add_argument(
        "--direction",
        choices=("both", "spike", "drop"),
        help="restrict to spikes (above baseline) or drops (default both)",
    )
    thresholds.add_argument(
        "--top",
        type=int,
        help="report at most this many cells, most severe first (default 200)",
    )
    detect.add_argument(
        "--cache-dir",
        help="rollup-cache directory for the underlying explain session",
    )
    detect.add_argument(
        "--max-order", type=int, help="candidate order threshold (default 3)"
    )
    detect.add_argument(
        "--json", help="also write the scan report as JSON to this path"
    )
    detect.add_argument(
        "--out", help="write the suppression plan as JSON to this path"
    )
    detect.add_argument(
        "--no-link",
        action="store_true",
        help="skip cross-linking plan entries to their top explanations",
    )
    applying = detect.add_argument_group("apply")
    applying.add_argument("--plan", help="suppression-plan JSON to apply")
    applying.add_argument(
        "--write-csv", help="write the corrected relation as CSV to this path"
    )
    applying.add_argument(
        "--explain",
        action="store_true",
        help="re-explain the corrected relation after applying the plan",
    )
    following = detect.add_argument_group("streaming (follow, --csv sources only)")
    following.add_argument(
        "--poll-interval",
        type=float,
        default=1.0,
        help="seconds between polls of the followed CSV (default 1.0)",
    )
    following.add_argument(
        "--max-updates",
        type=int,
        default=None,
        help="stop following after this many updates (default: run until "
        "interrupted)",
    )
    detect.set_defaults(handler=_command_detect)

    cache = commands.add_parser("cache", help="manage the persistent rollup cache")
    cache.add_argument(
        "action",
        choices=("build", "inspect", "clear"),
        help="build: precompute a query's cube; inspect: list entries; clear: delete them",
    )
    cache.add_argument("--cache-dir", required=True, help="cache directory")
    cache.add_argument(
        "--max-order", type=int, help="candidate order threshold for build (default 3)"
    )
    _add_source_arguments(cache)
    cache.set_defaults(handler=_command_cache)

    lattice = commands.add_parser(
        "lattice", help="build and inspect rollup lattices for the query router"
    )
    lattice.add_argument(
        "action",
        choices=("build", "inspect"),
        help="build: one scan feeds every root rollup, the rest derive from "
        "their ledgers; inspect: list the lattice manifests in a cache dir",
    )
    lattice.add_argument(
        "--cache-dir", required=True, help="rollup-cache directory the lattice lives in"
    )
    _add_source_arguments(lattice)
    lattice.add_argument(
        "--rollups",
        help="semicolon-separated rollup shapes 'dims@agg', e.g. "
        "'region,channel@sum;region@avg' (default: the full explain-by set "
        "plus each single dimension)",
    )
    lattice.add_argument(
        "--max-order", type=int, help="candidate order threshold (default 3)"
    )
    lattice.add_argument(
        "--chunk-rows",
        type=int,
        default=None,
        help="rows per ingestion chunk for --source builds (default 100000)",
    )
    lattice.set_defaults(handler=_command_lattice)

    datasets = commands.add_parser("datasets", help="list bundled datasets")
    datasets.set_defaults(handler=_command_datasets)

    store = commands.add_parser(
        "store", help="inspect and convert pluggable data sources"
    )
    store.add_argument(
        "action",
        choices=("convert", "inspect"),
        help="convert: rewrite a source under another backend; "
        "inspect: schema, row count, chunk safety, fingerprint",
    )
    store.add_argument(
        "source_uri", help="source URI (csv:/npz:/sqlite:, or a bare path)"
    )
    store.add_argument(
        "dest",
        nargs="?",
        help="destination URI for convert (npz:out.npz, sqlite:out.db?table=t, csv:out.csv)",
    )
    store.add_argument("--time", help="time column (csv/sqlite sources)")
    store.add_argument("--dimensions", help="comma-separated dimension columns")
    store.add_argument("--measure", help="measure column")
    store.set_defaults(handler=_command_store)

    serve = commands.add_parser(
        "serve", help="start the concurrent JSON-over-HTTP serving tier"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="bind port (0 picks an ephemeral port, printed on startup)",
    )
    serve.add_argument(
        "--datasets",
        action="append",
        help="dataset names and/or source URIs to serve, comma-separated; "
        "repeat the flag for entries whose URIs contain ambiguous commas "
        "(default: all bundled datasets)",
    )
    serve.add_argument(
        "--cache-dir",
        help="persistent rollup-cache directory shared by all served datasets",
    )
    serve.add_argument(
        "--memory-budget-mb",
        type=float,
        help="evict least-recently-used sessions beyond this many MiB",
    )
    serve.add_argument(
        "--ttl",
        type=float,
        help="drop sessions idle for more than this many seconds",
    )
    serve.add_argument(
        "--query-workers",
        type=int,
        default=8,
        help="query thread-pool size (default 8)",
    )
    serve.add_argument(
        "--build-shards",
        type=int,
        help="split cold cube builds into this many time shards built in "
        "parallel worker processes (byte-identical to one-shot; default off)",
    )
    serve.add_argument(
        "--build-workers",
        type=int,
        help="process-pool size for sharded builds (default: CPUs - 1)",
    )
    serve.add_argument(
        "--max-requests",
        type=int,
        help="shut down after serving this many requests (smoke tests); "
        "with --workers, each worker counts its own requests",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        help="admission control: refuse requests beyond this many in flight "
        "(per worker) with 503 + Retry-After instead of queueing",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fork this many SO_REUSEPORT serve processes sharing one "
        "mmap-ed cube artifact per dataset (default 1; needs --cache-dir, "
        "a temp dir is used if unset; falls back to single-process where "
        "SO_REUSEPORT is unavailable)",
    )
    serve.add_argument(
        "--lattice",
        action="store_true",
        help="route every cold prepare through the dataset's rollup lattice "
        "(prepare with 'repro lattice build' into the same --cache-dir)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log each request to stderr"
    )
    serve.add_argument(
        "--no-access-log",
        dest="access_log",
        action="store_false",
        help="disable the structured JSON access log (one line per request "
        "with latency and trace id; enabled by default)",
    )
    serve.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        help="log requests slower than this many milliseconds to the "
        "slow-query log (JSON lines with trace ids, under <cache-dir>/obs "
        "when a cache dir is set, else stderr; default off)",
    )
    serve.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        help="fraction of requests whose phase-span tree is recorded and "
        "exported (default 1.0; every response still carries an "
        "X-Repro-Trace-Id header)",
    )
    serve.add_argument(
        "--profile-hz",
        type=float,
        default=None,
        help="run a continuous sampling profiler at this rate, feeding "
        "per-phase self-time into the repro_profile_phase_self_seconds_total "
        "metric (default off; ~19 Hz is a good always-on rate)",
    )
    serve.add_argument(
        "--profile-slow",
        action="store_true",
        help="auto-capture a short sampling profile whenever a request "
        "crosses --slow-query-ms, appended to slowprof-<worker>.jsonl "
        "next to the slow-query log keyed by trace id (needs "
        "--slow-query-ms and a cache/obs dir)",
    )
    serve.set_defaults(handler=_command_serve, access_log=True)

    obs = commands.add_parser(
        "obs", help="aggregate exported profiles and trace span trees"
    )
    obs.add_argument(
        "action",
        choices=("top", "flame", "traces"),
        help="top: phase self-time + hotspot table from captured profiles; "
        "flame: merge captures into one collapsed-stack file "
        "(flamegraph.pl-compatible); traces: per-endpoint latency summary "
        "and the slowest requests' phase breakdown",
    )
    obs.add_argument(
        "paths",
        nargs="*",
        help="explicit input files: slowprof-*.jsonl captures, saved "
        "/debug/profile collapsed text (top/flame), or traces-*.jsonl "
        "exports (traces)",
    )
    obs.add_argument(
        "--obs-dir",
        help="observability directory to scan (<cache-dir>/obs of a serve "
        "run); adds its slowprof/traces files to any explicit paths",
    )
    obs.add_argument(
        "--n", type=int, default=20, help="rows to print (default 20)"
    )
    obs.add_argument(
        "--out", help="obs flame: write the merged collapsed stacks here"
    )
    obs.set_defaults(handler=_command_obs)

    bench = commands.add_parser(
        "bench", help="benchmark-trajectory tooling (perf-regression gate)"
    )
    bench.add_argument(
        "action",
        choices=("check",),
        help="check: compare each BENCH_*.json file's newest record against "
        "the rolling median of its prior runs; non-zero exit on regression",
    )
    bench.add_argument(
        "paths", nargs="*", help="explicit BENCH_*.json files to gate"
    )
    bench.add_argument(
        "--results-dir",
        help="directory holding BENCH_*.json trajectories (default benchmarks/)",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="fail when a metric is more than this many times worse than "
        "its rolling median (default 3.0 — generous, because records come "
        "from different machines)",
    )
    bench.add_argument(
        "--window",
        type=int,
        default=5,
        help="prior records per (bench, scale) group in the rolling median "
        "(default 5)",
    )
    bench.add_argument(
        "--min-history",
        type=int,
        default=1,
        help="prior records required before gating (default 1; fewer passes "
        "with a note)",
    )
    bench.add_argument(
        "--min-latency-ms",
        type=float,
        default=1.0,
        help="skip latency metrics whose baseline is below this (sub-ms "
        "numbers are timer jitter; default 1.0)",
    )
    bench.set_defaults(handler=_command_bench)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
