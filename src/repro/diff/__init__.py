"""Difference metrics and segment scoring (two-relations diff building block)."""

from repro.diff.metrics import (
    AbsoluteChange,
    DifferenceMetric,
    RelativeChange,
    RiskRatio,
    available_metrics,
    change_effect,
    get_metric,
)
from repro.diff.scorer import ScoredExplanation, SegmentScorer

__all__ = [
    "AbsoluteChange",
    "DifferenceMetric",
    "RelativeChange",
    "RiskRatio",
    "ScoredExplanation",
    "SegmentScorer",
    "available_metrics",
    "change_effect",
    "get_metric",
]
