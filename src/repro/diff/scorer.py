"""Segment scoring: binds a cube to a difference metric.

:class:`SegmentScorer` is the object every downstream module talks to — the
cascading analysts algorithm pulls full ``gamma`` vectors per segment, the
NDCG distance pulls ``gamma``/``tau`` for a handful of explanation indices,
and the two-relation diff example ranks one segment's scores directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cube.datacube import ExplanationCube
from repro.diff.metrics import DifferenceMetric, change_effect, get_metric
from repro.exceptions import QueryError
from repro.relation.predicates import Conjunction


@dataclass(frozen=True)
class ScoredExplanation:
    """An explanation with its difference score and change effect."""

    explanation: Conjunction
    gamma: float
    tau: int

    @property
    def effect_symbol(self) -> str:
        """``+``/``-``/``0`` rendering of the change effect (paper tables)."""
        return {1: "+", -1: "-", 0: "0"}[self.tau]

    def __repr__(self) -> str:
        return f"{self.explanation!r}({self.effect_symbol}, gamma={self.gamma:g})"


class SegmentScorer:
    """Difference scores of every cube candidate over arbitrary segments.

    Parameters
    ----------
    cube:
        The explanation cube of the query being explained.
    metric:
        Difference metric name or instance (default ``absolute-change``).
    """

    def __init__(self, cube: ExplanationCube, metric: str | DifferenceMetric = "absolute-change"):
        if isinstance(metric, str):
            metric = get_metric(metric)
        self._cube = cube
        self._metric = metric

    @property
    def cube(self) -> ExplanationCube:
        return self._cube

    @property
    def metric(self) -> DifferenceMetric:
        return self._metric

    @property
    def n_explanations(self) -> int:
        return self._cube.n_explanations

    def _check_segment(self, start: int, stop: int) -> None:
        if not 0 <= start < stop < self._cube.n_times:
            raise QueryError(
                f"invalid segment [{start}, {stop}] for series of length "
                f"{self._cube.n_times}"
            )

    def gamma(self, start: int, stop: int, indices: np.ndarray | None = None) -> np.ndarray:
        """``gamma(E)`` for all (or selected) candidates over ``[p_start, p_stop]``."""
        self._check_segment(start, stop)
        contributions = self._cube.signed_contributions(start, stop, indices)
        return self._metric.score(contributions, self._cube.overall_change(start, stop))

    def tau(self, start: int, stop: int, indices: np.ndarray | None = None) -> np.ndarray:
        """``tau(E)`` change effects over ``[p_start, p_stop]``."""
        self._check_segment(start, stop)
        return change_effect(self._cube.signed_contributions(start, stop, indices))

    def gamma_tau(
        self, start: int, stop: int, indices: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Both ``gamma`` and ``tau`` in one cube access."""
        self._check_segment(start, stop)
        contributions = self._cube.signed_contributions(start, stop, indices)
        scores = self._metric.score(contributions, self._cube.overall_change(start, stop))
        return scores, change_effect(contributions)

    def scored(self, index: int, start: int, stop: int) -> ScoredExplanation:
        """A single candidate's :class:`ScoredExplanation` over a segment."""
        selector = np.asarray([index])
        contributions = self._cube.signed_contributions(start, stop, selector)
        score = self._metric.score(contributions, self._cube.overall_change(start, stop))
        return ScoredExplanation(
            explanation=self._cube.explanations[index],
            gamma=float(score[0]),
            tau=int(np.sign(contributions[0])),
        )

    def rank_segment(self, start: int, stop: int, top: int | None = None) -> list[ScoredExplanation]:
        """Candidates ranked by ``gamma`` descending (possibly overlapping).

        This is the "top-m explanations" *without* the non-overlap
        constraint — Definition 3.5's motivation notes that such a list can
        double-count records; use :mod:`repro.ca` for the non-overlapping
        version.  Ties break deterministically by candidate position.
        """
        scores, effects = self.gamma_tau(start, stop)
        order = np.argsort(-scores, kind="stable")
        if top is not None:
            order = order[:top]
        return [
            ScoredExplanation(
                explanation=self._cube.explanations[i],
                gamma=float(scores[i]),
                tau=int(effects[i]),
            )
            for i in order
        ]
