"""Segment scoring: binds a cube to a difference metric.

:class:`SegmentScorer` is the object every downstream module talks to — the
cascading analysts algorithm pulls whole ``gamma``/``tau`` matrices for
batches of segments (:meth:`SegmentScorer.gamma_tau_many`), the NDCG
distance pulls ``gamma``/``tau`` for a handful of explanation indices, and
the two-relation diff example ranks one segment's scores directly.  All
forms are O(1)-per-candidate lookups into the cube; none of them loop over
candidates in Python.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cube.datacube import ExplanationCube
from repro.diff.metrics import DifferenceMetric, change_effect, get_metric
from repro.exceptions import QueryError
from repro.relation.predicates import Conjunction


@dataclass(frozen=True)
class ScoredExplanation:
    """An explanation with its difference score and change effect."""

    explanation: Conjunction
    gamma: float
    tau: int

    @property
    def effect_symbol(self) -> str:
        """``+``/``-``/``0`` rendering of the change effect (paper tables)."""
        return {1: "+", -1: "-", 0: "0"}[self.tau]

    def __repr__(self) -> str:
        return f"{self.explanation!r}({self.effect_symbol}, gamma={self.gamma:g})"


class SegmentScorer:
    """Difference scores of every cube candidate over arbitrary segments.

    Parameters
    ----------
    cube:
        The explanation cube of the query being explained.
    metric:
        Difference metric name or instance (default ``absolute-change``).
    """

    def __init__(self, cube: ExplanationCube, metric: str | DifferenceMetric = "absolute-change"):
        if isinstance(metric, str):
            metric = get_metric(metric)
        self._cube = cube
        self._metric = metric

    @property
    def cube(self) -> ExplanationCube:
        return self._cube

    @property
    def metric(self) -> DifferenceMetric:
        return self._metric

    @property
    def n_explanations(self) -> int:
        return self._cube.n_explanations

    def _check_segment(self, start: int, stop: int) -> None:
        if not 0 <= start < stop < self._cube.n_times:
            raise QueryError(
                f"invalid segment [{start}, {stop}] for series of length "
                f"{self._cube.n_times}"
            )

    def gamma(self, start: int, stop: int, indices: np.ndarray | None = None) -> np.ndarray:
        """``gamma(E)`` for all (or selected) candidates over ``[p_start, p_stop]``."""
        self._check_segment(start, stop)
        contributions = self._cube.signed_contributions(start, stop, indices)
        return self._metric.score(contributions, self._cube.overall_change(start, stop))

    def tau(self, start: int, stop: int, indices: np.ndarray | None = None) -> np.ndarray:
        """``tau(E)`` change effects over ``[p_start, p_stop]``."""
        self._check_segment(start, stop)
        return change_effect(self._cube.signed_contributions(start, stop, indices))

    def gamma_tau(
        self, start: int, stop: int, indices: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Both ``gamma`` and ``tau`` in one cube access."""
        self._check_segment(start, stop)
        contributions = self._cube.signed_contributions(start, stop, indices)
        scores = self._metric.score(contributions, self._cube.overall_change(start, stop))
        return scores, change_effect(contributions)

    def _coerce_segments(
        self, starts: np.ndarray, stops: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        starts = np.asarray(starts)
        stops = np.asarray(stops)
        if starts.shape != stops.shape or starts.ndim != 1:
            raise QueryError(
                f"starts/stops must be 1-D arrays of equal length, got shapes "
                f"{starts.shape} and {stops.shape}"
            )
        for name, positions in (("starts", starts), ("stops", stops)):
            if positions.size and not np.issubdtype(positions.dtype, np.integer):
                raise QueryError(
                    f"segment {name} must be integer positions, got dtype "
                    f"{positions.dtype}"
                )
        starts = starts.astype(np.intp, copy=False)
        stops = stops.astype(np.intp, copy=False)
        bad = np.flatnonzero(
            ~((0 <= starts) & (starts < stops) & (stops < self._cube.n_times))
        )
        if bad.size:
            offender = int(bad[0])
            raise QueryError(
                f"invalid segment [{int(starts[offender])}, "
                f"{int(stops[offender])}] at batch position {offender} for "
                f"series of length {self._cube.n_times}"
            )
        return starts, stops

    def overall_changes(self, starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
        """``f(R_t) - f(R_c)`` for a batch of segments (one value each)."""
        starts, stops = self._coerce_segments(starts, stops)
        overall = self._cube.overall_values
        return overall[stops] - overall[starts]

    def _score_many(
        self, starts: np.ndarray, stops: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        starts, stops = self._coerce_segments(starts, stops)
        contributions = self._cube.signed_contributions_many(starts, stops)
        overall = self._cube.overall_values
        overall_change = (overall[stops] - overall[starts])[None, :]
        return contributions, self._metric.score(contributions, overall_change)

    def gamma_many(self, starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
        """The ``gamma`` matrix alone for a batch of segments.

        Same ``(epsilon, n_segments)`` layout as :meth:`gamma_tau_many`
        but without materializing the tau matrix — the right call when
        change effects are needed only for a few winning candidates per
        segment (fetch those afterwards with :meth:`tau`).
        """
        _, scores = self._score_many(starts, stops)
        return scores

    def gamma_tau_many(
        self, starts: np.ndarray, stops: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``gamma`` and ``tau`` matrices for a batch of segments.

        The bulk form used by the cascading-analysts module and the
        segment-cost precomputation: segment ``s`` spans
        ``[p_{starts[s]}, p_{stops[s]}]`` and both returned arrays have
        shape ``(epsilon, n_segments)``.  ``tau`` is stored as ``int8``
        (unlike the float signs of :meth:`gamma_tau`) because callers keep
        the whole matrix resident.  One cube gather scores every candidate
        over every segment — no per-candidate or per-segment Python loop.
        """
        contributions, scores = self._score_many(starts, stops)
        return scores, change_effect(contributions).astype(np.int8)

    def scored(self, index: int, start: int, stop: int) -> ScoredExplanation:
        """A single candidate's :class:`ScoredExplanation` over a segment."""
        selector = np.asarray([index])
        contributions = self._cube.signed_contributions(start, stop, selector)
        score = self._metric.score(contributions, self._cube.overall_change(start, stop))
        return ScoredExplanation(
            explanation=self._cube.explanations[index],
            gamma=float(score[0]),
            tau=int(np.sign(contributions[0])),
        )

    def rank_segment(self, start: int, stop: int, top: int | None = None) -> list[ScoredExplanation]:
        """Candidates ranked by ``gamma`` descending (possibly overlapping).

        This is the "top-m explanations" *without* the non-overlap
        constraint — Definition 3.5's motivation notes that such a list can
        double-count records; use :mod:`repro.ca` for the non-overlapping
        version.  Ties break deterministically by candidate position.
        """
        scores, effects = self.gamma_tau(start, stop)
        order = np.argsort(-scores, kind="stable")
        if top is not None:
            order = order[:top]
        return [
            ScoredExplanation(
                explanation=self._cube.explanations[i],
                gamma=float(scores[i]),
                tau=int(effects[i]),
            )
            for i in order
        ]
