"""Difference metrics ``gamma(E)`` and change effects ``tau(E)``.

The diff framework [Abuzaid et al., VLDB'18] abstracts explanation quality
behind a difference metric.  The paper evaluates with ``absolute-change``
(Definition 3.2) and names ``relative-change`` and ``risk-ratio`` as other
common choices; its conclusion lists "extending the difference metric
library" as future work, so all three are implemented here behind one
interface.

All metrics are computed from the *signed contribution*

    delta(E) = [f(R_t) - f(R_c)] - [f(R_t - sigma_E R_t) - f(R_c - sigma_E R_c)]

supplied by the cube; the change effect is always ``tau(E) = sign(delta(E))``
(Definition 3.3), independent of the metric.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ExplanationError

#: Guard against division by zero in ratio-style metrics.
_EPSILON = 1e-12


class DifferenceMetric(abc.ABC):
    """A difference metric mapping signed contributions to scores."""

    #: registry key
    name: str = ""

    @abc.abstractmethod
    def score(self, contributions: np.ndarray, overall_change: float) -> np.ndarray:
        """Non-negative ``gamma`` scores for an array of signed contributions.

        Parameters
        ----------
        contributions:
            ``delta(E)`` for each candidate (any shape).
        overall_change:
            ``f(R_t) - f(R_c)`` of the same segment(s): a scalar, or an
            array broadcastable against ``contributions`` when scoring a
            batch of segments at once.
        """

    def __repr__(self) -> str:
        return f"<metric {self.name}>"


class AbsoluteChange(DifferenceMetric):
    """``gamma(E) = |delta(E)|`` (Definition 3.2) — the paper's default."""

    name = "absolute-change"

    def score(self, contributions: np.ndarray, overall_change: float) -> np.ndarray:
        return np.abs(contributions)


class RelativeChange(DifferenceMetric):
    """Share of the overall change attributable to the slice.

    ``gamma(E) = |delta(E)| / max(|f(R_t) - f(R_c)|, eps)``.  Ranks
    identically to absolute-change within one segment but is comparable
    across segments of very different magnitudes.
    """

    name = "relative-change"

    def score(self, contributions: np.ndarray, overall_change: float) -> np.ndarray:
        denominator = np.maximum(np.abs(overall_change), _EPSILON)
        return np.abs(contributions) / denominator

class RiskRatio(DifferenceMetric):
    """Ratio of the slice's change against the rest of the data's change.

    ``gamma(E) = |delta(E)| / (|f(R_t) - f(R_c) - delta(E)| + eps)`` — the
    numerator is the slice's own change, the denominator the change of
    ``R - sigma_E R``.  Values above 1 mean the slice moved more than
    everything else combined.
    """

    name = "risk-ratio"

    def score(self, contributions: np.ndarray, overall_change: float) -> np.ndarray:
        rest_change = np.abs(overall_change - contributions)
        return np.abs(contributions) / (rest_change + _EPSILON)


def change_effect(contributions: np.ndarray) -> np.ndarray:
    """Change effects ``tau(E) = sign(delta(E))`` in ``{-1, 0, +1}``."""
    return np.sign(contributions)


_REGISTRY: dict[str, DifferenceMetric] = {
    metric.name: metric for metric in (AbsoluteChange(), RelativeChange(), RiskRatio())
}


def get_metric(name: str) -> DifferenceMetric:
    """Look up a difference metric by name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise ExplanationError(
            f"unknown difference metric {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_metrics() -> tuple[str, ...]:
    """Names of all registered difference metrics."""
    return tuple(sorted(_REGISTRY))
