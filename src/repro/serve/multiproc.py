"""The multi-process serving front end: N workers, one port, one artifact.

One Python process caps the solve throughput at the GIL however many
threads the scheduler pools.  The classic fix — fork N servers — normally
multiplies resident memory by N, because every worker would hold a
private copy of every prepared cube.  This module combines two kernel
facilities so neither cost is paid:

* **``SO_REUSEPORT``** — every worker binds the *same* ``host:port`` with
  the option set and the kernel load-balances incoming connections across
  their accept queues.  No parent proxy, no socket hand-off; a worker
  that dies simply drops out of the group and the survivors keep
  answering.
* **the finalized-cube artifact** (:mod:`repro.cube.artifact`) — the
  parent pre-builds each dataset's cube once and publishes it as an
  uncompressed, mmap-able file; every worker's registry then adopts the
  artifact read-only via ``np.memmap``, so the series matrices live once
  in the page cache regardless of the worker count.  Resident memory is
  per *dataset*, not per worker.

Admission control rides along: each worker bounds its in-flight requests
(``max_inflight``) and sheds the excess with ``503`` + ``Retry-After``
instead of queueing unboundedly — N workers at the same port make
unbounded queues N times worse, so the bound is wired through here.

Platforms without ``SO_REUSEPORT`` (or explicit ``--workers 1``) fall
back to the classic single-process server; the CLI prints a notice and
serves identically, just without the parallelism.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import socket
import time
import urllib.request
from typing import Sequence

from repro.exceptions import QueryError
from repro.serve.http import reuseport_available

#: How long :meth:`WorkerPool.start` waits for workers to answer /healthz.
READY_TIMEOUT_SECONDS = 60.0

#: How long :meth:`WorkerPool.shutdown` waits for a graceful worker exit.
STOP_GRACE_SECONDS = 10.0


def _worker_main(options: dict) -> None:
    """One serve worker: bind the shared port, serve until stopped.

    Runs in a forked child.  SIGINT (the pool's graceful stop signal)
    surfaces as KeyboardInterrupt out of ``serve_forever``; the
    ``finally`` then drains in-flight requests before the process exits,
    so a pool shutdown never tears a response.
    """
    from repro.serve.http import make_app

    app = make_app(**options)
    try:
        app.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        app.shutdown()


def prebuild_artifacts(
    datasets: Sequence[str] | None, cache_dir: str, lattice: bool = False
) -> int:
    """Build and publish every dataset's finalized artifact once.

    Runs in the parent before forking: each cold build lands in
    ``cache_dir`` as a mmap-able artifact, so every worker's first
    request is an artifact hit (warm start, no per-worker build).  The
    parent's own sessions are dropped afterwards — it keeps serving
    nothing, so its resident set stays small.  Returns the number of
    datasets prepared.
    """
    from repro.datasets.registry import available_datasets
    from repro.serve.registry import DatasetSpec, SessionRegistry
    from repro.store import is_source_uri

    names = tuple(datasets) if datasets is not None else available_datasets()
    specs = [
        DatasetSpec.from_source(name, lattice=lattice)
        if is_source_uri(name)
        else DatasetSpec.bundled(name, lattice=lattice)
        for name in names
    ]
    registry = SessionRegistry(specs=specs, cache_dir=cache_dir, artifacts=True)
    for name in names:
        registry.session(name)
    registry.clear()
    return len(names)


class WorkerPool:
    """N forked ``SO_REUSEPORT`` serve workers over one shared artifact set.

    Parameters
    ----------
    options:
        :func:`~repro.serve.http.make_app` keyword options, applied to
        every worker.  ``port=0`` reserves an ephemeral port in the
        parent (read it back from :attr:`port`).  ``build_shards`` /
        ``build_workers`` are consumed by the parent's pre-build and
        stripped from the workers — workers adopt artifacts, they do not
        build.
    workers:
        How many processes to fork (must be >= 2; use the plain
        :class:`~repro.serve.http.ServeApp` for one).
    """

    def __init__(self, options: dict, workers: int):
        if workers < 2:
            raise QueryError("WorkerPool needs workers >= 2; use ServeApp for 1")
        if not reuseport_available():
            raise QueryError(
                "SO_REUSEPORT is unavailable on this platform; "
                "serve single-process instead"
            )
        self._options = dict(options)
        self._workers = int(workers)
        self._procs: list[multiprocessing.process.BaseProcess] = []
        self._probe: socket.socket | None = None
        self._host = self._options.get("host", "127.0.0.1")
        self._port = int(self._options.get("port", 0))

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self._port}"

    @property
    def pids(self) -> tuple[int, ...]:
        return tuple(proc.pid for proc in self._procs if proc.pid is not None)

    @property
    def alive(self) -> tuple[bool, ...]:
        return tuple(proc.is_alive() for proc in self._procs)

    @property
    def n_alive(self) -> int:
        return sum(self.alive)

    # ------------------------------------------------------------------
    def start(
        self, warm: bool = True, ready_timeout: float = READY_TIMEOUT_SECONDS
    ) -> "WorkerPool":
        """Reserve the port, pre-build artifacts, fork and await readiness."""
        # Reserve the port first: a bound (never listening) SO_REUSEPORT
        # socket pins an ephemeral port for the pool's lifetime without
        # receiving connections — TCP only balances across *listening*
        # members of the group.
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        probe.bind((self._host, self._port))
        self._probe = probe
        self._port = probe.getsockname()[1]

        worker_options = dict(self._options)
        worker_options.update(
            host=self._host, port=self._port, reuse_port=True
        )
        worker_options.setdefault("artifacts", True)
        worker_options.pop("build_shards", None)
        worker_options.pop("build_workers", None)
        cache_dir = worker_options.get("cache_dir")
        if warm and cache_dir and worker_options.get("artifacts"):
            prebuild_artifacts(
                worker_options.get("datasets"),
                cache_dir,
                lattice=bool(worker_options.get("lattice", False)),
            )
        context = multiprocessing.get_context("fork")
        # Each worker gets a stable id: its snapshot/trace/slow-log files
        # under the shared obs dir stay distinct, and /healthz and
        # /metrics scrapes can tell workers apart.
        self._procs = [
            context.Process(
                target=_worker_main,
                args=({**worker_options, "worker_id": f"w{index}"},),
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            for index in range(self._workers)
        ]
        for proc in self._procs:
            proc.start()
        self._await_ready(ready_timeout)
        return self

    def _await_ready(self, timeout: float) -> None:
        """Block until the port answers /healthz (any worker suffices)."""
        deadline = time.monotonic() + timeout
        last_error: Exception | None = None
        while time.monotonic() < deadline:
            if not any(proc.is_alive() for proc in self._procs):
                self.shutdown()
                raise QueryError("every serve worker exited during startup")
            try:
                with urllib.request.urlopen(
                    f"{self.url}/healthz", timeout=2.0
                ) as response:
                    if json.loads(response.read().decode("utf-8")).get("ok"):
                        return
            except Exception as error:  # noqa: BLE001 - retry until deadline
                last_error = error
            time.sleep(0.05)
        self.shutdown()
        raise QueryError(
            f"serve workers did not become ready within {timeout:.0f}s"
            + (f" (last error: {last_error})" if last_error else "")
        )

    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Block until every worker exits (CLI mode).

        Workers normally exit only on :meth:`shutdown` (or their own
        ``max_requests`` breaker); a KeyboardInterrupt here propagates
        to the caller, whose ``finally`` is expected to call
        :meth:`shutdown`.
        """
        for proc in self._procs:
            proc.join()

    def kill_worker(self, index: int) -> int | None:
        """Hard-kill one worker (chaos testing); returns its pid.

        The remaining workers keep the ``SO_REUSEPORT`` group alive —
        the kernel stops routing new connections to the dead socket, so
        clients only ever race the instant of death itself.
        """
        proc = self._procs[index]
        pid = proc.pid
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=STOP_GRACE_SECONDS)
        return pid

    def shutdown(self, grace: float = STOP_GRACE_SECONDS) -> None:
        """Gracefully stop every worker (SIGINT → drain), then escalate."""
        for proc in self._procs:
            if proc.is_alive() and proc.pid is not None:
                try:
                    # SIGINT surfaces as KeyboardInterrupt in the worker,
                    # which drains in-flight requests before exiting.
                    os.kill(proc.pid, signal.SIGINT)
                except (OSError, ProcessLookupError):
                    pass
        deadline = time.monotonic() + grace
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=STOP_GRACE_SECONDS)
        if self._probe is not None:
            try:
                self._probe.close()
            except OSError:
                pass
            self._probe = None
