"""Many named prepared sessions behind a memory-budget + TTL LRU.

The registry is the serving tier's state: it owns one
:class:`~repro.core.session.ExplainSession` per *dataset* (a named query:
relation + measure + explain-by + config) and answers "give me the
prepared session for ``name``" under three production constraints:

* **bounded memory** — prepared cubes are the dominant resident cost, so
  sessions carry a byte estimate and the least-recently-used ones are
  evicted once the budget is exceeded (the most recent session always
  survives, even over budget: evicting the session a request is about to
  use would thrash);
* **bounded staleness** — entries idle longer than the TTL are dropped
  lazily on access and by :meth:`sweep`, so a long-running server does
  not pin cold tenants forever;
* **single-flight cold builds** — a per-key build lock makes N concurrent
  requests for a cold dataset trigger exactly *one* prepare; the other
  N-1 threads block on the lock and then adopt the winner's session
  (counted as ``coalesced`` in :meth:`stats`).

Cold prepares go through the :class:`~repro.serve.sharding.ShardedBuilder`
when one is configured (parallel shard builds, byte-identical, feeding the
persistent rollup cache); otherwise through the session's own
:meth:`~repro.core.session.ExplainSession.prepare`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.config import ExplainConfig
from repro.core.session import ExplainSession
from repro.cube.cache import CubeKey, RollupCache, cube_key
from repro.datasets.base import Dataset
from repro.datasets.registry import available_datasets, load_dataset
from repro.detect.session import DetectSession
from repro.exceptions import QueryError
from repro.lattice.router import LatticeRouter
from repro.obs.metrics import BUILD_BUCKETS, get_registry as get_metrics
from repro.obs.trace import span
from repro.serve.sharding import ShardedBuilder
from repro.store import resolve_source


def default_config_for(dataset: Dataset) -> ExplainConfig:
    """The serving default for a dataset: optimized + its smoothing.

    Mirrors the CLI's ``repro explain`` defaults exactly, so a query
    served over HTTP and the same query run from the command line return
    identical explanations.
    """
    config = ExplainConfig.optimized()
    window = dataset.smoothing_window
    if window is not None and window > 1:
        config = config.updated(smoothing_window=window)
    return config


@dataclass(frozen=True)
class DatasetSpec:
    """How the registry materializes one named dataset on first use.

    ``loader`` is a zero-argument callable returning a
    :class:`~repro.datasets.base.Dataset`; it runs at most once per cold
    build (under the single-flight lock).  ``config`` overrides the
    serving default (:func:`default_config_for`); ``explain_by`` overrides
    the dataset's own attribute set.  ``source`` names a
    :mod:`repro.store` URI instead: the cold build then goes through
    :meth:`ExplainSession.from_source` — source-fingerprint cache lookup
    first (a warm serve skips ingestion entirely), chunked out-of-core
    build on a miss — and the relation stays unmaterialized until a
    request (``/recommend``) actually needs rows.
    """

    name: str
    loader: Callable[[], Dataset]
    config: ExplainConfig | None = None
    explain_by: tuple[str, ...] | None = None
    description: str = ""
    source: str | None = None
    #: Route the cold prepare through the dataset's rollup lattice
    #: (:mod:`repro.lattice`): exact/derived rollups serve without a
    #: build, misses fall back and feed the promotion policy.
    lattice: bool = False

    @classmethod
    def bundled(cls, name: str, **kwargs) -> "DatasetSpec":
        """A spec for one of the bundled datasets (lazy-loaded)."""
        return cls(name=name, loader=lambda: load_dataset(name), **kwargs)

    @classmethod
    def from_dataset(cls, dataset: Dataset, **kwargs) -> "DatasetSpec":
        """A spec wrapping an already-materialized dataset."""
        return cls(name=dataset.name, loader=lambda: dataset, **kwargs)

    @classmethod
    def from_source(cls, uri: str, name: str | None = None, **kwargs) -> "DatasetSpec":
        """A spec serving a data-source URI (``csv:``/``npz:``/``sqlite:``)."""

        def loader() -> Dataset:
            # Source-backed specs materialize through the lazy
            # ExplainSession.from_source path in _prepare_from_source;
            # an eager loader call would silently ingest the whole
            # source, so enforce the invariant instead of permitting it.
            raise QueryError(
                f"source-backed spec {uri!r} must not be materialized via "
                "loader(); the registry prepares it lazily from the source"
            )

        return cls(name=name or uri, loader=loader, source=uri, **kwargs)


def session_nbytes(session: ExplainSession) -> int:
    """Resident-size estimate of a prepared session, in bytes.

    Counts the dominant arrays: the finalized series matrices plus the
    delta ledger's aggregate states.  Derived scorer-LRU entries are
    bounded separately (per session) and excluded — the estimate drives
    relative eviction order, not an allocator.  The detect tier's
    baseline state is counted separately (:func:`detector_nbytes`) and
    folded into the entry estimate when a detector is built.
    """
    cube = session.cube
    total = (
        cube.included_values.nbytes
        + cube.excluded_values.nbytes
        + cube.overall_values.nbytes
        + cube.supports.nbytes
    )
    state = cube.append_state
    if state is not None:
        total += state.overall.nbytes
        for ledger in state.ledgers:
            total += ledger.state.nbytes + ledger.counts.nbytes
    return total


def detector_nbytes(detector: DetectSession) -> int:
    """Resident-size estimate of a detect tier, in bytes.

    The :class:`~repro.detect.baselines.TieredBaselines` mean/std
    matrices are ``(n_candidates, n_times)`` float64 — they can rival
    the cube itself, so leaving them out of the entry estimate would
    make the memory budget trigger eviction late.
    """
    baselines = detector.baselines
    return (
        baselines.mean.nbytes
        + baselines.std.nbytes
        + baselines.tier.nbytes
        + baselines.samples.nbytes
    )


@dataclass
class _Entry:
    """One resident session plus its LRU bookkeeping."""

    session: ExplainSession
    nbytes: int
    created: float
    last_used: float
    build_seconds: float
    queries: int = 0


@dataclass
class RegistryStats:
    """Counters the registry exposes through ``/stats``."""

    hits: int = 0
    misses: int = 0
    coalesced: int = 0
    evictions: int = 0
    expirations: int = 0
    build_seconds: float = 0.0
    artifact_hits: int = 0
    artifact_stores: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "build_seconds": self.build_seconds,
            "artifact_hits": self.artifact_hits,
            "artifact_stores": self.artifact_stores,
        }


class SessionRegistry:
    """Named prepared sessions behind a memory-budget + TTL LRU.

    Parameters
    ----------
    specs:
        Initial :class:`DatasetSpec`s; more can be added with
        :meth:`register`.
    memory_budget_bytes:
        Soft cap on the summed session estimates; ``None`` (default) is
        unbounded.  The most recently used session always survives.
    ttl_seconds:
        Idle time after which a session is dropped; ``None`` disables.
    builder:
        A :class:`~repro.serve.sharding.ShardedBuilder` for parallel cold
        builds; ``None`` prepares sessions in-process, one-shot.
    cache_dir:
        Persistent rollup-cache directory shared by every dataset; cold
        builds load from and store into it.
    artifacts:
        Serve cold prepares from the mmap-able finalized-cube artifact
        (:mod:`repro.cube.artifact`) in ``cache_dir`` when one exists —
        the series matrices are then memory-mapped read-only, so N
        worker processes opening the same artifact share one resident
        copy through the page cache (warm start near zero).  Cold builds
        feed the artifact.  Requires ``cache_dir``; inert without one.
    clock:
        Injectable monotonic clock (tests pin TTL behaviour with it).
    """

    def __init__(
        self,
        specs: Sequence[DatasetSpec] = (),
        memory_budget_bytes: int | None = None,
        ttl_seconds: float | None = None,
        builder: ShardedBuilder | None = None,
        cache_dir: str | None = None,
        artifacts: bool = False,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._specs: dict[str, DatasetSpec] = {}
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._lock = threading.RLock()
        self._build_locks: dict[str, threading.Lock] = {}
        self._memory_budget = memory_budget_bytes
        self._ttl = ttl_seconds
        self._builder = builder
        self._cache = RollupCache(cache_dir) if cache_dir else None
        self._cache_dir = cache_dir
        self._artifacts = bool(artifacts and cache_dir)
        self._clock = clock
        self._stats = RegistryStats()
        metrics = get_metrics()
        self._metric_lookups = metrics.counter(
            "repro_registry_lookups_total",
            "Session lookups by outcome (hit / miss / coalesced)",
            labels=("outcome",),
        )
        self._metric_evictions = metrics.counter(
            "repro_registry_evictions_total",
            "Sessions dropped by the LRU (budget) or the TTL (expired)",
            labels=("reason",),
        )
        self._metric_build_seconds = metrics.histogram(
            "repro_registry_build_seconds",
            "Cold session prepare latency",
            buckets=BUILD_BUCKETS,
        )
        # One lattice router per data fingerprint, shared by every spec
        # over the same data (created lazily by the first lattice spec).
        self._routers: dict[str, LatticeRouter] = {}
        # One detect tier per dataset, built lazily on the first /detect
        # and dropped whenever its underlying session is (the baselines
        # are derived state — rebuilt from the fresh cube on demand).
        self._detectors: dict[str, DetectSession] = {}
        for spec in specs:
            self.register(spec)

    @classmethod
    def with_bundled_datasets(cls, names: Sequence[str] | None = None, **kwargs) -> "SessionRegistry":
        """A registry pre-populated with (a subset of) the bundled datasets."""
        names = tuple(names) if names is not None else available_datasets()
        return cls(specs=[DatasetSpec.bundled(name) for name in names], **kwargs)

    # ------------------------------------------------------------------
    # Spec management
    # ------------------------------------------------------------------
    def register(self, spec: DatasetSpec) -> None:
        """Add (or replace) a dataset spec; a resident session is dropped."""
        with self._lock:
            self._specs[spec.name] = spec
            self._entries.pop(spec.name, None)
            self._detectors.pop(spec.name, None)

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._specs))

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._specs

    # ------------------------------------------------------------------
    # The hot path
    # ------------------------------------------------------------------
    def session(self, name: str) -> ExplainSession:
        """The prepared session for ``name`` (single-flight on cold keys)."""
        with self._lock:
            spec = self._spec_for(name)
            entry = self._live_entry(name)
            if entry is not None:
                self._stats.hits += 1
                self._metric_lookups.inc(outcome="hit")
                entry.queries += 1
                return entry.session
            self._stats.misses += 1
            self._metric_lookups.inc(outcome="miss")
            build_lock = self._build_locks.setdefault(name, threading.Lock())
        # Build outside the registry lock so other datasets stay servable;
        # the per-key lock is what coalesces concurrent cold requests.
        waited = not build_lock.acquire(blocking=False)
        if waited:
            build_lock.acquire()
        try:
            with self._lock:
                entry = self._live_entry(name)
                if entry is not None:
                    # A racer built it while we waited on the key lock.
                    if waited:
                        self._stats.coalesced += 1
                        self._metric_lookups.inc(outcome="coalesced")
                    entry.queries += 1
                    return entry.session
            with span("prepare"):
                session, build_seconds = self._prepare(spec)
            self._metric_build_seconds.observe(build_seconds)
            with self._lock:
                # register() may have replaced the spec while we built;
                # serve this request from the stale session but never
                # cache it — the next request prepares the new spec.
                if self._specs.get(name) is spec:
                    self._admit(name, session, build_seconds)
            return session
        finally:
            build_lock.release()

    def touch(self, name: str) -> None:
        """Refresh ``name``'s LRU position without counting a query."""
        with self._lock:
            self._live_entry(name)

    def detect_session(self, name: str) -> DetectSession:
        """The detect tier over ``name``'s prepared session (lazy, cached).

        Keyed on the *session object*: when the LRU evicted and rebuilt
        the dataset's session, the cached detector is stale and a fresh
        one (baselines rebuilt over the new cube) replaces it.
        """
        session = self.session(name)
        with self._lock:
            detector = self._detectors.get(name)
            if detector is not None and detector.session is session:
                return detector
        # Baseline construction scans the whole cube; build it outside
        # the registry lock so other datasets stay servable meanwhile.
        detector = DetectSession(session)
        with self._lock:
            current = self._detectors.get(name)
            if current is not None and current.session is session:
                return current  # a racer built it first; adopt theirs
            self._detectors[name] = detector
            # The baselines just became resident state of this dataset:
            # fold them into the entry's byte estimate so the memory
            # budget sees them, and re-check the budget right away.
            entry = self._entries.get(name)
            if entry is not None and entry.session is session:
                entry.nbytes = session_nbytes(session) + detector_nbytes(detector)
                self._enforce_budget()
            return detector

    # ------------------------------------------------------------------
    # Maintenance and introspection
    # ------------------------------------------------------------------
    def evict(self, name: str) -> bool:
        """Drop a resident session (the spec stays registered)."""
        with self._lock:
            self._detectors.pop(name, None)
            return self._entries.pop(name, None) is not None

    def clear(self) -> None:
        """Drop every resident session."""
        with self._lock:
            self._entries.clear()
            self._detectors.clear()

    def sweep(self) -> int:
        """Drop every TTL-expired session; returns how many were dropped."""
        if self._ttl is None:
            return 0
        with self._lock:
            now = self._clock()
            expired = [
                name
                for name, entry in self._entries.items()
                if now - entry.last_used > self._ttl
            ]
            for name in expired:
                del self._entries[name]
                self._detectors.pop(name, None)
            self._stats.expirations += len(expired)
            if expired:
                self._metric_evictions.inc(len(expired), reason="expired")
            return len(expired)

    def memory_bytes(self) -> int:
        with self._lock:
            return sum(entry.nbytes for entry in self._entries.values())

    def describe(self) -> list[dict]:
        """One JSON-shaped record per registered dataset (``/datasets``)."""
        with self._lock:
            now = self._clock()
            rows = []
            for name in sorted(self._specs):
                spec = self._specs[name]
                row: dict = {
                    "name": name,
                    "description": spec.description,
                    "loaded": name in self._entries,
                }
                entry = self._entries.get(name)
                if entry is not None:
                    cube = entry.session.cube
                    row.update(
                        # Reporting must never force a lazy (source-backed)
                        # session to ingest its relation.
                        rows=(
                            entry.session.relation.n_rows
                            if entry.session.relation_loaded
                            else None
                        ),
                        epsilon=cube.n_explanations,
                        n_times=cube.n_times,
                        memory_bytes=entry.nbytes,
                        queries=entry.queries,
                        idle_seconds=round(now - entry.last_used, 3),
                        build_seconds=round(entry.build_seconds, 6),
                    )
                rows.append(row)
            return rows

    def stats(self) -> dict:
        """Registry counters plus the resident-session roster (``/stats``)."""
        with self._lock:
            payload = self._stats.as_dict()
            payload.update(
                datasets=len(self._specs),
                resident_sessions=len(self._entries),
                memory_bytes=sum(e.nbytes for e in self._entries.values()),
                memory_budget_bytes=self._memory_budget,
                ttl_seconds=self._ttl,
                cache_dir=self._cache_dir,
                artifacts=self._artifacts,
                sharded_builds=self._builder is not None,
                lattice=self.lattice_stats(),
                detect=self.detect_stats(),
            )
            return payload

    def detect_stats(self) -> dict:
        """Aggregated detect-tier counters (the ``/stats`` detect key)."""
        with self._lock:
            detectors = list(self._detectors.values())
        totals = {
            "sessions": len(detectors),
            "scans": 0,
            "appends": 0,
            "cells_scored": 0,
            "anomalies": 0,
        }
        for detector in detectors:
            stats = detector.stats()
            for key in ("scans", "appends", "cells_scored", "anomalies"):
                totals[key] += stats[key]
        return totals

    def lattice_stats(self) -> dict:
        """Aggregated lattice-router counters (the ``/stats`` lattice key)."""
        with self._lock:
            routers = list(self._routers.values())
        totals = {
            "routers": len(routers),
            "rollups": 0,
            "resident_cubes": 0,
            "exact_hits": 0,
            "derived_hits": 0,
            "lattice_miss": 0,
            "derivations": 0,
            "promotions": 0,
        }
        for router in routers:
            for key, value in router.stats().items():
                totals[key] += value
        return totals

    # ------------------------------------------------------------------
    # Internals (registry lock held unless noted)
    # ------------------------------------------------------------------
    def _spec_for(self, name: str) -> DatasetSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise QueryError(
                f"unknown dataset {name!r}; registered: {sorted(self._specs)}"
            ) from None

    def _live_entry(self, name: str) -> _Entry | None:
        """The entry for ``name`` if resident and fresh; touches its LRU slot."""
        entry = self._entries.get(name)
        if entry is None:
            return None
        now = self._clock()
        if self._ttl is not None and now - entry.last_used > self._ttl:
            del self._entries[name]
            self._stats.expirations += 1
            self._metric_evictions.inc(reason="expired")
            return None
        entry.last_used = now
        self._entries.move_to_end(name)
        return entry

    def _prepare(self, spec: DatasetSpec) -> tuple[ExplainSession, float]:
        """Materialize and prepare a session (runs under the key lock only)."""
        started = time.perf_counter()
        if spec.source is not None:
            return self._prepare_from_source(spec, started)
        dataset = spec.loader()
        config = spec.config if spec.config is not None else default_config_for(dataset)
        if self._cache_dir and not config.cache_dir:
            config = config.updated(cache_dir=self._cache_dir)
        explain_by = spec.explain_by or dataset.explain_by
        artifact_key: CubeKey | None = None
        if self._artifacts and not spec.lattice:
            artifact_key = cube_key(
                dataset.relation,
                dataset.measure,
                explain_by,
                aggregate=dataset.aggregate,
                max_order=config.max_order,
                deduplicate=config.deduplicate,
            )
            adopted = self._adopt_artifact(
                artifact_key,
                relation=dataset.relation,
                measure=dataset.measure,
                explain_by=explain_by,
                aggregate=dataset.aggregate,
                config=config,
                started=started,
            )
            if adopted is not None:
                return adopted
        if spec.lattice:
            router = self._router_for(
                dataset.relation.fingerprint(),
                dataset.relation.schema.require_time(),
            )
            session = ExplainSession.from_lattice(
                router,
                relation=dataset.relation,
                measure=dataset.measure,
                explain_by=explain_by,
                aggregate=dataset.aggregate,
                config=config,
            )
            return session, time.perf_counter() - started
        session = ExplainSession(
            dataset.relation,
            measure=dataset.measure,
            explain_by=explain_by,
            aggregate=dataset.aggregate,
            config=config,
        )
        if self._builder is not None:
            cube, report = self._builder.build_with_report(
                dataset.relation,
                explain_by,
                dataset.measure,
                aggregate=dataset.aggregate,
                max_order=config.max_order,
                deduplicate=config.deduplicate,
                columnar=config.columnar,
                cache=self._cache,
            )
            session.adopt_snapshot(
                dataset.relation,
                cube,
                cache_hit=report.cache_hit,
                prepare_seconds=time.perf_counter() - started,
            )
        else:
            session.prepare()
        self._store_artifact(artifact_key, session)
        return session, time.perf_counter() - started

    def _adopt_artifact(
        self,
        key: CubeKey,
        relation,
        measure: str,
        explain_by,
        aggregate: str,
        config: ExplainConfig,
        started: float,
        time_attr: str | None = None,
    ) -> tuple[ExplainSession, float] | None:
        """Build a session straight from a finalized artifact, if one exists.

        The adopted cube's series matrices are memory-mapped read-only —
        every process opening the same artifact shares one page-cache
        copy, and the warm start skips the build entirely.  ``relation``
        may be a lazy loader (source-backed specs): it is handed to the
        session unmaterialized and stays lazy.
        """
        assert self._cache is not None
        with span("artifact-load"):
            cube = self._cache.load_artifact(key)
        if cube is None:
            return None
        session = ExplainSession(
            relation,
            measure=measure,
            explain_by=explain_by,
            aggregate=aggregate,
            time_attr=time_attr,
            config=config,
        )
        session.adopt_snapshot(
            None,
            cube,
            cache_hit=True,
            prepare_seconds=time.perf_counter() - started,
        )
        with self._lock:
            self._stats.artifact_hits += 1
        return session, time.perf_counter() - started

    def _store_artifact(self, key: CubeKey | None, session: ExplainSession) -> None:
        """Feed the artifact store after a cold build (never fails the build)."""
        if key is None or self._cache is None:
            return
        try:
            self._cache.store_artifact(key, session.cube)
        except (TypeError, OSError):
            # Non-JSON labels/values or an unwritable cache directory make
            # the cube unpersistable; the build itself is still good.
            return
        with self._lock:
            self._stats.artifact_stores += 1

    def _prepare_from_source(
        self, spec: DatasetSpec, started: float
    ) -> tuple[ExplainSession, float]:
        """Cold-build a source-backed spec (source-keyed cache, out-of-core).

        The sharded builder is not used here — the chunked append build is
        the bounded-memory analogue for sources — and the session's
        relation stays lazy: a warm cache serve never parses the source.
        """
        source = resolve_source(spec.source)
        config = spec.config if spec.config is not None else ExplainConfig.optimized()
        if self._cache_dir and not config.cache_dir:
            config = config.updated(cache_dir=self._cache_dir)
        artifact_key: CubeKey | None = None
        if self._artifacts and not spec.lattice:
            from repro.store.ingest import source_cube_key

            schema = source.schema
            measures = schema.measure_names()
            if measures:
                # Mirror ExplainSession.from_source's query defaults so
                # the artifact key matches what the cold build produces.
                measure = measures[0]
                explain_by = (
                    tuple(spec.explain_by)
                    if spec.explain_by
                    else schema.dimension_names()
                )
                artifact_key = source_cube_key(
                    source,
                    measure,
                    explain_by,
                    aggregate=source.default_aggregate,
                    max_order=config.max_order,
                    deduplicate=config.deduplicate,
                )
                adopted = self._adopt_artifact(
                    artifact_key,
                    relation=source.read,
                    measure=measure,
                    explain_by=explain_by,
                    aggregate=source.default_aggregate,
                    config=config,
                    started=started,
                    # The relation is a lazy loader: there is no schema to
                    # default the time attribute from until first read.
                    time_attr=schema.require_time(),
                )
                if adopted is not None:
                    return adopted
        if spec.lattice:
            from repro.lattice.build import lattice_fingerprint

            router = self._router_for(
                lattice_fingerprint(source), source.schema.require_time()
            )
            session = ExplainSession.from_lattice(
                router,
                source=source,
                explain_by=spec.explain_by,
                config=config,
            )
            return session, time.perf_counter() - started
        session = ExplainSession.from_source(
            source,
            explain_by=spec.explain_by,
            config=config,
        )
        self._store_artifact(artifact_key, session)
        return session, time.perf_counter() - started

    def _router_for(self, fingerprint: str, time_attr: str) -> LatticeRouter:
        """The shared lattice router of one data fingerprint (lazy).

        Creation loads and validates the persisted manifest — a corrupt
        document or fingerprint mismatch propagates loudly to the request
        that needed the lattice, per the routing contract.
        """
        with self._lock:
            router = self._routers.get(fingerprint)
            if router is None:
                router = LatticeRouter(
                    fingerprint, time_attr, cache=self._cache
                )
                self._routers[fingerprint] = router
            return router

    def _admit(self, name: str, session: ExplainSession, build_seconds: float) -> None:
        now = self._clock()
        self._entries[name] = _Entry(
            session=session,
            nbytes=session_nbytes(session),
            created=now,
            last_used=now,
            build_seconds=build_seconds,
            queries=1,
        )
        self._entries.move_to_end(name)
        self._stats.build_seconds += build_seconds
        self._enforce_budget()

    def _enforce_budget(self) -> None:
        """Evict LRU entries (and their detectors) past the memory budget.

        The most recently used entry always survives, even alone over
        budget — evicting the session a request is about to use would
        thrash.  An evicted dataset's cached detector goes with it:
        keeping baselines for a session the LRU just dropped would leak
        exactly the bytes the budget is trying to bound.
        """
        if self._memory_budget is None:
            return
        while (
            len(self._entries) > 1
            and sum(e.nbytes for e in self._entries.values()) > self._memory_budget
        ):
            evicted, _ = self._entries.popitem(last=False)
            self._detectors.pop(evicted, None)
            self._stats.evictions += 1
            self._metric_evictions.inc(reason="budget")
