"""The serving tier: many datasets, many tenants, many concurrent queries.

Everything below :class:`~repro.core.session.ExplainSession` is
per-query machinery; this package is the layer a production deployment
actually runs:

* :class:`~repro.serve.registry.SessionRegistry` — owns many named
  prepared sessions behind a memory-budget + TTL LRU, with per-key build
  locks so concurrent requests for a cold dataset trigger exactly one
  prepare (single-flight coalescing).
* :class:`~repro.serve.sharding.ShardedBuilder` — splits a cold relation
  into time shards, builds shard cubes in parallel worker *processes*, and
  combines them with :func:`~repro.cube.datacube.merge_shard_cubes` —
  byte-identical to a one-shot build, and feeding the same persistent
  :class:`~repro.cube.cache.RollupCache`.
* :class:`~repro.serve.scheduler.QueryScheduler` — a query thread pool
  that dedupes identical in-flight queries and serves results from the
  session LRU.
* :mod:`~repro.serve.http` — a stdlib ``http.server`` JSON API
  (``/explain``, ``/diff``, ``/recommend``, ``/detect``, ``/datasets``,
  ``/stats``, ``/healthz``, ``/metrics``) wired to the registry and
  scheduler; ``repro serve`` starts it.  Observability rides on
  :mod:`repro.obs`: per-request trace ids, Prometheus metrics, a
  structured access log and a ``--slow-query-ms`` slow-query log.
* :class:`~repro.serve.multiproc.WorkerPool` — ``repro serve --workers N``:
  N forked ``SO_REUSEPORT`` workers sharing one mmap-able finalized-cube
  artifact per dataset, so resident memory is per-dataset, not per-worker.
"""

from repro.serve.http import ServeApp, make_app, reuseport_available
from repro.serve.multiproc import WorkerPool, prebuild_artifacts
from repro.serve.registry import DatasetSpec, SessionRegistry
from repro.serve.scheduler import QueryScheduler
from repro.serve.sharding import ShardedBuilder, split_time_shards

__all__ = [
    "DatasetSpec",
    "QueryScheduler",
    "ServeApp",
    "SessionRegistry",
    "ShardedBuilder",
    "WorkerPool",
    "make_app",
    "prebuild_artifacts",
    "reuseport_available",
    "split_time_shards",
]
