"""The stdlib JSON-over-HTTP front end of the serving tier.

No web framework — a :class:`http.server.ThreadingHTTPServer` whose
handler parses query strings, hands the work to the
:class:`~repro.serve.scheduler.QueryScheduler` (which dedupes identical
in-flight queries and shares prepared sessions through the registry), and
writes JSON.  Endpoints:

``GET /explain?dataset=NAME[&start=..&stop=..&k=..&m=..&metric=..&smoothing=..&variant=..&filter=0|1&filter_ratio=..]``
    Segment and explain the dataset's series (optionally windowed).
``GET /diff?dataset=NAME&start=..&stop=..[&m=..]``
    Two-point diff between two timestamp labels.
``GET /recommend?dataset=NAME[&m=..]``
    Rank the dataset's candidate explain-by attributes.
``GET /detect?dataset=NAME[&z_warn=..&z_alert=..&z_critical=..&min_deviation=..&min_volume=..&direction=both|spike|drop&top=..&plan=0|1]``
    Score every cube cell against its tiered rolling baseline
    (:mod:`repro.detect`); with ``plan=1`` the response also carries a
    reviewable suppression plan cross-linked to the top explanations.
``GET /datasets``
    Registered datasets with residency info.
``GET /stats``
    Registry + scheduler counters, memory, uptime.
``GET /healthz``
    Liveness probe with build info (version, pid, worker id, uptime).
``GET /metrics``
    Prometheus text exposition.  On a multi-process pool every worker
    merges the other workers' persisted snapshots into its own live
    registry, so one scrape sees the whole pool.
``GET /debug/profile?seconds=S&hz=H``
    Sample this worker's threads for ``S`` seconds (default 2, max 30)
    and return collapsed stacks as plain text — ``phase;frame;…;frame
    count`` lines, flamegraph.pl-compatible, with each sample attributed
    to its trace phase via the tracer's active-span map
    (:mod:`repro.obs.profile`).

Every response carries an ``X-Repro-Trace-Id`` header; sampled requests
export their phase-span tree as JSON lines (:mod:`repro.obs.trace`).
Errors map to JSON bodies: 400 for malformed or unservable queries
(:class:`~repro.exceptions.ReproError`), 404 for unknown paths or
unregistered datasets, 500 for anything unexpected.
"""

from __future__ import annotations

import json
import os
import random
import socket
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Sequence
from urllib.parse import parse_qs, urlparse

from repro import __version__
from repro.datasets.registry import available_datasets
from repro.exceptions import QueryError, ReproError
from repro.obs.logging import AccessLog, SlowQueryLog
from repro.obs.metrics import (
    get_registry as get_metrics,
    merge_snapshots,
    render_snapshot,
    SnapshotStore,
)
from repro.obs.profile import (
    DEFAULT_HZ as PROFILE_DEFAULT_HZ,
    SamplingProfiler,
    SlowProfileWriter,
    capture as capture_profile,
)
from repro.obs.trace import JsonLinesExporter, start_trace
from repro.serve.jsonio import (
    detect_to_json,
    diff_to_json,
    recommend_to_json,
    result_to_json,
)
from repro.serve.registry import DatasetSpec, SessionRegistry
from repro.serve.scheduler import (
    DEFAULT_QUERY_WORKERS,
    DETECT_OVERRIDE_TYPES,
    QUERY_OVERRIDE_TYPES,
    QueryScheduler,
)
from repro.serve.sharding import ShardedBuilder
from repro.store import is_source_uri

#: Query-string spellings that differ from the ExplainConfig field name.
_QS_NAME = {"smoothing_window": "smoothing", "use_filter": "filter"}


def _explain_param_table() -> dict[str, tuple[str, type]]:
    """``{query-string name: (scheduler parameter, type)}`` for /explain.

    Derived from the scheduler's canonical ``QUERY_OVERRIDE_TYPES`` so a
    new override becomes reachable over HTTP without a second edit here.
    """
    table: dict[str, tuple[str, type]] = {
        "start": ("start", str),
        "stop": ("stop", str),
    }
    for field, kind in QUERY_OVERRIDE_TYPES.items():
        table[_QS_NAME.get(field, field)] = (field, kind)
    return table


_EXPLAIN_TABLE = _explain_param_table()

#: Query-string spellings for /detect that differ from the scheduler name.
_DETECT_QS_NAME = {"max_cells": "top"}


def _detect_param_table() -> dict[str, tuple[str, type]]:
    """``{query-string name: (scheduler parameter, type)}`` for /detect,
    derived from ``DETECT_OVERRIDE_TYPES`` like the /explain table."""
    return {
        _DETECT_QS_NAME.get(field, field): (field, kind)
        for field, kind in DETECT_OVERRIDE_TYPES.items()
    }


_DETECT_TABLE = _detect_param_table()

#: Paths that get their own ``endpoint`` label on HTTP metrics; anything
#: else is folded into ``"other"`` so probing random URLs cannot blow up
#: the label cardinality of every scrape.
_KNOWN_ENDPOINTS = frozenset(
    (
        "/explain",
        "/diff",
        "/recommend",
        "/detect",
        "/datasets",
        "/stats",
        "/healthz",
        "/health",
        "/metrics",
        "/debug/profile",
    )
)

#: Longest profile window ``/debug/profile`` will run: the capture holds
#: a handler thread (and an admission slot) for its whole duration.
MAX_PROFILE_SECONDS = 30.0


def _coerce(name: str, raw: str, kind: type):
    # A blank value (``?k=``) reaches here because the parser keeps blank
    # values; it is malformed for every parameter type — silently running
    # the query with defaults instead would hide the client's typo.
    if raw == "":
        raise QueryError(f"parameter {name!r} expects {kind.__name__}, got an empty value")
    try:
        if kind is bool:
            lowered = raw.strip().lower()
            if lowered in ("1", "true", "yes", "on"):
                return True
            if lowered in ("0", "false", "no", "off"):
                return False
            raise ValueError(raw)
        return kind(raw)
    except ValueError:
        raise QueryError(
            f"parameter {name!r} expects {kind.__name__}, got {raw!r}"
        ) from None


class _Handler(BaseHTTPRequestHandler):
    """One request; the app instance is injected via the server object."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
        app: "ServeApp" = self.server.app  # type: ignore[attr-defined]
        parsed = urlparse(self.path)
        # Blank values are kept so ``?k=`` is rejected loudly by _coerce
        # instead of silently running the query with defaults.
        params = {
            name: values[-1]
            for name, values in parse_qs(
                parsed.query, keep_blank_values=True
            ).items()
        }
        # Captured here because dispatch pops it from its params dict.
        dataset = params.get("dataset")
        started = time.perf_counter()
        with start_trace(parsed.path, sampled=app.sample_trace()) as trace:
            if not app.try_admit():
                # Admission control: beyond max_inflight the server sheds
                # load with an immediate 503 + Retry-After instead of
                # queueing unboundedly behind the thread pool.
                status = 503
                self._write_json(
                    {"error": "server is at capacity; retry shortly"},
                    503,
                    retry_after=app.retry_after_seconds,
                    trace_id=trace.trace_id,
                )
            else:
                try:
                    if parsed.path == "/metrics":
                        try:
                            body, status = app.render_metrics(), 200
                        except Exception as error:  # pragma: no cover
                            body = f"# metrics unavailable: {error}\n"
                            status = 500
                        app.note_request()
                        self._write_text(body, status, trace_id=trace.trace_id)
                    elif parsed.path == "/debug/profile":
                        try:
                            body, status = app.render_profile(params), 200
                        except ReproError as error:
                            body, status = f"error: {error}\n", 400
                        app.note_request()
                        self._write_text(body, status, trace_id=trace.trace_id)
                    else:
                        try:
                            payload, status = app.dispatch(parsed.path, params)
                        except ReproError as error:
                            payload, status = {"error": str(error)}, 400
                        except Exception as error:  # pragma: no cover - 500
                            payload, status = {"error": f"internal error: {error}"}, 500
                        # Count before writing (a client that has read its
                        # response must observe the updated counter).
                        app.note_request()
                        self._write_json(payload, status, trace_id=trace.trace_id)
                finally:
                    # Released only after the body is fully written, so a
                    # drain that observes zero in-flight requests knows
                    # every admitted response is already on the wire.
                    app.release()
                # Trip the max-requests breaker only after the body is
                # written and released — shutting down mid-write would
                # hand the last client a torn response.
                app.maybe_trip()
        # Metrics / access log / slow-query log / trace export, after the
        # trace root span is closed so exported phase durations always
        # sum to within the recorded request latency.
        app.observe_request(
            method=self.command,
            path=parsed.path,
            dataset=dataset,
            status=status,
            seconds=time.perf_counter() - started,
            trace=trace,
        )

    def _write_json(
        self,
        payload: dict,
        status: int,
        retry_after: int | None = None,
        trace_id: str | None = None,
    ) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        self._write_body(body, status, "application/json", retry_after, trace_id)

    def _write_text(
        self, text: str, status: int, trace_id: str | None = None
    ) -> None:
        self._write_body(
            text.encode("utf-8"),
            status,
            "text/plain; version=0.0.4; charset=utf-8",
            None,
            trace_id,
        )

    def _write_body(
        self,
        body: bytes,
        status: int,
        content_type: str,
        retry_after: int | None,
        trace_id: str | None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        if trace_id is not None:
            self.send_header("X-Repro-Trace-Id", trace_id)
        self.end_headers()
        self.wfile.write(body)

    def log_request(self, code="-", size="-") -> None:
        # Per-request lines are emitted by observe_request through the
        # structured access log, with full latency and the trace id —
        # the stdlib line here would be a poorer duplicate.
        pass

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # Stdlib plumbing messages (parse errors, broken pipes) go
        # through the structured access logger when one is configured.
        app: "ServeApp" = self.server.app  # type: ignore[attr-defined]
        if app.access_log is not None:
            app.access_log.message(format % args)
        elif app.verbose:
            super().log_message(format, *args)


class _ReuseportHTTPServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer that joins an ``SO_REUSEPORT`` group.

    Every multi-process serve worker binds the *same* port with this
    option set; the kernel then load-balances incoming connections
    across the workers' accept queues — no parent proxy process, no
    shared listening socket to inherit.
    """

    allow_reuse_address = False  # REUSEPORT is the sharing mechanism

    def server_bind(self) -> None:
        self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()


def reuseport_available() -> bool:
    """Whether this platform exposes ``SO_REUSEPORT`` (Linux, BSDs)."""
    return hasattr(socket, "SO_REUSEPORT")


#: How long :meth:`ServeApp.shutdown` waits for in-flight requests.
SHUTDOWN_GRACE_SECONDS = 5.0


class ServeApp:
    """The wired-together serving tier: registry + scheduler + HTTP server.

    Parameters
    ----------
    registry / scheduler:
        The state and execution layers; :func:`make_app` builds both from
        flat options.
    host / port:
        Bind address; ``port=0`` asks the OS for an ephemeral port (read
        it back from :attr:`port` — the CLI prints it).
    max_requests:
        After this many served requests the server shuts itself down —
        smoke tests and CI use it to run a bounded session without
        process-kill choreography.  ``None`` (default) serves forever.
    max_inflight:
        Admission-control bound: beyond this many concurrently admitted
        requests, new ones are shed with ``503`` + ``Retry-After``
        instead of queueing unboundedly.  ``None`` (default) admits all.
    reuse_port:
        Bind with ``SO_REUSEPORT`` so N worker processes can share one
        port (:mod:`repro.serve.multiproc`); requires
        :func:`reuseport_available`.
    verbose:
        Log each request line to stderr (stdlib format).
    access_log:
        Emit one structured JSON line per request (method, path,
        dataset, status, latency, trace id) to stderr.  Off by default
        here so library/test construction stays quiet; :func:`make_app`
        defaults it *on* for real serving.
    slow_query_ms:
        Threshold for the slow-query log; ``None`` disables it.  With an
        ``obs_dir`` entries append to ``slowquery-<worker>.jsonl`` there,
        otherwise they go to stderr.
    trace_sample:
        Fraction of requests whose span tree is recorded and exported
        (``1.0`` = all).  Every request gets an ``X-Repro-Trace-Id``
        regardless — sampling only controls span collection.
    obs_dir:
        Directory for observability artifacts: periodic metrics
        snapshots (merged by every worker's ``/metrics``), the trace
        export, and the slow-query log.  :func:`make_app` derives it
        from ``cache_dir`` so a multi-process pool shares one.
    worker_id:
        Label for this process's snapshot/trace/slow-log files;
        :class:`~repro.serve.multiproc.WorkerPool` assigns ``w0..wN``.
        Defaults to ``pid<pid>``.
    snapshot_interval_seconds:
        How often the background flusher persists this worker's metrics
        snapshot to ``obs_dir`` (a scrape also writes one, so the
        interval only bounds staleness seen *via other workers*).
    profile_hz:
        Continuous-profiling rate; ``None`` (default) disables it.  When
        set, a background :class:`~repro.obs.profile.SamplingProfiler`
        runs for the server's whole lifetime feeding per-phase self-time
        into ``repro_profile_phase_self_seconds_total{phase}`` — a
        ``/metrics`` scrape then answers "which phase burns the time"
        with no capture round-trip.
    profile_slow:
        Auto-capture a short profile whenever a request crosses the
        slow-query threshold; entries append (with rotation) to
        ``slowprof-<worker>.jsonl`` next to the slow-query log, keyed by
        the slow request's trace id.  Requires ``slow_query_ms`` and an
        ``obs_dir``.
    profile_slow_seconds:
        Length of each auto-captured slow profile window.
    """

    def __init__(
        self,
        registry: SessionRegistry,
        scheduler: QueryScheduler | None = None,
        host: str = "127.0.0.1",
        port: int = 8765,
        max_requests: int | None = None,
        max_inflight: int | None = None,
        reuse_port: bool = False,
        verbose: bool = False,
        access_log: bool = False,
        slow_query_ms: float | None = None,
        trace_sample: float = 1.0,
        obs_dir: str | Path | None = None,
        worker_id: str | None = None,
        snapshot_interval_seconds: float = 2.0,
        profile_hz: float | None = None,
        profile_slow: bool = False,
        profile_slow_seconds: float = 2.0,
    ):
        self.registry = registry
        self.scheduler = scheduler or QueryScheduler(registry)
        self.verbose = verbose
        self._max_requests = max_requests
        self._requests = 0
        self._requests_lock = threading.Lock()
        self._max_inflight = max_inflight
        self._inflight = 0
        self._rejected = 0
        self._inflight_cond = threading.Condition()
        self._shutdown_lock = threading.Lock()
        self._shutting_down = False
        self._shutdown_done = threading.Event()
        self._started = time.monotonic()
        # ----- observability ------------------------------------------
        self.worker_id = worker_id if worker_id is not None else f"pid{os.getpid()}"
        self._trace_sample = max(0.0, min(1.0, float(trace_sample)))
        self._obs_dir = Path(obs_dir).expanduser() if obs_dir is not None else None
        self._snapshots = (
            SnapshotStore(self._obs_dir) if self._obs_dir is not None else None
        )
        self._snapshot_interval = max(0.05, float(snapshot_interval_seconds))
        self._flush_stop = threading.Event()
        self._flusher: threading.Thread | None = None
        self.access_log = AccessLog() if access_log else None
        if slow_query_ms is not None:
            slow_path = (
                self._obs_dir / f"slowquery-{self.worker_id}.jsonl"
                if self._obs_dir is not None
                else None
            )
            self._slow_log = SlowQueryLog(
                slow_query_ms,
                path=slow_path,
                stream=None if slow_path is not None else sys.stderr,
            )
        else:
            self._slow_log = None
        self._trace_exporter = (
            JsonLinesExporter(self._obs_dir / f"traces-{self.worker_id}.jsonl")
            if self._obs_dir is not None
            else None
        )
        # Slow-query auto-profiling: only meaningful when there is a slow
        # log to key against and a directory to write beside it.
        if profile_slow and self._slow_log is not None and self._obs_dir is not None:
            self._slow_profiles = SlowProfileWriter(
                self._obs_dir / f"slowprof-{self.worker_id}.jsonl",
                seconds=profile_slow_seconds,
            )
        else:
            self._slow_profiles = None
        self._profile_hz = profile_hz
        self._profiler: SamplingProfiler | None = None
        metrics = get_metrics()
        self._metric_requests = metrics.counter(
            "repro_http_requests_total",
            "HTTP requests by endpoint and status",
            labels=("endpoint", "status"),
        )
        self._metric_latency = metrics.histogram(
            "repro_http_request_seconds",
            "HTTP request latency by endpoint",
            labels=("endpoint",),
        )
        self._metric_inflight = metrics.gauge(
            "repro_http_inflight_requests", "Requests admitted and not yet written"
        )
        self._metric_rejected = metrics.counter(
            "repro_http_requests_rejected_total",
            "Requests shed with 503 by admission control",
        )
        self._metric_phase_seconds = metrics.counter(
            "repro_profile_phase_self_seconds_total",
            "Sampled wall-clock self time by trace phase (continuous profiler)",
            labels=("phase",),
        )
        # --------------------------------------------------------------
        server_class = _ReuseportHTTPServer if reuse_port else ThreadingHTTPServer
        self._server = server_class((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.app = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def requests_served(self) -> int:
        with self._requests_lock:
            return self._requests

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (CLI mode)."""
        self._start_flusher()
        self._start_profiler()
        self._server.serve_forever()

    def start(self) -> "ServeApp":
        """Serve on a daemon thread (tests, benchmarks); returns self."""
        self._start_flusher()
        self._start_profiler()
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self, grace: float = SHUTDOWN_GRACE_SECONDS) -> None:
        """Stop accepting, drain in-flight requests, then tear down.

        The drain is the torn-response fix: handler threads are daemons,
        so stopping the scheduler (or exiting the process) while a
        response is mid-write would cut the client off.  ``shutdown``
        first stops the accept loop, then waits up to ``grace`` seconds
        for every admitted request to finish writing, and only then
        closes the socket and the scheduler.  Idempotent and safe to
        call concurrently — late callers wait for the first shutdown to
        complete instead of racing it.
        """
        with self._shutdown_lock:
            first = not self._shutting_down
            self._shutting_down = True
        if not first:
            self._shutdown_done.wait(timeout=grace + SHUTDOWN_GRACE_SECONDS)
            return
        try:
            self._server.shutdown()  # stop the accept loop (blocks until out)
            self.drain(grace)
            self._server.server_close()
            self.scheduler.shutdown(wait=False)
            self._stop_profiler()
            self._stop_flusher()
            if self._thread is not None:
                # Leave _thread set: observers may still poll it for
                # liveness after shutdown completes.
                self._thread.join(timeout=5.0)
        finally:
            self._shutdown_done.set()

    def drain(self, grace: float = SHUTDOWN_GRACE_SECONDS) -> bool:
        """Wait until no admitted request is in flight; True if drained."""
        deadline = time.monotonic() + grace
        with self._inflight_cond:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._inflight_cond.wait(timeout=remaining)
            return True

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    @property
    def retry_after_seconds(self) -> int:
        """The ``Retry-After`` hint sent with shed (503) responses."""
        return 1

    @property
    def inflight(self) -> int:
        with self._inflight_cond:
            return self._inflight

    @property
    def requests_rejected(self) -> int:
        with self._inflight_cond:
            return self._rejected

    def try_admit(self) -> bool:
        """Admit one request, or refuse (the handler then sheds a 503)."""
        with self._inflight_cond:
            if (
                self._max_inflight is not None
                and self._inflight >= self._max_inflight
            ):
                self._rejected += 1
                self._metric_rejected.inc()
                return False
            self._inflight += 1
        self._metric_inflight.inc()
        return True

    def release(self) -> None:
        """Mark one admitted request complete (response fully written)."""
        with self._inflight_cond:
            self._inflight -= 1
            self._inflight_cond.notify_all()
        self._metric_inflight.dec()

    def note_request(self) -> None:
        """Count one served request."""
        with self._requests_lock:
            self._requests += 1

    def maybe_trip(self) -> None:
        """Stop serving once ``max_requests`` responses are out."""
        with self._requests_lock:
            tripped = (
                self._max_requests is not None
                and self._requests >= self._max_requests
            )
        if tripped:
            # The full shutdown must come from another thread:
            # serve_forever cannot process its own stop event while
            # handling a request.  Reusing shutdown() means the breaker
            # path drains in-flight requests exactly like a CLI exit.
            threading.Thread(target=self.shutdown, daemon=True).start()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def sample_trace(self) -> bool:
        """Whether this request's span tree should be collected."""
        if self._trace_sample >= 1.0:
            return True
        if self._trace_sample <= 0.0:
            return False
        return random.random() < self._trace_sample

    def observe_request(
        self,
        method: str,
        path: str,
        dataset: str | None,
        status: int,
        seconds: float,
        trace,
    ) -> None:
        """Record one finished request: metrics, logs, trace export."""
        endpoint = path if path in _KNOWN_ENDPOINTS else "other"
        self._metric_requests.inc(endpoint=endpoint, status=str(status))
        self._metric_latency.observe(seconds, endpoint=endpoint)
        latency_ms = seconds * 1000.0
        trace_id = trace.trace_id if trace is not None else None
        if self.access_log is not None:
            self.access_log.log(
                method, path, status, latency_ms, dataset=dataset, trace_id=trace_id
            )
        if self._slow_log is not None:
            was_slow = self._slow_log.observe(
                path, latency_ms, dataset=dataset, trace_id=trace_id, status=status
            )
            if was_slow and self._slow_profiles is not None:
                # Capture runs on its own daemon thread; at most one at a
                # time, so a herd of slow queries yields one profile.
                self._slow_profiles.maybe_capture(trace_id, path, latency_ms)
        if self._trace_exporter is not None and trace is not None:
            try:
                self._trace_exporter.export(trace)
            except OSError:  # pragma: no cover - disk-full etc.
                pass

    def render_metrics(self) -> str:
        """This process's metrics, merged with sibling workers' snapshots.

        Without an ``obs_dir`` there is nothing to merge and the live
        registry renders directly.  With one, the scrape first persists
        a fresh snapshot of *this* worker (so siblings scraped next see
        it current), then merges every other live worker's latest file —
        one scrape reflects the whole ``SO_REUSEPORT`` pool.
        """
        metrics = get_metrics()
        if self._snapshots is None:
            return metrics.render()
        snapshot = metrics.snapshot(worker=self.worker_id)
        try:
            self._snapshots.write(snapshot, self.worker_id)
        except OSError:  # pragma: no cover - scrape must still answer
            pass
        others = [
            other
            for other in self._snapshots.load_all()
            if other.get("worker") != self.worker_id
        ]
        return render_snapshot(merge_snapshots([snapshot, *others]))

    def render_profile(self, params: dict[str, str]) -> str:
        """Run one ``/debug/profile`` capture and return collapsed stacks.

        Blocks the calling handler thread for the window (that thread is
        excluded from its own capture, so the wait doesn't show up as a
        fake hotspot); other requests keep being served meanwhile and
        are exactly what the capture observes.
        """
        unknown = set(params) - {"seconds", "hz"}
        if unknown:
            raise QueryError(
                f"unsupported parameter(s) {sorted(unknown)} for /debug/profile"
            )
        seconds = _coerce("seconds", params.get("seconds", "2"), float)
        hz = _coerce("hz", params.get("hz", str(PROFILE_DEFAULT_HZ)), float)
        if not 0.0 < seconds <= MAX_PROFILE_SECONDS:
            raise QueryError(
                f"seconds must be in (0, {MAX_PROFILE_SECONDS:g}], got {seconds:g}"
            )
        report = capture_profile(
            seconds, hz=hz, exclude_threads=(threading.get_ident(),)
        )
        collapsed = report.collapsed()
        return collapsed if collapsed else "# no samples\n"

    def _start_profiler(self) -> None:
        """Start the continuous low-rate profiler when configured."""
        if self._profile_hz is None or self._profiler is not None:
            return
        self._profiler = SamplingProfiler(
            hz=self._profile_hz, phase_counter=self._metric_phase_seconds
        )
        self._profiler.start()

    def _stop_profiler(self) -> None:
        if self._profiler is not None:
            self._profiler.stop()

    @property
    def continuous_profiler(self) -> SamplingProfiler | None:
        return self._profiler

    @property
    def slow_profile_path(self) -> Path | None:
        return self._slow_profiles.path if self._slow_profiles is not None else None

    @property
    def trace_export_path(self) -> Path | None:
        return self._trace_exporter.path if self._trace_exporter is not None else None

    @property
    def slow_query_log(self) -> SlowQueryLog | None:
        return self._slow_log

    def _start_flusher(self) -> None:
        if self._snapshots is None or self._flusher is not None:
            return
        self._flusher = threading.Thread(
            target=self._flush_loop, name="repro-obs-flush", daemon=True
        )
        self._flusher.start()

    def _flush_loop(self) -> None:
        while not self._flush_stop.wait(self._snapshot_interval):
            self._write_snapshot()

    def _stop_flusher(self) -> None:
        self._flush_stop.set()
        if self._flusher is not None:
            self._flusher.join(timeout=2.0)
        # One final write so a drained worker's last counters survive
        # for siblings to merge until its pid is observed dead.
        self._write_snapshot()

    def _write_snapshot(self) -> None:
        if self._snapshots is None:
            return
        try:
            self._snapshots.write(
                get_metrics().snapshot(worker=self.worker_id), self.worker_id
            )
        except OSError:  # pragma: no cover - disk-full etc.
            pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def dispatch(self, path: str, params: dict[str, str]) -> tuple[dict, int]:
        """Resolve one request to ``(json_payload, status)``."""
        if path in ("/healthz", "/health"):
            return (
                {
                    "ok": True,
                    "version": __version__,
                    "pid": os.getpid(),
                    "worker": self.worker_id,
                    "uptime_seconds": round(time.monotonic() - self._started, 3),
                },
                200,
            )
        if path == "/datasets":
            return {"datasets": self.registry.describe()}, 200
        if path == "/stats":
            self.registry.sweep()
            return (
                {
                    "uptime_seconds": round(time.monotonic() - self._started, 3),
                    "requests": self.requests_served,
                    "inflight": self.inflight,
                    "rejected": self.requests_rejected,
                    "max_inflight": self._max_inflight,
                    "registry": self.registry.stats(),
                    "scheduler": self.scheduler.stats(),
                },
                200,
            )
        if path in ("/explain", "/diff", "/recommend", "/detect"):
            dataset = params.pop("dataset", None)
            if not dataset:
                raise QueryError(f"{path} requires a dataset parameter")
            if dataset not in self.registry:
                return (
                    {
                        "error": f"unknown dataset {dataset!r}",
                        "registered": list(self.registry.names()),
                    },
                    404,
                )
            return self._query(path.lstrip("/"), dataset, params), 200
        return {"error": f"no such endpoint {path!r}"}, 404

    def _query(self, kind: str, dataset: str, params: dict[str, str]) -> dict:
        if kind == "explain":
            known = _EXPLAIN_TABLE
        elif kind == "detect":
            known = _DETECT_TABLE
        elif kind == "diff":
            known = {"start": ("start", str), "stop": ("stop", str), "m": ("m", int)}
        else:
            known = {"m": ("m", int)}
        unknown = set(params) - set(known)
        if unknown:
            raise QueryError(
                f"unsupported parameter(s) {sorted(unknown)} for /{kind}"
            )
        converted = {
            known[qs][0]: _coerce(qs, raw, known[qs][1])
            for qs, raw in params.items()
        }
        outcome = self.scheduler.execute(kind, dataset, **converted)
        if kind == "explain":
            return result_to_json(outcome)
        if kind == "detect":
            return detect_to_json(outcome)
        if kind == "diff":
            return diff_to_json(outcome)
        return recommend_to_json(outcome)


def make_app(
    datasets: Sequence[str] | None = None,
    host: str = "127.0.0.1",
    port: int = 8765,
    cache_dir: str | None = None,
    memory_budget_bytes: int | None = None,
    ttl_seconds: float | None = None,
    query_workers: int = DEFAULT_QUERY_WORKERS,
    build_shards: int | None = None,
    build_workers: int | None = None,
    max_requests: int | None = None,
    max_inflight: int | None = None,
    lattice: bool = False,
    artifacts: bool = False,
    reuse_port: bool = False,
    verbose: bool = False,
    access_log: bool = True,
    slow_query_ms: float | None = None,
    trace_sample: float = 1.0,
    obs_dir: str | None = None,
    worker_id: str | None = None,
    profile_hz: float | None = None,
    profile_slow: bool = False,
    profile_slow_seconds: float = 2.0,
) -> ServeApp:
    """Assemble a ready-to-start :class:`ServeApp` from flat options.

    ``datasets`` defaults to every bundled dataset; entries may also be
    :mod:`repro.store` source URIs (``csv:…`` / ``npz:…`` / ``sqlite:…``),
    which are served through the source-keyed rollup cache and the
    out-of-core build.  ``build_shards`` enables the sharded parallel
    cold build for bundled datasets (``None``/``0``/``1`` builds
    one-shot); ``build_workers`` sizes its process pool.  ``lattice``
    routes every cold prepare through the dataset's rollup lattice
    (:mod:`repro.lattice`) — pre-build it with ``repro lattice build``
    and point both at the same ``cache_dir``.  ``artifacts`` serves cold
    prepares from (and feeds) the mmap-able finalized-cube artifact in
    ``cache_dir`` (:mod:`repro.cube.artifact`) — the multi-process front
    end (:mod:`repro.serve.multiproc`) relies on it so N workers share
    one resident copy per dataset; ``reuse_port`` binds the listening
    socket with ``SO_REUSEPORT`` for the same purpose.

    Observability: ``access_log`` defaults *on* here (real serving wants
    request lines; tests construct with ``access_log=False``), and
    ``obs_dir`` defaults to ``<cache_dir>/obs`` when a cache dir is
    given so multi-process workers merge their metrics snapshots, trace
    exports and slow-query logs under one shared directory.
    ``profile_hz`` turns on the continuous phase-attributed profiler and
    ``profile_slow`` auto-captures a profile for each slow query
    (:mod:`repro.obs.profile`).
    """
    builder = None
    if build_shards is not None and build_shards > 1:
        builder = ShardedBuilder(n_shards=build_shards, max_workers=build_workers)
    names = tuple(datasets) if datasets is not None else available_datasets()
    specs = [
        DatasetSpec.from_source(name, lattice=lattice)
        if is_source_uri(name)
        else DatasetSpec.bundled(name, lattice=lattice)
        for name in names
    ]
    registry = SessionRegistry(
        specs=specs,
        memory_budget_bytes=memory_budget_bytes,
        ttl_seconds=ttl_seconds,
        builder=builder,
        cache_dir=cache_dir,
        artifacts=artifacts,
    )
    scheduler = QueryScheduler(registry, max_workers=query_workers)
    if obs_dir is None and cache_dir is not None:
        obs_dir = str(Path(cache_dir).expanduser() / "obs")
    return ServeApp(
        registry,
        scheduler,
        host=host,
        port=port,
        max_requests=max_requests,
        max_inflight=max_inflight,
        reuse_port=reuse_port,
        verbose=verbose,
        access_log=access_log,
        slow_query_ms=slow_query_ms,
        trace_sample=trace_sample,
        obs_dir=obs_dir,
        worker_id=worker_id,
        profile_hz=profile_hz,
        profile_slow=profile_slow,
        profile_slow_seconds=profile_slow_seconds,
    )
