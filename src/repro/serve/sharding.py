"""Parallel sharded cold builds: split by time, build per shard, merge.

The cube build is the serving tier's only expensive operation, and it is
embarrassingly parallel along the time axis: rows are partitioned into
contiguous time-label ranges, each shard's cube is built independently (in
a ``ProcessPoolExecutor``, sidestepping the GIL — the columnar scatter is
numpy-bound but candidate enumeration is not), and the shard cubes are
combined with :func:`~repro.cube.datacube.merge_shard_cubes`.

Because the shards partition rows *by timestamp*, no ``(group, time)``
aggregate bucket is ever fed by two shards, so the merged cube is
**bit-identical** to the one-shot build over the same relation — same
candidate order, same series bytes, same top-k explanations.  The merged
cube keeps its delta ledger, so it remains appendable and cacheable
exactly like a one-shot build.

Worker processes receive the shard relation by pickling; anything that
prevents parallelism (a missing ``fork``/``spawn`` facility, a sandboxed
environment refusing new processes, an unpicklable custom aggregate)
degrades to building the shards serially in-process — same bytes, no
speedup, never a failure.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.cube.cache import RollupCache, cube_key
from repro.cube.datacube import ExplanationCube, merge_shard_cubes
from repro.relation.table import Relation


def default_workers() -> int:
    """Worker processes used when the caller does not pin a count."""
    return max(1, (os.cpu_count() or 2) - 1)


def split_time_shards(
    relation: Relation, time_attr: str | None = None, n_shards: int = 2
) -> list[Relation]:
    """Partition rows into contiguous time-label ranges.

    Every row lands in exactly one shard, rows inside a shard keep their
    relative order (boolean-mask selection), and shard ``i``'s labels all
    sort strictly before shard ``i+1``'s — the precondition
    :func:`~repro.cube.datacube.merge_shard_cubes` enforces.  ``n_shards``
    is clamped to the number of distinct labels, so every returned shard
    is non-empty; a single-label relation yields one shard.
    """
    positions, labels = relation.time_positions(time_attr)
    n_labels = len(labels)
    n_shards = max(1, min(n_shards, n_labels))
    if n_shards <= 1:
        return [relation]
    shards = []
    for chunk in np.array_split(np.arange(n_labels), n_shards):
        shards.append(
            relation.take((positions >= chunk[0]) & (positions <= chunk[-1]))
        )
    return shards


def _build_shard_cube(payload: tuple) -> ExplanationCube:
    """Worker entry point: build one shard's appendable cube.

    Module-level so it pickles into ``ProcessPoolExecutor`` workers; the
    payload is a plain tuple for the same reason.
    """
    (
        relation,
        explain_by,
        measure,
        aggregate,
        time_attr,
        max_order,
        deduplicate,
        columnar,
    ) = payload
    return ExplanationCube(
        relation,
        explain_by,
        measure,
        aggregate=aggregate,
        time_attr=time_attr,
        max_order=max_order,
        deduplicate=deduplicate,
        columnar=columnar,
        appendable=True,
    )


@dataclass
class ShardBuildReport:
    """What the last :meth:`ShardedBuilder.build` actually did."""

    n_shards: int = 1
    n_workers: int = 1
    parallel: bool = False
    cache_hit: bool = False
    build_seconds: float = 0.0
    merge_seconds: float = 0.0
    shard_rows: tuple[int, ...] = field(default_factory=tuple)

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + self.merge_seconds


class ShardedBuilder:
    """Build explanation cubes from time shards, in parallel when possible.

    Parameters
    ----------
    n_shards:
        Time shards to split cold relations into; ``None`` means one
        shard per worker.  Clamped to the number of distinct time labels.
    max_workers:
        Worker processes (default: CPU count minus one, at least 1).
        ``1`` disables the process pool entirely — shards still build and
        merge, just serially, which is the bit-identity reference path.
    min_rows_per_shard:
        Relations smaller than ``n_shards * min_rows_per_shard`` rows are
        built one-shot: for tiny inputs the pickle/spawn overhead dwarfs
        the build itself.
    """

    def __init__(
        self,
        n_shards: int | None = None,
        max_workers: int | None = None,
        min_rows_per_shard: int = 512,
    ):
        self._max_workers = max_workers or default_workers()
        self._n_shards = n_shards if n_shards is not None else self._max_workers
        self._min_rows_per_shard = min_rows_per_shard
        self.last_report = ShardBuildReport()

    @property
    def n_shards(self) -> int:
        return self._n_shards

    @property
    def max_workers(self) -> int:
        return self._max_workers

    # ------------------------------------------------------------------
    def build(
        self,
        relation: Relation,
        explain_by: Sequence[str],
        measure: str,
        aggregate: str = "sum",
        time_attr: str | None = None,
        max_order: int = 3,
        deduplicate: bool = True,
        columnar: bool = True,
        cache: RollupCache | None = None,
    ) -> ExplanationCube:
        """The cube for this query, shard-built and cache-integrated.

        Convenience form of :meth:`build_with_report` for single-threaded
        callers; the per-call report is also published as ``last_report``.
        """
        cube, self.last_report = self.build_with_report(
            relation,
            explain_by,
            measure,
            aggregate=aggregate,
            time_attr=time_attr,
            max_order=max_order,
            deduplicate=deduplicate,
            columnar=columnar,
            cache=cache,
        )
        return cube

    def build_with_report(
        self,
        relation: Relation,
        explain_by: Sequence[str],
        measure: str,
        aggregate: str = "sum",
        time_attr: str | None = None,
        max_order: int = 3,
        deduplicate: bool = True,
        columnar: bool = True,
        cache: RollupCache | None = None,
    ) -> tuple[ExplanationCube, ShardBuildReport]:
        """The cube for this query plus what the build actually did.

        With a ``cache``, the full-relation key is looked up first and the
        merged cube is stored under it afterwards — the sharded build
        feeds the *same* rollup entries a one-shot
        :func:`~repro.cube.cache.load_or_build` would, because the bytes
        are identical.  The report is returned (not stored), so builders
        shared across threads — the registry builds different datasets
        concurrently — never read another build's outcome.
        """
        report = ShardBuildReport(n_workers=self._max_workers)
        if cache is not None and not isinstance(aggregate, str):
            # Same guard as load_or_build: the cache key stores only the
            # aggregate *name*, so an off-registry AggregateFunction
            # instance could store a cube that shadows a registered
            # aggregate's entry.  Build uncached instead.
            cache = None
        key = None
        if cache is not None:
            key = cube_key(
                relation,
                measure,
                explain_by,
                aggregate=aggregate,
                time_attr=time_attr,
                max_order=max_order,
                deduplicate=deduplicate,
            )
            cached = cache.load(key)
            if cached is not None:
                report.cache_hit = True
                return cached, report

        started = time.perf_counter()
        shards = self._shards_for(relation, time_attr)
        report.n_shards = len(shards)
        report.shard_rows = tuple(shard.n_rows for shard in shards)
        payloads = [
            (
                shard,
                tuple(explain_by),
                measure,
                aggregate,
                time_attr,
                max_order,
                deduplicate,
                columnar,
            )
            for shard in shards
        ]
        if len(shards) == 1:
            cubes = [_build_shard_cube(payloads[0])]
        else:
            cubes, report.parallel = self._build_all(payloads)
        report.build_seconds = time.perf_counter() - started

        started = time.perf_counter()
        cube = cubes[0] if len(cubes) == 1 else merge_shard_cubes(cubes)
        report.merge_seconds = time.perf_counter() - started

        if cache is not None and key is not None:
            try:
                cache.store(key, cube)
            except (TypeError, OSError):
                # Same degradation contract as load_or_build: an
                # unpersistable entry never fails the build.
                pass
        return cube, report

    # ------------------------------------------------------------------
    def _shards_for(
        self, relation: Relation, time_attr: str | None
    ) -> list[Relation]:
        n_shards = self._n_shards
        if relation.n_rows < n_shards * self._min_rows_per_shard:
            n_shards = 1
        return split_time_shards(relation, time_attr, n_shards)

    def _build_all(
        self, payloads: list[tuple]
    ) -> tuple[list[ExplanationCube], bool]:
        """Build every shard cube, in processes when the platform allows."""
        if self._max_workers > 1:
            try:
                with ProcessPoolExecutor(
                    max_workers=min(self._max_workers, len(payloads))
                ) as pool:
                    return list(pool.map(_build_shard_cube, payloads)), True
            except Exception:
                # Process pools can fail wholesale in restricted
                # environments (no fork/spawn, sandboxed fds) or on
                # unpicklable payloads; bit-identity must not depend on
                # any of that, so fall back to the serial reference path.
                pass
        return [_build_shard_cube(payload) for payload in payloads], False
