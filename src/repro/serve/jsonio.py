"""JSON renderings of result objects for the HTTP API.

Explanations are rendered twice: structurally (``items`` — the sorted
``[attribute, value]`` pairs a programmatic client filters on) and as the
canonical ``repr`` string the CLI prints, so API responses can be compared
against CLI output byte-for-byte (the serve smoke test does exactly that).
Gammas additionally carry their ``float.hex`` form — the byte-exact
encoding the benchmarks use to assert parity without float round-tripping.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.recommend import AttributeScore
from repro.core.result import ExplainResult, SegmentExplanation
from repro.detect.scoring import AnomalyReport
from repro.detect.suppression import SuppressionPlan
from repro.diff.scorer import ScoredExplanation


def scored_to_json(scored: ScoredExplanation) -> dict:
    return {
        "explanation": repr(scored.explanation),
        "items": [[name, value] for name, value in scored.explanation.items],
        "gamma": scored.gamma,
        "gamma_hex": float(scored.gamma).hex(),
        "tau": scored.tau,
        "effect": scored.effect_symbol,
    }


def segment_to_json(segment: SegmentExplanation) -> dict:
    return {
        "start": segment.start,
        "stop": segment.stop,
        "start_label": segment.start_label,
        "stop_label": segment.stop_label,
        "variance": segment.variance,
        "explanations": [scored_to_json(s) for s in segment.explanations],
    }


def result_to_json(result: ExplainResult) -> dict:
    return {
        "k": result.k,
        "k_was_auto": result.k_was_auto,
        "total_variance": result.total_variance,
        "epsilon": result.epsilon,
        "filtered_epsilon": result.filtered_epsilon,
        "timings": {name: value for name, value in result.timings.items()},
        "series": {
            "labels": list(result.series.labels),
            "values": [float(v) for v in result.series.values],
        },
        "segments": [segment_to_json(segment) for segment in result.segments],
    }


def diff_to_json(scored: Sequence[ScoredExplanation]) -> dict:
    return {"explanations": [scored_to_json(s) for s in scored]}


def detect_to_json(outcome: "tuple[AnomalyReport, SuppressionPlan | None]") -> dict:
    """The ``/detect`` payload: the scan report, plus the plan if asked.

    Both objects already define their JSON forms (the same documents the
    CLI writes with ``--json`` / ``--out``), so an anomaly surfaced over
    HTTP and one surfaced from the command line compare byte-for-byte.
    """
    report, plan = outcome
    payload = {"report": report.to_json()}
    if plan is not None:
        payload["plan"] = plan.to_json()
    return payload


def recommend_to_json(scores: Sequence[AttributeScore]) -> dict:
    return {
        "attributes": [
            {
                "attribute": score.attribute,
                "coverage": score.coverage,
                "concentration": score.concentration,
                "cardinality": score.cardinality,
                "score": score.score,
            }
            for score in scores
        ]
    }
