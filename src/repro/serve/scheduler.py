"""The query thread pool with in-flight deduplication.

Interactive dashboards produce *herds*: when a KPI page loads, every
widget (and every user looking at it) fires the same ``/explain`` at
once.  The scheduler makes that cheap twice over: queries run on a bounded
thread pool against sessions shared through the
:class:`~repro.serve.registry.SessionRegistry` (whose per-session locks
make concurrent access safe), and *identical* in-flight queries are
coalesced onto one future — the second-through-Nth callers attach to the
first's result instead of re-deriving it.

Deduplication is keyed by the full canonical query: kind (explain / diff /
recommend), dataset name, window, and every run-tier override.  The key is
dropped the moment the future completes, so repeat queries after that go
through the session's scorer LRU (cheap) rather than returning stale
futures.
"""

from __future__ import annotations

import contextvars
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor

from repro.core.result import ExplainResult
from repro.exceptions import QueryError
from repro.obs.metrics import get_registry as get_metrics
from repro.obs.trace import record_span, span
from repro.serve.registry import SessionRegistry

#: Run-tier ExplainConfig fields a query may override per request, with
#: their value types.  The single source of truth: :meth:`_validate`
#: checks against it and the HTTP layer derives its query-string parsing
#: table from it, so the two layers cannot drift apart.
QUERY_OVERRIDE_TYPES: dict[str, type] = {
    "k": int,
    "m": int,
    "metric": str,
    "variant": str,
    "smoothing_window": int,
    "use_filter": bool,
    "filter_ratio": float,
}

#: The override field names alone.
QUERY_OVERRIDE_FIELDS = tuple(QUERY_OVERRIDE_TYPES)

#: DetectConfig threshold fields a ``/detect`` query may override per
#: request, plus ``plan`` (also build a suppression plan) — the same
#: single-source-of-truth contract as ``QUERY_OVERRIDE_TYPES``.
DETECT_OVERRIDE_TYPES: dict[str, type] = {
    "z_warn": float,
    "z_alert": float,
    "z_critical": float,
    "min_deviation": float,
    "min_volume": float,
    "direction": str,
    "max_cells": int,
    "plan": bool,
}

#: The detect override field names alone.
DETECT_OVERRIDE_FIELDS = tuple(DETECT_OVERRIDE_TYPES)

#: Supported query kinds.
KINDS = ("explain", "diff", "recommend", "detect")

#: Default size of the query thread pool.
DEFAULT_QUERY_WORKERS = 8


class QueryScheduler:
    """Bounded-concurrency query execution over a session registry.

    Parameters
    ----------
    registry:
        The session registry queries resolve their dataset against.
    max_workers:
        Query threads (default ``DEFAULT_QUERY_WORKERS``).  Cold-build
        single-flight is the registry's job; this pool only bounds how
        many run-tier solves execute at once.
    """

    def __init__(
        self,
        registry: SessionRegistry,
        max_workers: int = DEFAULT_QUERY_WORKERS,
    ):
        self._registry = registry
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-query"
        )
        # RLock: a future that completes instantly runs its done-callback
        # on the submitting thread, inside the submit critical section.
        self._lock = threading.RLock()
        self._inflight: dict[tuple, Future] = {}
        self._submitted = 0
        self._coalesced = 0
        self._completed = 0
        self._errors = 0
        self._closed = False
        # Queue pressure: how many submitted queries have not yet begun
        # executing, and how long queries waited for a pool thread.
        self._queue_depth = 0
        self._wait_seconds = 0.0
        self._wait_by_kind: dict[str, float] = {}
        metrics = get_metrics()
        self._metric_queue_depth = metrics.gauge(
            "repro_scheduler_queue_depth",
            "Queries submitted but not yet executing",
        )
        self._metric_wait = metrics.counter(
            "repro_scheduler_wait_seconds_total",
            "Cumulative seconds queries waited for a pool thread",
            labels=("kind",),
        )
        self._metric_queries = metrics.counter(
            "repro_scheduler_queries_total",
            "Queries executed (coalesced callers excluded)",
            labels=("kind",),
        )

    @property
    def registry(self) -> SessionRegistry:
        return self._registry

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, kind: str, dataset: str, **params) -> Future:
        """Enqueue one query; identical in-flight queries share a future.

        ``params`` for ``explain``: ``start``/``stop`` plus any field in
        ``QUERY_OVERRIDE_FIELDS``.  For ``diff``: ``start``/``stop``
        (required) and ``m``.  For ``recommend``: ``m``.  For ``detect``:
        any field in ``DETECT_OVERRIDE_FIELDS`` (threshold overrides plus
        ``plan`` — returns ``(report, plan | None)``).  Unknown kinds or
        parameters raise :class:`~repro.exceptions.QueryError`
        synchronously — a malformed query should fail the caller, not
        poison a worker.
        """
        if kind not in KINDS:
            raise QueryError(f"unknown query kind {kind!r}; expected one of {KINDS}")
        self._validate(kind, params)
        key = (kind, dataset, tuple(sorted(params.items())))
        with self._lock:
            if self._closed:
                raise QueryError("scheduler is shut down")
            existing = self._inflight.get(key)
            if existing is not None:
                self._coalesced += 1
                return existing
            # Copying the submitter's contextvars carries its trace into
            # the pool thread, so spans recorded deep inside the session
            # layers attach to the originating request's span tree.
            context = contextvars.copy_context()
            future = self._pool.submit(
                context.run,
                self._run,
                kind,
                dataset,
                dict(params),
                time.perf_counter(),
            )
            self._queue_depth += 1
            self._metric_queue_depth.inc()
            self._inflight[key] = future
            self._submitted += 1
            future.add_done_callback(lambda _f, key=key: self._forget(key))
            return future

    def execute(self, kind: str, dataset: str, **params):
        """Synchronous convenience wrapper: submit and wait."""
        return self.submit(kind, dataset, **params).result()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "submitted": self._submitted,
                "coalesced": self._coalesced,
                "completed": self._completed,
                "errors": self._errors,
                "inflight": len(self._inflight),
                "queue_depth": self._queue_depth,
                "wait_seconds": round(self._wait_seconds, 6),
                "wait_seconds_by_kind": {
                    kind: round(seconds, 6)
                    for kind, seconds in sorted(self._wait_by_kind.items())
                },
            }

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=wait)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _validate(kind: str, params: dict) -> None:
        allowed = {"start", "stop"} | set(QUERY_OVERRIDE_FIELDS)
        if kind == "diff":
            allowed = {"start", "stop", "m"}
            if params.get("start") is None or params.get("stop") is None:
                raise QueryError("diff requires both start and stop")
        elif kind == "recommend":
            allowed = {"m"}
        elif kind == "detect":
            allowed = set(DETECT_OVERRIDE_FIELDS)
        unknown = set(params) - allowed
        if unknown:
            raise QueryError(
                f"unsupported parameter(s) {sorted(unknown)} for {kind!r}"
            )

    def _forget(self, key: tuple) -> None:
        with self._lock:
            future = self._inflight.pop(key, None)
            if future is not None:
                self._completed += 1
                if future.exception() is not None:
                    self._errors += 1

    def _run(self, kind: str, dataset: str, params: dict, submitted_at: float):
        wait = time.perf_counter() - submitted_at
        with self._lock:
            self._queue_depth -= 1
            self._wait_seconds += wait
            self._wait_by_kind[kind] = self._wait_by_kind.get(kind, 0.0) + wait
        self._metric_queue_depth.dec()
        self._metric_wait.inc(wait, kind=kind)
        self._metric_queries.inc(kind=kind)
        # The wait elapsed before this thread started, so it cannot be a
        # live span; attach it to the request trace retroactively.
        record_span("queue-wait", wait)
        # One open span for the whole pool-thread execution: deeper
        # layers open their own phases inside it, but between them this
        # keeps the thread attributable (the sampling profiler joins
        # samples to the innermost open span, and without this umbrella
        # a pool thread between phases would sample as untraced).
        with span(f"query:{kind}"):
            return self._run_query(kind, dataset, params)

    def _run_query(self, kind: str, dataset: str, params: dict):
        if kind == "detect":
            detector = self._registry.detect_session(dataset)
            wants_plan = bool(params.pop("plan", False))
            overrides = {
                name: value for name, value in params.items() if value is not None
            }
            config = detector.config.override(**overrides) if overrides else None
            report = detector.scan(config=config)
            plan = detector.plan(report, source=dataset) if wants_plan else None
            return report, plan
        session = self._registry.session(dataset)
        if kind == "recommend":
            m = params.get("m")
            return session.recommend(m=3 if m is None else m)
        start = params.pop("start", None)
        stop = params.pop("stop", None)
        if kind == "diff":
            return session.diff(start, stop, m=params.get("m"))
        overrides = {
            name: value
            for name, value in params.items()
            if name in QUERY_OVERRIDE_FIELDS and value is not None
        }
        config = session.config.updated(**overrides) if overrides else None
        result: ExplainResult = session.explain(start, stop, config=config)
        return result
