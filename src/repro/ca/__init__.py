"""Cascading Analysts: top-m non-overlapping explanations (+ guess-and-verify)."""

from repro.ca.bruteforce import cascading_optimum, conflicts, is_non_overlapping
from repro.ca.cascade import CascadingAnalysts, DrillDownTree, TopMResult
from repro.ca.guess_verify import DEFAULT_INITIAL_GUESS, GuessAndVerify

__all__ = [
    "CascadingAnalysts",
    "DEFAULT_INITIAL_GUESS",
    "DrillDownTree",
    "GuessAndVerify",
    "TopMResult",
    "cascading_optimum",
    "conflicts",
    "is_non_overlapping",
]
