"""Exhaustive reference implementations used to test the CA dynamic program.

Two oracles:

* :func:`cascading_optimum` — exhaustive recursion over the *cascading*
  search space (choose one drill dimension per node, split quota among its
  values), which is exactly what the DP optimizes.  Exponential; only for
  tiny candidate sets in tests.
* :func:`is_non_overlapping` — the Definition 3.4 invariant: explanations
  are non-overlapping for *every* relation iff each pair conflicts on some
  shared attribute.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ca.cascade import DrillDownTree, _ROOT
from repro.relation.predicates import Conjunction


def conflicts(left: Conjunction, right: Conjunction) -> bool:
    """True when the conjunctions assign different values to a shared attribute."""
    right_items = dict(right.items)
    for name, value in left.items:
        if name in right_items and right_items[name] != value:
            return True
    return False


def is_non_overlapping(explanations: Sequence[Conjunction]) -> bool:
    """Definition 3.4 check: every pair must conflict (disjoint in any R)."""
    for i, left in enumerate(explanations):
        for right in explanations[i + 1 :]:
            if not conflicts(left, right):
                return False
    return True


def cascading_optimum(
    explanations: Sequence[Conjunction], gamma: np.ndarray, m: int
) -> float:
    """Best total score reachable by cascading drill-downs, by brute force."""
    tree = DrillDownTree(explanations)
    gamma = np.asarray(gamma, dtype=np.float64)

    def node_value(node: int, quota: int) -> float:
        if quota <= 0:
            return 0.0
        best = 0.0
        candidate = tree.candidate_of(node)
        if candidate >= 0:
            best = max(best, float(gamma[candidate]))
        for _, kids in tree.children_of(node):
            best = max(best, split_value(kids, 0, quota))
        return best

    def split_value(kids: tuple[int, ...], position: int, quota: int) -> float:
        if position == len(kids) or quota == 0:
            return 0.0
        best = split_value(kids, position + 1, quota)
        for allocation in range(1, quota + 1):
            best = max(
                best,
                node_value(kids[position], allocation)
                + split_value(kids, position + 1, quota - allocation),
            )
        return best

    return node_value(_ROOT, m)
