"""The Cascading Analysts algorithm (paper section 5.2, module b).

Re-implementation of Ruhl, Sundararajan and Yan's top-m *non-overlapping*
explanation search from the paper's description (Figure 8): starting at the
root with ``m`` quotas, either select the current node's explanation or
drill down along **one** dimension and split the quota among that
dimension's values; children along one dimension are disjoint slices, which
is what guarantees non-overlap.  The enumeration of drill-down dimension and
quota assignment is a dynamic program maximizing the total difference score.

Semantics notes
---------------
* We implement the "at most m" variant from the paper's footnote 2
  (``E*_m = argmax over E_x, x <= m``): since ``gamma >= 0``, the optimum
  never loses value by selecting fewer explanations, and zero-score
  selections are omitted from the result.
* The structure is a DAG, not a tree: the node ``a=1 & b=2`` is a child of
  both ``a=1`` (via dimension ``b``) and ``b=2`` (via dimension ``a``).
* *Virtual* nodes (ancestors of candidates that are themselves not
  selectable — e.g. removed by the support filter or by containment
  deduplication) can be drilled through but never selected.

Batch evaluation
----------------
TSExplain needs ``E*_m`` for every one of ``O(n^2)`` segments.  The DAG is
static across segments — only the ``gamma`` vector changes — so
:meth:`CascadingAnalysts.solve_batch` runs the DP once with value tables
vectorized over a chunk of segments, then reconstructs each segment's
selection by walking its optimal decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import ExplanationError
from repro.relation.predicates import Conjunction

#: node id of the conceptual root (the empty conjunction)
_ROOT = 0


@dataclass(frozen=True)
class TopMResult:
    """Top-m non-overlapping explanations of one segment (Definition 3.5).

    Attributes
    ----------
    indices:
        Candidate positions (into the cube / gamma vector), ranked by
        ``gamma`` descending — the ranked list ``[E^1, ..., E^m]`` used by
        the NDCG distance.
    gammas:
        The difference scores of the selected explanations, same order.
    best:
        ``Best[0..m]``: the optimal total score using at most ``q`` quotas,
        for every ``q`` — the side products needed by guess-and-verify
        (Eq. 12).
    taus:
        Change effects ``tau(E^r)`` of the selections on their own segment
        (Definition 3.3); attached by :meth:`with_context` after solving
        because the CA itself only sees non-negative scores.
    source_segment:
        ``(start, stop)`` positions of the segment this result explains;
        attached by :meth:`with_context`.
    """

    indices: tuple[int, ...]
    gammas: tuple[float, ...]
    best: tuple[float, ...]
    taus: tuple[int, ...] = ()
    source_segment: tuple[int, int] | None = None

    def with_context(
        self, taus: Sequence[int], source_segment: tuple[int, int]
    ) -> "TopMResult":
        """A copy annotated with change effects and segment positions."""
        return TopMResult(
            indices=self.indices,
            gammas=self.gammas,
            best=self.best,
            taus=tuple(int(t) for t in taus),
            source_segment=(int(source_segment[0]), int(source_segment[1])),
        )

    @property
    def total(self) -> float:
        """Total difference score of the selection (= ``best[-1]``)."""
        return self.best[-1]

    def __len__(self) -> int:
        return len(self.indices)


class DrillDownTree:
    """The static drill-down DAG over a fixed candidate list.

    Parameters
    ----------
    explanations:
        Selectable candidate conjunctions; their *positions* in this
        sequence are the indices used in gamma vectors and results.
    """

    def __init__(self, explanations: Sequence[Conjunction]):
        if any(conj.order == 0 for conj in explanations):
            raise ExplanationError("the empty conjunction cannot be a candidate")
        node_ids: dict[Conjunction, int] = {Conjunction(()): _ROOT}
        conjs: list[Conjunction] = [Conjunction(())]
        selectable: list[int] = [-1]

        def intern(conjunction: Conjunction) -> int:
            node = node_ids.get(conjunction)
            if node is None:
                node = len(conjs)
                node_ids[conjunction] = node
                conjs.append(conjunction)
                selectable.append(-1)
            return node

        # Intern every candidate and every sub-conjunction (virtual nodes).
        for position, conjunction in enumerate(explanations):
            node = intern(conjunction)
            if selectable[node] != -1:
                raise ExplanationError(f"duplicate candidate {conjunction!r}")
            selectable[node] = position
            for sub in _proper_subconjunctions(conjunction):
                intern(sub)

        # Children grouped by drill-down dimension.
        children: list[dict[str, list[int]]] = [dict() for _ in conjs]
        for node in range(1, len(conjs)):
            conjunction = conjs[node]
            for drop in range(conjunction.order):
                items = conjunction.items
                parent_conj = Conjunction.from_items(items[:drop] + items[drop + 1 :])
                parent = node_ids[parent_conj]
                dim = items[drop][0]
                children[parent].setdefault(dim, []).append(node)

        self._conjunctions = tuple(conjs)
        self._selectable = np.asarray(selectable, dtype=np.intp)
        self._children: tuple[tuple[tuple[str, tuple[int, ...]], ...], ...] = tuple(
            tuple((dim, tuple(kids)) for dim, kids in sorted(by_dim.items()))
            for by_dim in children
        )
        # Deepest-first topological order (children always precede parents).
        self._topo = sorted(
            range(len(conjs)), key=lambda node: -self._conjunctions[node].order
        )
        self._n_candidates = len(explanations)

    @property
    def n_nodes(self) -> int:
        return len(self._conjunctions)

    @property
    def n_candidates(self) -> int:
        return self._n_candidates

    @property
    def is_flat(self) -> bool:
        """True when the DAG is a single drill-down over one attribute.

        In that case all candidates are pairwise non-overlapping values of
        one dimension and the top-m selection degenerates to "take the m
        highest scores" — a fully vectorizable fast path.
        """
        return (
            self.n_nodes == self._n_candidates + 1
            and len(self._children[_ROOT]) == 1
        )

    def conjunction(self, node: int) -> Conjunction:
        """The conjunction labelling a node."""
        return self._conjunctions[node]

    def candidate_of(self, node: int) -> int:
        """Candidate position of a node, or -1 for virtual nodes/root."""
        return int(self._selectable[node])

    def children_of(self, node: int) -> tuple[tuple[str, tuple[int, ...]], ...]:
        """``(dimension, child node ids)`` groups below a node."""
        return self._children[node]

    def iter_topological(self) -> Iterator[int]:
        """Nodes deepest-first (every child before its parents)."""
        return iter(self._topo)

    def __repr__(self) -> str:
        return (
            f"DrillDownTree({self._n_candidates} candidates, "
            f"{self.n_nodes} nodes)"
        )


def _proper_subconjunctions(conjunction: Conjunction) -> Iterator[Conjunction]:
    """All strict sub-conjunctions (the power set of items, minus itself)."""
    items = conjunction.items
    n = len(items)
    for mask in range(2**n - 1):
        yield Conjunction.from_items(
            tuple(items[k] for k in range(n) if mask >> k & 1)
        )


class CascadingAnalysts:
    """Dynamic program for top-m non-overlapping explanations.

    Parameters
    ----------
    tree:
        The drill-down DAG of the candidate set.
    m:
        Quota — the maximum number of explanations to return (paper
        default 3).
    """

    def __init__(self, tree: DrillDownTree, m: int = 3):
        if m < 1:
            raise ExplanationError(f"m must be >= 1, got {m}")
        self._tree = tree
        self._m = m

    @property
    def m(self) -> int:
        return self._m

    @property
    def tree(self) -> DrillDownTree:
        return self._tree

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def solve(self, gamma: np.ndarray) -> TopMResult:
        """Top-m result for a single gamma vector of length ``n_candidates``."""
        return self.solve_batch(np.asarray(gamma, dtype=np.float64)[None, :])[0]

    def solve_batch(self, gammas: np.ndarray, chunk_size: int | None = None) -> list[TopMResult]:
        """Top-m results for many segments at once.

        Parameters
        ----------
        gammas:
            ``(n_segments, n_candidates)`` matrix of difference scores; all
            entries must be non-negative.
        chunk_size:
            Number of segments whose DP tables are held in memory together;
            defaults to an adaptive size targeting tens of megabytes.
        """
        gammas = np.asarray(gammas, dtype=np.float64)
        if gammas.ndim != 2 or gammas.shape[1] != self._tree.n_candidates:
            raise ExplanationError(
                f"gamma matrix shape {gammas.shape} does not match "
                f"{self._tree.n_candidates} candidates"
            )
        if gammas.size and float(gammas.min()) < 0:
            raise ExplanationError("gamma scores must be non-negative")
        if self._tree.is_flat:
            return self._solve_flat(gammas)
        if chunk_size is None:
            bytes_per_segment = 8 * (self._m + 1) * max(self._tree.n_nodes, 1)
            chunk_size = int(np.clip(48_000_000 // bytes_per_segment, 16, 1024))
        results: list[TopMResult] = []
        for offset in range(0, gammas.shape[0], chunk_size):
            chunk = gammas[offset : offset + chunk_size]
            results.extend(self._solve_chunk(chunk))
        return results

    # ------------------------------------------------------------------
    # Flat fast path: one attribute, all values pairwise disjoint
    # ------------------------------------------------------------------
    def _solve_flat(self, gammas: np.ndarray) -> list[TopMResult]:
        m = self._m
        n_segments, n_candidates = gammas.shape
        k = min(m, n_candidates)
        # Candidate node ids happen to equal candidate position + 1, but we
        # work purely in candidate positions here.
        top_unsorted = np.argpartition(-gammas, k - 1, axis=1)[:, :k]
        top_unsorted.sort(axis=1)  # deterministic tie-breaking by position
        top_gamma = np.take_along_axis(gammas, top_unsorted, axis=1)
        order = np.argsort(-top_gamma, axis=1, kind="stable")
        top_idx = np.take_along_axis(top_unsorted, order, axis=1)
        top_gamma = np.take_along_axis(top_gamma, order, axis=1)
        cumulative = np.cumsum(top_gamma, axis=1)
        results: list[TopMResult] = []
        for segment in range(n_segments):
            kept = int(np.count_nonzero(top_gamma[segment] > 0.0))
            best = [0.0]
            for q in range(1, m + 1):
                best.append(float(cumulative[segment, min(q, k) - 1]))
            results.append(
                TopMResult(
                    indices=tuple(int(i) for i in top_idx[segment, :kept]),
                    gammas=tuple(float(g) for g in top_gamma[segment, :kept]),
                    best=tuple(best),
                )
            )
        return results

    # ------------------------------------------------------------------
    # Forward DP over one chunk of segments
    # ------------------------------------------------------------------
    def _solve_chunk(self, gammas: np.ndarray) -> list[TopMResult]:
        tree = self._tree
        m = self._m
        n_segments = gammas.shape[0]
        tables: dict[int, np.ndarray] = {}

        for node in tree.iter_topological():
            candidate = tree.candidate_of(node)
            groups = tree.children_of(node)
            value: np.ndarray | None = None
            for _, kids in groups:
                knapsack = np.zeros((n_segments, m + 1), dtype=np.float64)
                for child in kids:
                    child_value = tables[child]
                    for x in range(m, 0, -1):
                        best = knapsack[:, x]
                        for y in range(1, x + 1):
                            best = np.maximum(best, knapsack[:, x - y] + child_value[:, y])
                        knapsack[:, x] = best
                value = knapsack if value is None else np.maximum(value, knapsack)
            if value is None:
                value = np.zeros((n_segments, m + 1), dtype=np.float64)
            if candidate >= 0:
                np.maximum(value[:, 1:], gammas[:, candidate, None], out=value[:, 1:])
            tables[node] = value

        return [
            self._reconstruct(segment, gammas, tables)
            for segment in range(n_segments)
        ]

    # ------------------------------------------------------------------
    # Per-segment reconstruction of the optimal selection
    # ------------------------------------------------------------------
    def _reconstruct(
        self, segment: int, gammas: np.ndarray, tables: dict[int, np.ndarray]
    ) -> TopMResult:
        selected: list[int] = []
        self._walk(_ROOT, self._m, segment, gammas, tables, selected)
        ranked = sorted(
            selected, key=lambda candidate: (-gammas[segment, candidate], candidate)
        )
        best = tuple(float(v) for v in tables[_ROOT][segment])
        return TopMResult(
            indices=tuple(ranked),
            gammas=tuple(float(gammas[segment, candidate]) for candidate in ranked),
            best=best,
        )

    def _walk(
        self,
        node: int,
        quota: int,
        segment: int,
        gammas: np.ndarray,
        tables: dict[int, np.ndarray],
        selected: list[int],
    ) -> None:
        """Re-derive the decision at ``node`` with ``quota`` and recurse."""
        if quota <= 0:
            return
        tree = self._tree
        candidate = tree.candidate_of(node)
        best_value = 0.0
        best_choice: tuple | None = None
        if candidate >= 0:
            self_value = float(gammas[segment, candidate])
            if self_value > best_value:
                best_value = self_value
                best_choice = ("self",)
        for dim, kids in tree.children_of(node):
            table = self._scalar_knapsack(kids, quota, segment, tables)
            drill_value = table[-1][quota]
            if drill_value > best_value:
                best_value = drill_value
                best_choice = ("drill", kids, table)
        if best_choice is None:
            return
        if best_choice[0] == "self":
            selected.append(candidate)
            return
        _, kids, table = best_choice
        remaining = quota
        for position in range(len(kids), 0, -1):
            child_value = tables[kids[position - 1]][segment]
            target = table[position][remaining]
            for allocation in range(0, remaining + 1):
                if table[position - 1][remaining - allocation] + child_value[allocation] == target:
                    if allocation > 0:
                        self._walk(
                            kids[position - 1],
                            allocation,
                            segment,
                            gammas,
                            tables,
                            selected,
                        )
                    remaining -= allocation
                    break
            else:  # pragma: no cover - float safety net, not expected to trigger
                raise ExplanationError("knapsack backtracking failed")

    def _scalar_knapsack(
        self,
        kids: tuple[int, ...],
        quota: int,
        segment: int,
        tables: dict[int, np.ndarray],
    ) -> list[list[float]]:
        """Quota-allocation DP over one dimension's children, with history.

        ``table[i][x]`` is the best total using the first ``i`` children and
        ``x`` quotas; the full history enables exact backtracking.
        """
        table = [[0.0] * (quota + 1)]
        for child in kids:
            child_value = tables[child][segment]
            previous = table[-1]
            row = [0.0] * (quota + 1)
            for x in range(quota + 1):
                best = previous[x]
                for y in range(1, x + 1):
                    value = previous[x - y] + float(child_value[y])
                    if value > best:
                        best = value
                row[x] = best
            table.append(row)
        return table
