"""Guess-and-verify optimization (paper section 5.3.1, ``O1``).

Instead of running the cascading-analysts DP over all ``epsilon``
candidates, guess that the answer lies within the ``m_bar`` highest-scoring
candidates, solve the much smaller DP, and verify optimality with the
sufficient condition of Eq. 12:

    Best[m] >= Best[m'] + sum_{1<=j<=m-m'} gamma(E_{r_{m_bar+j}})   for all 0 <= m' < m

where ``chi = [E_r1, E_r2, ...]`` is the candidate list sorted by gamma
descending.  Any feasible selection splits into explanations ranked within
the guess (score bounded by ``Best[m']``) and ones ranked after ``m_bar``
(bounded by the next ``m - m'`` scores in ``chi``), so passing the condition
proves the guessed answer optimal.  On failure the guess size doubles
(Figure 9) until it covers all candidates.

Batched variant
---------------
TSExplain calls O1 for thousands of segments.  Solving each segment's
30-candidate DP separately forfeits the batch vectorization of
:class:`~repro.ca.cascade.CascadingAnalysts`, so :meth:`solve_batch`
restricts to the *union* of the per-segment top-``m_bar`` prefixes and
solves all segments against that one (still small) DAG in a single batched
DP.  The Eq. 12 check stays sound: the union-restricted ``Best[m']`` upper-
bounds the per-segment restricted one, so passing the (harder) condition
still certifies optimality; failing segments retry with a doubled prefix.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.ca.cascade import CascadingAnalysts, DrillDownTree, TopMResult
from repro.exceptions import ExplanationError
from repro.relation.predicates import Conjunction

#: Paper's empirical initial guess size when m = 3.
DEFAULT_INITIAL_GUESS = 30

#: When the guessed union covers this fraction of all candidates, fall back
#: to the full solver — the restriction no longer saves anything.
_FULL_FALLBACK_FRACTION = 0.8


class GuessAndVerify:
    """Top-m solver that restricts the DP to high-score candidate prefixes.

    Parameters
    ----------
    explanations:
        The full candidate list (cube order); gamma vectors passed to
        :meth:`solve` index into it.
    m:
        Explanation quota.
    initial_guess:
        Starting prefix size ``m_bar`` (paper: 30 for m=3).
    cache_size:
        Number of restricted drill-down DAGs memoized by candidate subset;
        neighbouring segment batches usually share their top candidates.
    """

    def __init__(
        self,
        explanations: Sequence[Conjunction],
        m: int = 3,
        initial_guess: int = DEFAULT_INITIAL_GUESS,
        cache_size: int = 64,
    ):
        if initial_guess < m:
            raise ExplanationError(
                f"initial guess {initial_guess} must be >= m ({m})"
            )
        self._explanations = tuple(explanations)
        self._m = m
        self._initial_guess = initial_guess
        self._cache: OrderedDict[tuple[int, ...], CascadingAnalysts] = OrderedDict()
        self._cache_size = cache_size
        self._full_solver: CascadingAnalysts | None = None
        #: number of guess rounds performed across calls (telemetry/tests)
        self.iterations = 0

    @property
    def m(self) -> int:
        return self._m

    # ------------------------------------------------------------------
    def solve(self, gamma: np.ndarray) -> TopMResult:
        """Verified-optimal top-m result for one gamma vector."""
        return self.solve_batch(np.asarray(gamma, dtype=np.float64)[None, :])[0]

    def solve_batch(self, gammas: np.ndarray) -> list[TopMResult]:
        """Verified-optimal top-m results for a gamma matrix."""
        gammas = np.asarray(gammas, dtype=np.float64)
        if gammas.ndim != 2 or gammas.shape[1] != len(self._explanations):
            raise ExplanationError(
                f"gamma matrix shape {gammas.shape} does not match "
                f"{len(self._explanations)} candidates"
            )
        n_segments, n_candidates = gammas.shape
        if n_segments == 0:
            return []
        order = np.argsort(-gammas, axis=1, kind="stable")
        results: list[TopMResult | None] = [None] * n_segments
        pending = list(range(n_segments))
        guess = min(self._initial_guess, n_candidates)
        while pending:
            self.iterations += 1
            if guess >= n_candidates:
                self._solve_full(gammas, pending, results)
                break
            union = np.unique(order[pending, :guess])
            if union.shape[0] >= _FULL_FALLBACK_FRACTION * n_candidates:
                self._solve_full(gammas, pending, results)
                break
            solver = self._restricted_solver(union)
            local = solver.solve_batch(gammas[pending][:, union])
            still_pending: list[int] = []
            for row, restricted in zip(pending, local):
                mapped = TopMResult(
                    indices=tuple(int(union[i]) for i in restricted.indices),
                    gammas=restricted.gammas,
                    best=restricted.best,
                )
                sorted_gamma = gammas[row, order[row]]
                if self._verified(mapped, sorted_gamma, guess):
                    results[row] = mapped
                else:
                    still_pending.append(row)
            pending = still_pending
            guess = min(2 * guess, n_candidates)
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _solve_full(
        self,
        gammas: np.ndarray,
        pending: list[int],
        results: list[TopMResult | None],
    ) -> None:
        """Exact fallback over the complete candidate set."""
        if self._full_solver is None:
            self._full_solver = CascadingAnalysts(
                DrillDownTree(self._explanations), self._m
            )
        solved = self._full_solver.solve_batch(gammas[pending])
        for row, result in zip(pending, solved):
            results[row] = result

    def _restricted_solver(self, union: np.ndarray) -> CascadingAnalysts:
        key = tuple(int(i) for i in union)
        solver = self._cache.get(key)
        if solver is None:
            tree = DrillDownTree([self._explanations[i] for i in key])
            solver = CascadingAnalysts(tree, self._m)
            self._cache[key] = solver
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        else:
            self._cache.move_to_end(key)
        return solver

    def _verified(
        self, result: TopMResult, sorted_gamma: np.ndarray, guess: int
    ) -> bool:
        """Check the sufficient optimality condition of Eq. 12."""
        tail = sorted_gamma[guess : guess + self._m]
        tail_prefix_sums = np.concatenate([[0.0], np.cumsum(tail)])
        best = result.best
        best_m = best[self._m]
        for m_prime in range(self._m):
            needed = self._m - m_prime
            tail_sum = float(tail_prefix_sums[min(needed, tail.shape[0])])
            if best_m < best[m_prime] + tail_sum - 1e-12 * max(1.0, abs(best_m)):
                return False
        return True
