"""Tiered day-of-week rolling baselines over a cube's time axis.

For every time position ``t`` the baseline samples are picked by a
calendar-aware tier cascade:

``28-day day-of-week`` → ``14-day day-of-week`` → ``4-day recency``

* A **day-of-week tier** of width ``w`` samples the same weekday at
  ``t - 7, t - 14, ... t - w`` days — weekly seasonality never pollutes
  the baseline (Mondays are compared to Mondays).
* The **recency tier** is the fallback for young or gappy histories: the
  previous ``recency_window`` days restricted to ``t``'s *day class*
  (weekday vs weekend), so a Saturday early in the stream is still never
  baselined against weekdays.
* Each tier needs its minimum-sample quota
  (:class:`~repro.detect.scoring.DetectConfig`); when every tier is
  under-sampled the column **abstains** (tier 0) and is never scored.

Labels that parse as ISO dates get true calendar arithmetic (gaps in
the axis shrink the available samples instead of silently shifting
them); any other label scheme falls back to a positional calendar
(position = day, ``position % 7`` = weekday).

:class:`TieredBaselines` is an *updatable state object*: a full
construction scans every column once, and :meth:`TieredBaselines.advance`
recomputes only the columns a
:class:`~repro.cube.delta.AppendInfo` could have affected — everything
from ``first_changed_position`` on — so a streaming tail append costs
O(delta), not O(history).  Column recomputation is the **same routine**
in both paths, so incremental state is byte-identical to a one-shot
rebuild (the property suite asserts this across SUM/COUNT/AVG/VAR).
"""

from __future__ import annotations

import datetime
from typing import TYPE_CHECKING, Hashable, Sequence

import numpy as np

from repro.detect.scoring import DetectConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cube.datacube import ExplanationCube
    from repro.cube.delta import AppendInfo


def _parse_ordinal(label: Hashable) -> int | None:
    """The proleptic-Gregorian ordinal of an ISO-date label, else None."""
    if isinstance(label, datetime.date):
        return label.toordinal()
    try:
        return datetime.date.fromisoformat(str(label)).toordinal()
    except ValueError:
        return None


class SlotCalendar:
    """Maps time labels to calendar slots (day ordinal, weekday).

    ``mode`` is ``"date"`` when every label parses as an ISO date (real
    calendar arithmetic) and ``"positional"`` otherwise (position =
    ordinal, ``ordinal % 7`` = weekday).  The mapping is extended
    incrementally as the axis grows; a single unparseable new label
    flips the whole calendar to positional — :meth:`extend` reports the
    flip so the owner can rebuild dependent state.
    """

    __slots__ = ("mode", "ordinals", "weekdays", "_pos_by_ordinal", "_n")

    def __init__(self, labels: Sequence[Hashable]):
        self.mode = "date"
        self.ordinals: list[int] = []
        self.weekdays: list[int] = []
        self._pos_by_ordinal: dict[int, int] = {}
        self._n = 0
        self.extend(labels)

    def __len__(self) -> int:
        return self._n

    def extend(self, labels: Sequence[Hashable]) -> bool:
        """Absorb the axis suffix beyond what is already mapped.

        Returns ``True`` when the calendar *mode flipped* to positional
        (an unparseable or colliding new label): every slot assignment
        changed, so baselines derived from the old mapping are stale.
        """
        suffix = labels[self._n :]
        if not suffix:
            return False
        flipped = False
        if self.mode == "date":
            ordinals = [_parse_ordinal(label) for label in suffix]
            if (
                all(o is not None for o in ordinals)
                and len(set(ordinals)) == len(ordinals)
                and not any(o in self._pos_by_ordinal for o in ordinals)
            ):
                for offset, ordinal in enumerate(ordinals):
                    position = self._n + offset
                    self.ordinals.append(ordinal)
                    # toordinal() % 7 maps Monday to 1; shift to the
                    # weekday() convention (Monday 0 ... Sunday 6).
                    self.weekdays.append((ordinal - 1) % 7)
                    self._pos_by_ordinal[ordinal] = position
                self._n = len(labels)
                return False
            # Fall back to the positional calendar for the whole axis.
            # Only a *re*mapping of existing slots counts as a flip —
            # an unparseable label on the very first build is just the
            # positional calendar from the start.
            flipped = self._n > 0
            self.mode = "positional"
            self.ordinals = []
            self.weekdays = []
            self._pos_by_ordinal = {}
            self._n = 0
        for position in range(self._n, len(labels)):
            self.ordinals.append(position)
            self.weekdays.append(position % 7)
            self._pos_by_ordinal[position] = position
        self._n = len(labels)
        return flipped

    # ------------------------------------------------------------------
    def samples_for(
        self, position: int, config: DetectConfig
    ) -> tuple[int, list[int]]:
        """``(window_days, sample_positions)`` for one column; 0 = abstain.

        The tier cascade: widest day-of-week window whose same-weekday
        quota is met, else the recency window over the same day class.
        """
        ordinal = self.ordinals[position]
        lookup = self._pos_by_ordinal.get
        for window, minimum in zip(config.dow_windows, config.dow_min_samples):
            samples = []
            for days_back in range(7, window + 1, 7):
                found = lookup(ordinal - days_back)
                if found is not None and found < position:
                    samples.append(found)
            if len(samples) >= minimum:
                samples.reverse()  # ascending time order
                return window, samples
        weekend = self.weekdays[position] >= 5
        samples = []
        for days_back in range(config.recency_window, 0, -1):
            found = lookup(ordinal - days_back)
            if (
                found is not None
                and found < position
                and (self.weekdays[found] >= 5) == weekend
            ):
                samples.append(found)
        if len(samples) >= config.recency_min_samples:
            return config.recency_window, samples
        return 0, []


def _grow_columns(array: np.ndarray, n_columns: int) -> np.ndarray:
    """``array`` zero-extended along its last axis to ``n_columns``."""
    if array.shape[-1] >= n_columns:
        return array
    grown = np.zeros(array.shape[:-1] + (n_columns,), dtype=array.dtype)
    grown[..., : array.shape[-1]] = array
    return grown


class TieredBaselines:
    """Per-(candidate, column) rolling baseline state for one cube.

    Attributes
    ----------
    mean / std:
        ``(n_candidates, n_times)`` float64 — the baseline mean and
        population standard deviation of each cell's tier samples
        (zero where the column abstained).
    tier:
        ``(n_times,)`` int16 — the window days of the serving tier
        (28 / 14 / 4 by default), 0 where the column abstained.
    samples:
        ``(n_times,)`` int16 — how many samples the serving tier found.

    The object stays bound to the live cube: after
    :meth:`~repro.core.session.ExplainSession.append` scatters a delta,
    pass the resulting :class:`~repro.cube.delta.AppendInfo` to
    :meth:`advance` and only the affected columns are recomputed.
    """

    def __init__(self, cube: "ExplanationCube", config: DetectConfig | None = None):
        self._cube = cube
        self._config = config or DetectConfig()
        self._calendar: SlotCalendar | None = None
        self.mean = np.zeros((0, 0))
        self.std = np.zeros((0, 0))
        self.tier = np.zeros(0, dtype=np.int16)
        self.samples = np.zeros(0, dtype=np.int16)
        self.rebuild()

    @property
    def cube(self) -> "ExplanationCube":
        return self._cube

    @property
    def config(self) -> DetectConfig:
        return self._config

    @property
    def n_times(self) -> int:
        return self.tier.shape[0]

    @property
    def calendar_mode(self) -> str:
        assert self._calendar is not None
        return self._calendar.mode

    # ------------------------------------------------------------------
    def rebuild(self) -> np.ndarray:
        """Full scan: recompute every column; returns the positions."""
        cube = self._cube
        n_candidates, n_times = cube.included_values.shape
        self._calendar = SlotCalendar(cube.labels)
        self.mean = np.zeros((n_candidates, n_times))
        self.std = np.zeros((n_candidates, n_times))
        self.tier = np.zeros(n_times, dtype=np.int16)
        self.samples = np.zeros(n_times, dtype=np.int16)
        positions = np.arange(n_times, dtype=np.intp)
        for position in positions:
            self._compute_column(int(position))
        return positions

    def advance(self, info: "AppendInfo | None") -> np.ndarray:
        """Recompute the columns an append could have affected.

        A baseline at ``t`` reads values strictly before ``t``, so a
        delta changing values from ``first_changed_position`` on can
        only affect columns at or after it — the recomputed range is
        exactly ``[first_changed_position, n_times)``, i.e. O(delta)
        for a tail append.  Candidate-set growth, a calendar-mode flip
        or a missing :class:`~repro.cube.delta.AppendInfo` (the session
        dropped its cube) degrade to :meth:`rebuild`.  Returns the
        recomputed column positions (empty for a no-op delta).
        """
        if info is None:
            return self.rebuild()
        if info.is_noop:
            return np.arange(0, dtype=np.intp)
        cube = self._cube
        n_candidates, n_times = cube.included_values.shape
        if info.candidates_changed or n_candidates != self.mean.shape[0]:
            return self.rebuild()
        assert self._calendar is not None
        if self._calendar.extend(cube.labels):
            return self.rebuild()
        self.mean = _grow_columns(self.mean, n_times)
        self.std = _grow_columns(self.std, n_times)
        self.tier = _grow_columns(self.tier, n_times)
        self.samples = _grow_columns(self.samples, n_times)
        first = min(info.first_changed_position, n_times)
        positions = np.arange(first, n_times, dtype=np.intp)
        for position in positions:
            self._compute_column(int(position))
        return positions

    # ------------------------------------------------------------------
    def _compute_column(self, position: int) -> None:
        """(Re)compute one column — shared by rebuild and advance, so the
        incremental path is byte-identical to a one-shot scan."""
        assert self._calendar is not None
        window, sample_positions = self._calendar.samples_for(position, self._config)
        self.tier[position] = window
        self.samples[position] = len(sample_positions)
        if window == 0:
            self.mean[:, position] = 0.0
            self.std[:, position] = 0.0
            return
        gathered = self._cube.included_values[:, sample_positions]
        self.mean[:, position] = gathered.mean(axis=1)
        self.std[:, position] = gathered.std(axis=1)

    def __repr__(self) -> str:
        served = int(np.count_nonzero(self.tier))
        return (
            f"TieredBaselines(n_times={self.n_times}, served={served}, "
            f"abstained={self.n_times - served}, mode={self.calendar_mode})"
        )
