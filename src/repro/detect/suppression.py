"""Reviewable suppression plans over detected anomalies.

Scoring surfaces anomalous cells; operators act on them.  A
:class:`SuppressionPlan` groups every anomalous cell with a recommended
action and the triggering evidence:

``suppress``
    Drop the cell's rows (critical anomalies — data too corrupted to
    keep).
``correct``
    Rescale the cell's measure values so the cell aggregate lands on its
    baseline mean (alert-grade anomalies under SUM/AVG; anything the
    rescale cannot express honestly — COUNT cells, a zero actual —
    degrades to ``suppress``).
``ignore``
    Keep the rows, keep the flag (warn-grade anomalies: reviewed, not
    acted on).

Plans serialize to JSON (``save``/``load``) so the review can happen
out-of-band, and :func:`apply_plan` produces a **corrected Relation**
that feeds straight back into the explain path.  Relations are
immutable, so rollback is free: :class:`AppliedPlan` keeps the original
binding and :meth:`AppliedPlan.rollback` returns it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.detect.scoring import CellScore
from repro.exceptions import QueryError
from repro.relation.table import Relation

#: Actions a plan entry may recommend.
ACTIONS = ("suppress", "correct", "ignore")

#: Severity -> recommended action.
_POLICY = {"critical": "suppress", "alert": "correct", "warn": "ignore"}

#: Aggregates whose cells a measure rescale corrects exactly.
_RESCALABLE = ("sum", "avg")


def recommend_action(cell: CellScore, aggregate: str) -> tuple[str, str]:
    """``(action, reason)`` for one anomalous cell.

    Severity drives the policy (critical → suppress, alert → correct,
    warn → ignore); a correction that cannot be expressed as a measure
    rescale — non-SUM/AVG aggregates, or a zero actual value — degrades
    to suppression, with the reason spelling out why.
    """
    action = _POLICY[cell.severity]
    reason = (
        f"{cell.severity}: |z|={abs(cell.z):.2f} vs baseline "
        f"{cell.baseline_mean:g}±{cell.baseline_std:g} "
        f"({cell.window_days}d window, n={cell.samples})"
    )
    if action == "correct" and aggregate not in _RESCALABLE:
        return "suppress", reason + f"; {aggregate} cells cannot be rescaled"
    if action == "correct" and cell.value == 0:
        return "suppress", reason + "; zero actual cannot be rescaled"
    return action, reason


@dataclass(frozen=True)
class PlanEntry:
    """One anomalous cell with its recommendation and evidence."""

    cell: CellScore
    action: str
    reason: str
    linked_explanations: tuple[str, ...] = ()

    def describe(self) -> str:
        linked = (
            f"  <- {', '.join(self.linked_explanations)}"
            if self.linked_explanations
            else ""
        )
        return f"{self.action:<8s} {self.cell.describe()}{linked}"

    def to_json(self) -> dict:
        return {
            "cell": self.cell.to_json(),
            "action": self.action,
            "reason": self.reason,
            "linked_explanations": list(self.linked_explanations),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "PlanEntry":
        action = payload["action"]
        if action not in ACTIONS:
            raise QueryError(f"plan entry action {action!r} not in {ACTIONS}")
        return cls(
            cell=CellScore.from_json(payload["cell"]),
            action=action,
            reason=payload["reason"],
            linked_explanations=tuple(payload.get("linked_explanations", ())),
        )


@dataclass(frozen=True)
class SuppressionPlan:
    """A reviewable batch of recommendations over one query's cube."""

    measure: str
    time_attr: str
    aggregate: str
    explain_by: tuple[str, ...]
    entries: tuple[PlanEntry, ...]
    source: str = ""

    def counts(self) -> dict[str, int]:
        counts = {action: 0 for action in ACTIONS}
        for entry in self.entries:
            counts[entry.action] += 1
        return counts

    def describe(self) -> str:
        counts = self.counts()
        header = (
            f"suppression plan over {self.source or self.measure}: "
            f"{len(self.entries)} entr{'y' if len(self.entries) == 1 else 'ies'} "
            f"({counts['suppress']} suppress, {counts['correct']} correct, "
            f"{counts['ignore']} ignore)"
        )
        return "\n".join([header] + [f"  {e.describe()}" for e in self.entries])

    def to_json(self) -> dict:
        return {
            "measure": self.measure,
            "time_attr": self.time_attr,
            "aggregate": self.aggregate,
            "explain_by": list(self.explain_by),
            "source": self.source,
            "counts": self.counts(),
            "entries": [entry.to_json() for entry in self.entries],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "SuppressionPlan":
        return cls(
            measure=payload["measure"],
            time_attr=payload["time_attr"],
            aggregate=payload["aggregate"],
            explain_by=tuple(payload["explain_by"]),
            entries=tuple(
                PlanEntry.from_json(entry) for entry in payload["entries"]
            ),
            source=payload.get("source", ""),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_json(), indent=2) + "\n", encoding="utf-8"
        )

    @classmethod
    def load(cls, path: str | Path) -> "SuppressionPlan":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            raise QueryError(f"cannot load suppression plan {path}: {error}") from None
        return cls.from_json(payload)


def build_plan(
    cells: Sequence[CellScore],
    *,
    measure: str,
    time_attr: str,
    aggregate: str,
    explain_by: Sequence[str],
    source: str = "",
    links: dict[int, tuple[str, ...]] | None = None,
) -> SuppressionPlan:
    """Group scored cells into a plan; ``links`` maps cell positions to
    the cross-linked explanation reprs for that timestamp's window."""
    links = links or {}
    entries = []
    for cell in cells:
        action, reason = recommend_action(cell, aggregate)
        entries.append(
            PlanEntry(
                cell=cell,
                action=action,
                reason=reason,
                linked_explanations=links.get(cell.position, ()),
            )
        )
    return SuppressionPlan(
        measure=measure,
        time_attr=time_attr,
        aggregate=aggregate,
        explain_by=tuple(explain_by),
        entries=tuple(entries),
        source=source,
    )


# ----------------------------------------------------------------------
# Applying a plan to a relation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AppliedPlan:
    """The outcome of :func:`apply_plan`, with free rollback."""

    corrected: Relation
    original: Relation
    suppressed_rows: int
    corrected_rows: int
    ignored_entries: int
    missed_entries: tuple[str, ...] = field(default=())

    def rollback(self) -> Relation:
        """The pre-plan relation (relations are immutable — free)."""
        return self.original

    def describe(self) -> str:
        missed = (
            f", {len(self.missed_entries)} matched no rows"
            if self.missed_entries
            else ""
        )
        return (
            f"applied: {self.suppressed_rows} row(s) suppressed, "
            f"{self.corrected_rows} rescaled, "
            f"{self.ignored_entries} entr{'y' if self.ignored_entries == 1 else 'ies'} "
            f"ignored{missed}"
        )


def _cell_mask(relation: Relation, cell: CellScore, time_attr: str) -> np.ndarray:
    """Rows of ``relation`` inside the cell's (conjunction, timestamp)."""
    mask = _column_equals(relation.column(time_attr), cell.label)
    for attribute, value in cell.items:
        mask &= _column_equals(relation.column(attribute), value)
    return mask


def _column_equals(column: np.ndarray, value) -> np.ndarray:
    """Equality robust to the str round-trip a JSON-loaded plan took."""
    mask = column == value
    mask = np.asarray(mask, dtype=bool)
    if not mask.any():
        mask = column.astype(str) == str(value)
    return mask


def apply_plan(plan: SuppressionPlan, relation: Relation) -> AppliedPlan:
    """Execute a plan's recommendations against a relation.

    ``suppress`` drops the cell's rows; ``correct`` rescales the cell's
    measure values by ``baseline_mean / actual`` (exact for SUM and AVG
    cells — :func:`recommend_action` never recommends ``correct``
    elsewhere); ``ignore`` keeps the rows.  Entries whose cell matches
    no rows (the relation moved on since the scan) are reported, not
    silently skipped.
    """
    if plan.measure not in relation.schema:
        raise QueryError(
            f"plan measure {plan.measure!r} is not a column of the relation"
        )
    values = relation.column(plan.measure).astype(np.float64).copy()
    keep = np.ones(relation.n_rows, dtype=bool)
    suppressed = corrected = ignored = 0
    missed: list[str] = []
    for entry in plan.entries:
        if entry.action == "ignore":
            ignored += 1
            continue
        mask = _cell_mask(relation, entry.cell, plan.time_attr)
        matched = int(np.count_nonzero(mask))
        if matched == 0:
            missed.append(f"{entry.cell.explanation} @ {entry.cell.label}")
            continue
        if entry.action == "suppress" or entry.cell.value == 0:
            keep &= ~mask
            suppressed += matched
        else:
            values[mask] *= entry.cell.baseline_mean / entry.cell.value
            corrected += matched
    columns = relation.columns()
    columns[plan.measure] = values
    rescaled = Relation(columns, relation.schema)
    return AppliedPlan(
        corrected=rescaled.take(np.flatnonzero(keep)),
        original=relation,
        suppressed_rows=suppressed,
        corrected_rows=corrected,
        ignored_entries=ignored,
        missed_entries=tuple(missed),
    )
