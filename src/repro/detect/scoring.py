"""Outlier detectors over the cells of a prepared explanation cube.

Each ``(candidate, t)`` cell of the cube's ``included`` matrix is
compared against its tiered rolling baseline
(:class:`~repro.detect.baselines.TieredBaselines`):

* **z-score** — ``(value - mean) / max(std, floor)`` where the floor is
  the larger of an absolute epsilon and a fraction of the baseline mean,
  so near-constant baselines cannot turn round-off into alarms;
* **ratio** — ``value / mean`` (reported alongside, ``None`` when the
  baseline mean is zero) for the "8x normal volume" reading humans
  reason in.

Severity is graded from the z-score through three configurable
thresholds (``warn`` < ``alert`` < ``critical``); columns whose baseline
abstained (no tier met its minimum-sample rule) are never scored — a
cell with no history is *unknown*, not anomalous.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.exceptions import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cube.datacube import ExplanationCube
    from repro.detect.baselines import TieredBaselines

#: Severity grades, mildest first.
SEVERITIES = ("warn", "alert", "critical")

#: Directions a detector may be restricted to.
DIRECTIONS = ("both", "spike", "drop")


@dataclass(frozen=True)
class DetectConfig:
    """All knobs of the detect subsystem.

    Attributes
    ----------
    dow_windows:
        Day-of-week baseline windows in days, widest first (default
        ``(28, 14)``: up to four same-weekday samples, then up to two).
        Each must be a positive multiple of 7.
    dow_min_samples:
        Minimum same-weekday samples each window needs before it may
        serve as the baseline (default ``(3, 2)`` — the 28-day tier
        tolerates one missing week).
    recency_window:
        The last-resort tier: trailing window in days whose samples are
        the previous days of the *same day class* (weekday vs weekend),
        used when every day-of-week tier is under-sampled (default 4).
    recency_min_samples:
        Minimum samples the recency tier needs; below it the cell
        abstains entirely (default 2).
    z_warn / z_alert / z_critical:
        Ascending absolute z-score thresholds for the severity grades.
    min_deviation:
        Absolute ``|value - mean|`` floor; smaller deviations are never
        anomalous no matter the z-score (default 0.0).
    min_volume:
        Cells where both ``|mean|`` and ``|value|`` are below this are
        skipped — too small to matter (default 0.0).
    std_floor / std_floor_frac:
        The z-score denominator is ``max(std, std_floor,
        std_floor_frac * |mean|)``.  The default absolute floor of 1.0
        (one unit of the measure) keeps a flat-zero baseline from
        turning *any* movement into an unbounded z-score: a cell going
        0 → 3 scores z = 3, not 3e9.
    direction:
        ``"both"``, ``"spike"`` (value above baseline only) or
        ``"drop"``.
    link_top:
        How many explanations to cross-link per anomalous timestamp when
        building a plan (default 3).
    max_cells:
        Cap on reported cells per scan, most severe first; the report
        counts what the cap dropped (default 200).
    """

    dow_windows: tuple[int, ...] = (28, 14)
    dow_min_samples: tuple[int, ...] = (3, 2)
    recency_window: int = 4
    recency_min_samples: int = 2
    z_warn: float = 2.5
    z_alert: float = 3.5
    z_critical: float = 6.0
    min_deviation: float = 0.0
    min_volume: float = 0.0
    std_floor: float = 1.0
    std_floor_frac: float = 0.05
    direction: str = "both"
    link_top: int = 3
    max_cells: int = 200

    def __post_init__(self):
        windows = tuple(self.dow_windows)
        minimums = tuple(self.dow_min_samples)
        object.__setattr__(self, "dow_windows", windows)
        object.__setattr__(self, "dow_min_samples", minimums)
        if len(windows) != len(minimums):
            raise ConfigError(
                f"dow_windows ({len(windows)}) and dow_min_samples "
                f"({len(minimums)}) must pair up"
            )
        for window in windows:
            if window <= 0 or window % 7:
                raise ConfigError(
                    f"day-of-week window {window} must be a positive multiple of 7"
                )
        if list(windows) != sorted(windows, reverse=True):
            raise ConfigError(f"dow_windows {windows} must be widest-first")
        for minimum in minimums + (self.recency_min_samples,):
            if minimum < 1:
                raise ConfigError("minimum-sample rules must be >= 1")
        if self.recency_window < 1:
            raise ConfigError(f"recency_window {self.recency_window} must be >= 1")
        if not 0 < self.z_warn <= self.z_alert <= self.z_critical:
            raise ConfigError(
                "severity thresholds must satisfy 0 < z_warn <= z_alert <= z_critical"
            )
        if self.direction not in DIRECTIONS:
            raise ConfigError(
                f"direction {self.direction!r} must be one of {DIRECTIONS}"
            )
        if self.std_floor <= 0:
            raise ConfigError("std_floor must be positive")
        if self.std_floor_frac < 0 or self.min_deviation < 0 or self.min_volume < 0:
            raise ConfigError("floors must be non-negative")
        if self.max_cells < 1 or self.link_top < 0:
            raise ConfigError("max_cells must be >= 1 and link_top >= 0")

    def updated(self, **overrides) -> "DetectConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    def override(self, **overrides) -> "DetectConfig":
        """:meth:`updated`, but threshold-order preserving.

        Raising only a lower tier ("report z >= 6") must not trip the
        ordering check against the un-overridden tiers above it, so
        those are lifted along; explicitly passed values always win and
        still go through the full validation.
        """
        if "z_warn" in overrides:
            warn = overrides["z_warn"]
            overrides.setdefault("z_alert", max(warn, self.z_alert))
            overrides.setdefault("z_critical", max(warn, self.z_critical))
        if "z_alert" in overrides:
            alert = overrides["z_alert"]
            overrides.setdefault("z_critical", max(alert, self.z_critical))
        return self.updated(**overrides)


def severity_of(z: float, config: DetectConfig) -> str | None:
    """The severity grade for an absolute z-score, ``None`` below warn."""
    magnitude = abs(z)
    if magnitude >= config.z_critical:
        return "critical"
    if magnitude >= config.z_alert:
        return "alert"
    if magnitude >= config.z_warn:
        return "warn"
    return None


@dataclass(frozen=True)
class CellScore:
    """One anomalous ``(candidate, timestamp)`` cell with its evidence."""

    candidate: int
    explanation: str
    items: tuple[tuple[str, object], ...]
    position: int
    label: str
    value: float
    baseline_mean: float
    baseline_std: float
    window_days: int
    samples: int
    z: float
    ratio: float | None
    severity: str
    direction: str

    def describe(self) -> str:
        """One human-readable line (the CLI table row)."""
        ratio = f" ({self.ratio:.2f}x)" if self.ratio is not None else ""
        return (
            f"{self.severity:<8s} z={self.z:+8.2f}{ratio}  "
            f"{self.explanation} @ {self.label}  "
            f"value={self.value:g} baseline={self.baseline_mean:g}"
            f"±{self.baseline_std:g} [{self.window_days}d, "
            f"n={self.samples}]"
        )

    def to_json(self) -> dict:
        return {
            "candidate": self.candidate,
            "explanation": self.explanation,
            "items": [[name, value] for name, value in self.items],
            "position": self.position,
            "label": self.label,
            "value": self.value,
            "baseline_mean": self.baseline_mean,
            "baseline_std": self.baseline_std,
            "window_days": self.window_days,
            "samples": self.samples,
            "z": self.z,
            "ratio": self.ratio,
            "severity": self.severity,
            "direction": self.direction,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CellScore":
        return cls(
            candidate=int(payload["candidate"]),
            explanation=payload["explanation"],
            items=tuple((name, value) for name, value in payload["items"]),
            position=int(payload["position"]),
            label=payload["label"],
            value=float(payload["value"]),
            baseline_mean=float(payload["baseline_mean"]),
            baseline_std=float(payload["baseline_std"]),
            window_days=int(payload["window_days"]),
            samples=int(payload["samples"]),
            z=float(payload["z"]),
            ratio=None if payload["ratio"] is None else float(payload["ratio"]),
            severity=payload["severity"],
            direction=payload["direction"],
        )


@dataclass(frozen=True)
class AnomalyReport:
    """The outcome of scoring a set of cube columns."""

    cells: tuple[CellScore, ...]
    columns_scored: int
    columns_abstained: int
    cells_scored: int
    truncated: int

    def counts(self) -> dict[str, int]:
        """``{severity: count}`` over the reported cells."""
        counts = {severity: 0 for severity in SEVERITIES}
        for cell in self.cells:
            counts[cell.severity] += 1
        return counts

    def to_json(self) -> dict:
        return {
            "columns_scored": self.columns_scored,
            "columns_abstained": self.columns_abstained,
            "cells_scored": self.cells_scored,
            "truncated": self.truncated,
            "counts": self.counts(),
            "anomalies": [cell.to_json() for cell in self.cells],
        }


def score_columns(
    cube: "ExplanationCube",
    baselines: "TieredBaselines",
    config: DetectConfig,
    columns: Sequence[int] | np.ndarray | None = None,
) -> AnomalyReport:
    """Score the given cube columns (default: all) against the baselines.

    Vectorized over the whole ``(candidate, column)`` block: one z matrix,
    one severity mask.  Columns whose baseline tier abstained contribute
    ``columns_abstained`` and are never scored.
    """
    values = cube.included_values
    if columns is None:
        columns = np.arange(cube.n_times, dtype=np.intp)
    else:
        columns = np.asarray(columns, dtype=np.intp)
    active = columns[baselines.tier[columns] > 0] if columns.size else columns
    abstained = int(columns.size - active.size)
    if active.size == 0 or values.shape[0] == 0:
        return AnomalyReport(
            cells=(),
            columns_scored=0,
            columns_abstained=abstained,
            cells_scored=0,
            truncated=0,
        )

    block = values[:, active]
    mean = baselines.mean[:, active]
    std = baselines.std[:, active]
    floor = np.maximum(config.std_floor, config.std_floor_frac * np.abs(mean))
    z = (block - mean) / np.maximum(std, floor)
    deviation = block - mean

    anomalous = np.abs(z) >= config.z_warn
    if config.min_deviation > 0:
        anomalous &= np.abs(deviation) >= config.min_deviation
    if config.min_volume > 0:
        anomalous &= (np.abs(mean) >= config.min_volume) | (
            np.abs(block) >= config.min_volume
        )
    if config.direction == "spike":
        anomalous &= deviation > 0
    elif config.direction == "drop":
        anomalous &= deviation < 0

    rows, cols = np.nonzero(anomalous)
    order = np.argsort(-np.abs(z[rows, cols]), kind="stable")
    truncated = max(0, order.size - config.max_cells)
    order = order[: config.max_cells]

    explanations = cube.explanations
    labels = cube.labels
    cells = []
    for row, col in zip(rows[order], cols[order]):
        position = int(active[col])
        cell_mean = float(mean[row, col])
        cell_value = float(block[row, col])
        conjunction = explanations[row]
        cells.append(
            CellScore(
                candidate=int(row),
                explanation=repr(conjunction),
                items=tuple(conjunction.items),
                position=position,
                label=str(labels[position]),
                value=cell_value,
                baseline_mean=cell_mean,
                baseline_std=float(std[row, col]),
                window_days=int(baselines.tier[position]),
                samples=int(baselines.samples[position]),
                z=float(z[row, col]),
                ratio=(cell_value / cell_mean) if cell_mean != 0 else None,
                severity=severity_of(float(z[row, col]), config),
                direction="spike" if float(deviation[row, col]) > 0 else "drop",
            )
        )
    return AnomalyReport(
        cells=tuple(cells),
        columns_scored=int(active.size),
        columns_abstained=abstained,
        cells_scored=int(block.size),
        truncated=truncated,
    )
