"""The stateful detect tier riding on a prepared explain session.

:class:`DetectSession` owns the glue: one
:class:`~repro.core.session.ExplainSession` (the prepared cube and the
explanation machinery), one
:class:`~repro.detect.baselines.TieredBaselines` bound to its cube, and
the counters the serving tier reports.  ``scan`` scores the whole axis;
``append`` feeds a delta through the session's O(delta) cube append,
advances the baselines over exactly the recomputed columns, and scores
only those — the monitoring loop (`repro detect follow`, the `/detect`
endpoint behind a streaming ingest) never rescans history.

Anomalies cross-link back into the explanation machinery: ``plan``
attaches the top explanations of the one-step window ending at each
anomalous timestamp
(:meth:`~repro.core.session.ExplainSession.top_explanations` — an
O(epsilon) gather against the already-prepared cube), so a reviewer
sees *which contributors moved* next to every flagged cell.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from repro.core.session import ExplainSession
from repro.detect.baselines import TieredBaselines
from repro.detect.scoring import AnomalyReport, CellScore, DetectConfig, score_columns
from repro.detect.suppression import SuppressionPlan, build_plan
from repro.exceptions import ReproError
from repro.obs.metrics import get_registry as _get_metrics
from repro.obs.trace import span
from repro.relation.table import Relation


@dataclass(frozen=True)
class DetectUpdate:
    """What one :meth:`DetectSession.append` did."""

    n_rows: int
    recomputed_columns: int
    report: AnomalyReport

    @property
    def is_noop(self) -> bool:
        return self.n_rows == 0


class DetectSession:
    """Continuous anomaly scoring over one explain session.

    Thread-safe: the serving tier scans from its query pool while a
    streaming ingest appends.  Scans accept a one-off ``config`` whose
    *threshold* fields differ from the session's; the baseline-shaping
    fields (windows, minimum samples) are fixed at construction — they
    are baked into the baseline state.
    """

    def __init__(
        self,
        session: ExplainSession,
        config: DetectConfig | None = None,
    ):
        self._session = session
        self._config = config or DetectConfig()
        session.prepare()
        self._baselines = TieredBaselines(session.cube, self._config)
        self._lock = threading.RLock()
        self._scans = 0
        self._appends = 0
        self._cells_scored = 0
        self._anomalies = 0
        self._last_scan_seconds = 0.0

    @classmethod
    def from_dataset(
        cls,
        name: str,
        config=None,
        detect: DetectConfig | None = None,
    ) -> "DetectSession":
        """A detect session over a bundled dataset (tests, examples)."""
        from repro.core.config import ExplainConfig
        from repro.datasets.registry import load_dataset

        dataset = load_dataset(name)
        session = ExplainSession(
            dataset.relation,
            measure=dataset.measure,
            explain_by=dataset.explain_by,
            aggregate=dataset.aggregate,
            config=config or ExplainConfig.optimized(),
        )
        return cls(session, config=detect)

    # ------------------------------------------------------------------
    @property
    def session(self) -> ExplainSession:
        return self._session

    @property
    def config(self) -> DetectConfig:
        return self._config

    @property
    def baselines(self) -> TieredBaselines:
        return self._baselines

    # ------------------------------------------------------------------
    def scan(
        self,
        config: DetectConfig | None = None,
        columns: Sequence[int] | np.ndarray | None = None,
    ) -> AnomalyReport:
        """Score the given columns (default: the whole time axis)."""
        with span("detect-scan"), self._lock:
            started = time.perf_counter()
            report = score_columns(
                self._session.cube,
                self._baselines,
                config or self._config,
                columns=columns,
            )
            self._last_scan_seconds = time.perf_counter() - started
            self._scans += 1
            self._cells_scored += report.cells_scored
            self._anomalies += len(report.cells)
        metrics = _get_metrics()
        metrics.counter(
            "repro_detect_scans_total", "Detect tier scans executed"
        ).inc()
        metrics.counter(
            "repro_detect_cells_scored_total", "Cube cells scored by the detect tier"
        ).inc(report.cells_scored)
        metrics.counter(
            "repro_detect_anomalies_total", "Anomalous cells surfaced by scans"
        ).inc(len(report.cells))
        return report

    def append(self, delta: Relation) -> DetectUpdate:
        """Absorb a delta and score exactly the columns it touched.

        Rides :meth:`ExplainSession.append`: the cube absorbs the delta
        in O(delta) and the returned
        :class:`~repro.cube.delta.AppendInfo` drives
        :meth:`TieredBaselines.advance`.  When the session could not
        append in place (unprepared, or a cube without its ledger) the
        baselines rebuild over the re-prepared cube and the whole axis
        is rescored — correct, just not incremental.
        """
        with self._lock:
            info = self._session.append(delta)
            if info is None:
                self._session.prepare()
                self._baselines = TieredBaselines(self._session.cube, self._config)
                recomputed = np.arange(self._baselines.n_times, dtype=np.intp)
            else:
                recomputed = self._baselines.advance(info)
            self._appends += 1
            if recomputed.size == 0:
                report = AnomalyReport(
                    cells=(),
                    columns_scored=0,
                    columns_abstained=0,
                    cells_scored=0,
                    truncated=0,
                )
                return DetectUpdate(
                    n_rows=delta.n_rows, recomputed_columns=0, report=report
                )
            report = self.scan(columns=recomputed)
            return DetectUpdate(
                n_rows=delta.n_rows,
                recomputed_columns=int(recomputed.size),
                report=report,
            )

    # ------------------------------------------------------------------
    def plan(
        self,
        report: AnomalyReport | None = None,
        link: bool = True,
        source: str = "",
    ) -> SuppressionPlan:
        """Group a report (default: a fresh full scan) into a plan.

        With ``link`` (default), each anomalous timestamp carries the
        top explanations of the window ending there — the reviewer sees
        the same contributors the explain path would surface.
        """
        if report is None:
            report = self.scan()
        links = self._link_explanations(report.cells) if link else {}
        session = self._session
        return build_plan(
            report.cells,
            measure=session.measure,
            time_attr=session.time_attr,
            aggregate=session.aggregate,
            explain_by=session.explain_by,
            source=source,
            links=links,
        )

    def _link_explanations(
        self, cells: Sequence[CellScore]
    ) -> dict[int, tuple[str, ...]]:
        """Top explanations for the one-step window at each anomalous
        position, computed once per distinct timestamp."""
        quota = self._config.link_top
        if quota == 0:
            return {}
        labels = self._session.cube.labels
        links: dict[int, tuple[str, ...]] = {}
        for position in sorted({cell.position for cell in cells}):
            window = _window_for(labels, position)
            if window is None:
                continue
            try:
                scored = self._session.top_explanations(*window, m=quota)
            except ReproError:
                continue
            links[position] = tuple(repr(s.explanation) for s in scored)
        return links

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counters for the serving tier's ``/stats`` payload."""
        with self._lock:
            baselines = self._baselines
            served = int(np.count_nonzero(baselines.tier))
            return {
                "scans": self._scans,
                "appends": self._appends,
                "cells_scored": self._cells_scored,
                "anomalies": self._anomalies,
                "columns": baselines.n_times,
                "columns_abstaining": baselines.n_times - served,
                "calendar_mode": baselines.calendar_mode,
                "last_scan_seconds": round(self._last_scan_seconds, 6),
            }

    def __repr__(self) -> str:
        return (
            f"DetectSession({self._session.measure!r}, "
            f"scans={self._scans}, appends={self._appends}, "
            f"anomalies={self._anomalies})"
        )


def _window_for(
    labels: Sequence[Hashable], position: int
) -> tuple[Hashable, Hashable] | None:
    """The one-step window ending at ``position`` (starting there, for
    the first point); ``None`` when the axis has a single point."""
    if len(labels) < 2:
        return None
    if position == 0:
        return labels[0], labels[1]
    return labels[position - 1], labels[position]
