"""Streaming anomaly detection over prepared explanation cubes.

The monitoring workload on top of the reproduction: every ``(candidate,
timestamp)`` cell of a prepared :class:`~repro.cube.datacube.ExplanationCube`
is scored against a *tiered day-of-week rolling baseline* (28-day →
14-day → 4-day window fallback with minimum-sample rules and a
weekday/weekend split), anomalous cells are graded into severity tiers,
and the result is grouped into a reviewable :class:`SuppressionPlan`
whose suppress/correct recommendations can be applied to (and rolled
back from) the underlying relation — the corrected relation feeds
straight back into the explain path.

:class:`DetectSession` rides on
:meth:`~repro.core.session.ExplainSession.append`: each delta advances
the baselines in O(delta) (:class:`TieredBaselines.advance`) and scores
only the recomputed columns, so ``repro detect follow`` keeps pace with
a tailed CSV without rescanning history.
"""

from repro.detect.baselines import SlotCalendar, TieredBaselines
from repro.detect.scoring import (
    AnomalyReport,
    CellScore,
    DetectConfig,
    score_columns,
    severity_of,
)
from repro.detect.session import DetectSession, DetectUpdate
from repro.detect.suppression import (
    AppliedPlan,
    PlanEntry,
    SuppressionPlan,
    apply_plan,
    build_plan,
    recommend_action,
)

__all__ = [
    "AnomalyReport",
    "AppliedPlan",
    "CellScore",
    "DetectConfig",
    "DetectSession",
    "DetectUpdate",
    "PlanEntry",
    "SlotCalendar",
    "SuppressionPlan",
    "TieredBaselines",
    "apply_plan",
    "build_plan",
    "recommend_action",
    "score_columns",
    "severity_of",
]
