"""repro — a faithful reproduction of TSExplain (ICDE 2023).

TSExplain explains an aggregated time series by segmenting it into periods
with *consistent top contributors* and reporting each period's top-m
non-overlapping explanations.  See ``README.md`` for a tour and
``docs/ARCHITECTURE.md`` for the module map, the two-tier
prepare/run design and the rollup-cache invalidation contract.
"""

from repro.core.config import ExplainConfig
from repro.core.engine import TSExplain
from repro.core.result import ExplainResult, SegmentExplanation
from repro.core.session import ExplainQuery, ExplainSession
from repro.exceptions import ReproError
from repro.relation.table import Relation
from repro.relation.timeseries import TimeSeries

__version__ = "1.7.0"

__all__ = [
    "ExplainConfig",
    "ExplainQuery",
    "ExplainResult",
    "ExplainSession",
    "Relation",
    "ReproError",
    "SegmentExplanation",
    "TSExplain",
    "TimeSeries",
    "__version__",
]
