"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation schema is malformed or an attribute reference is invalid."""


class QueryError(ReproError):
    """A relational operation received invalid arguments."""


class BackfillError(QueryError):
    """A cube append tried to back-fill a new timestamp into history.

    The delta-maintenance time-axis contract (:mod:`repro.cube.delta`)
    only lets appends revisit existing labels or extend the axis; a *new*
    label sorting before the cube's last one raises this.  It is the one
    error the out-of-core chunked build treats as "this source's chunk
    order is unsafe, degrade to a one-shot build" — every other
    :class:`QueryError` propagates."""


class AggregateError(ReproError):
    """An aggregate function was used in an unsupported way.

    The most common cause is asking a non-subtractable aggregate (``MIN``,
    ``MAX``) to compute ``f(R - sigma_E R)`` by state subtraction, which the
    data cube requires (paper section 5.2, "most aggregate functions are
    decomposable").
    """


class ExplanationError(ReproError):
    """Candidate-explanation enumeration or scoring failed."""


class SegmentationError(ReproError):
    """K-segmentation received an infeasible configuration.

    Examples: ``K`` larger than the number of unit objects, a maximum
    segment length that cannot cover the series, or an empty time series.
    """


class ConfigError(ReproError):
    """An :class:`repro.core.config.ExplainConfig` value is out of range."""
