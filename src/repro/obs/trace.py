"""Contextvar-based request tracing with nested phase spans.

A request handler opens a root trace (:func:`start_trace`); any code it
calls — directly, or via the scheduler's pool threads when the caller
copies its :mod:`contextvars` context — can annotate a phase with
:func:`span` without plumbing a tracer argument through the stack:

    with start_trace("/explain") as trace:
        ...
        with span("cube-build"):
            ...

Spans nest: a ``span`` opened inside another records the outer span as
its parent, producing a tree rooted at span id 0 (the request itself).
Phases whose duration was measured elsewhere (the scheduler's queue
wait, which elapses *before* the pool thread runs) are attached
post-hoc with :func:`record_span`.

Sampling is decided at the root: an unsampled trace still carries a
trace id (so every response can return ``X-Repro-Trace-Id``) but its
spans are dropped at entry, making ``span()`` in deep layers nearly
free.  Sampled traces are serialized by :class:`JsonLinesExporter` as
one JSON object per line, with size-based rotation (the current file
plus one ``.1`` predecessor) so a long-running server cannot fill the
disk with trace exports.

Besides the contextvar (which only the *owning* context can read), the
tracer maintains a process-wide **active-span map** — ``{thread id:
(trace, innermost open span)}`` — updated on every sampled span entry
and exit.  That map is the join surface for the sampling profiler
(:mod:`repro.obs.profile`): a sampler walking
``sys._current_frames()`` from its own thread looks up each sampled
thread's current phase with :func:`active_phases` and attributes the
stack to it.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

#: (Trace, parent span id) for the code currently executing, or None.
_CURRENT: contextvars.ContextVar[tuple["Trace", int] | None] = contextvars.ContextVar(
    "repro_obs_trace", default=None
)

#: {thread id: (trace, innermost open span)} for *sampled* traces — the
#: profiler's join surface.  Guarded by its own lock: entries are written
#: by the thread they describe (span enter/exit) and read wholesale by a
#: profiler thread mid-sample.
_ACTIVE_LOCK = threading.Lock()
_ACTIVE: dict[int, tuple["Trace", "Span"]] = {}


def _activate(trace: "Trace", span: "Span") -> tuple["Trace", "Span"] | None:
    """Mark ``span`` as this thread's innermost; returns the previous entry."""
    ident = threading.get_ident()
    with _ACTIVE_LOCK:
        previous = _ACTIVE.get(ident)
        _ACTIVE[ident] = (trace, span)
    return previous


def _deactivate(previous: tuple["Trace", "Span"] | None) -> None:
    """Restore the thread's previous innermost span (or clear it)."""
    ident = threading.get_ident()
    with _ACTIVE_LOCK:
        if previous is None:
            _ACTIVE.pop(ident, None)
        else:
            _ACTIVE[ident] = previous


def active_phases() -> dict[int, tuple[str, str]]:
    """``{thread id: (trace id, innermost span name)}`` right now.

    The snapshot a sampling profiler joins its ``sys._current_frames()``
    walk against: a thread inside ``span("cube-build")`` maps to
    ``(trace_id, "cube-build")``; a thread that only opened the root
    trace maps to the request name.  Threads with no sampled trace are
    absent (the profiler buckets them as untraced).
    """
    with _ACTIVE_LOCK:
        return {
            ident: (trace.trace_id, span.name)
            for ident, (trace, span) in _ACTIVE.items()
        }


class Span:
    """One timed phase inside a trace."""

    __slots__ = ("span_id", "parent_id", "name", "start", "duration")

    def __init__(self, span_id: int, parent_id: int | None, name: str, start: float):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.duration: float | None = None


class Trace:
    """A request-scoped span tree; append-safe from pool threads."""

    def __init__(self, name: str, sampled: bool = True):
        self.trace_id = uuid.uuid4().hex[:16]
        self.name = name
        self.sampled = sampled
        self.started_unix = time.time()
        self._started_perf = time.perf_counter()
        self._lock = threading.Lock()
        self._next_id = 1
        self.root = Span(0, None, name, 0.0)
        self.spans: list[Span] = [self.root]

    def begin_span(self, name: str, parent_id: int) -> Span:
        now = time.perf_counter() - self._started_perf
        with self._lock:
            span = Span(self._next_id, parent_id, name, now)
            self._next_id += 1
            self.spans.append(span)
        return span

    def end_span(self, span: Span) -> None:
        span.duration = (time.perf_counter() - self._started_perf) - span.start

    def attach_span(self, name: str, seconds: float, parent_id: int) -> Span:
        """Attach a phase measured elsewhere, ending now."""
        end = time.perf_counter() - self._started_perf
        with self._lock:
            span = Span(self._next_id, parent_id, name, max(0.0, end - seconds))
            span.duration = seconds
            self._next_id += 1
            self.spans.append(span)
        return span

    def finish(self) -> None:
        self.root.duration = time.perf_counter() - self._started_perf

    @property
    def duration_seconds(self) -> float:
        if self.root.duration is None:
            return time.perf_counter() - self._started_perf
        return self.root.duration

    def to_dict(self) -> dict:
        with self._lock:
            spans = [
                {
                    "id": span.span_id,
                    "parent": span.parent_id,
                    "name": span.name,
                    "start_ms": round(span.start * 1000.0, 3),
                    "duration_ms": (
                        round(span.duration * 1000.0, 3)
                        if span.duration is not None
                        else None
                    ),
                }
                for span in self.spans
            ]
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "time_unix": self.started_unix,
            "pid": os.getpid(),
            "duration_ms": round(self.duration_seconds * 1000.0, 3),
            "spans": spans,
        }


@contextmanager
def start_trace(name: str, sampled: bool = True) -> Iterator[Trace]:
    """Open a root trace for the enclosed request."""
    trace = Trace(name, sampled=sampled)
    token = _CURRENT.set((trace, 0))
    previous = _activate(trace, trace.root) if sampled else None
    try:
        yield trace
    finally:
        trace.finish()
        if sampled:
            _deactivate(previous)
        _CURRENT.reset(token)


@contextmanager
def span(name: str) -> Iterator[Span | None]:
    """Time a phase under the current trace; no-op without one.

    Unsampled traces skip span bookkeeping entirely, so instrumented
    deep layers cost two contextvar reads when tracing is off.
    """
    current = _CURRENT.get()
    if current is None or not current[0].sampled:
        yield None
        return
    trace, parent_id = current
    entry = trace.begin_span(name, parent_id)
    token = _CURRENT.set((trace, entry.span_id))
    previous = _activate(trace, entry)
    try:
        yield entry
    finally:
        trace.end_span(entry)
        _deactivate(previous)
        _CURRENT.reset(token)


def record_span(name: str, seconds: float) -> Span | None:
    """Attach an already-measured phase to the current trace."""
    current = _CURRENT.get()
    if current is None or not current[0].sampled:
        return None
    trace, parent_id = current
    return trace.attach_span(name, seconds, parent_id)


def current_trace() -> Trace | None:
    current = _CURRENT.get()
    return current[0] if current is not None else None


def current_trace_id() -> str | None:
    trace = current_trace()
    return trace.trace_id if trace is not None else None


#: Default rotation threshold for JSON-lines observability files (trace
#: exports, slow-query profiles).  At most ``2 * max_bytes`` survives on
#: disk per file: the current file plus its one ``.1`` predecessor.
DEFAULT_EXPORT_MAX_BYTES = 8 * 1024 * 1024


def rotated_path(path: Path) -> Path:
    """Where a rotated-out JSON-lines file lands (``<name>.1``)."""
    return path.with_name(path.name + ".1")


def append_jsonl_rotating(path: Path, line: str, max_bytes: int) -> None:
    """Append one line to ``path``, rotating to ``<name>.1`` at the cap.

    Rotation happens *before* a write that would push the file past
    ``max_bytes``: the current file replaces the previous ``.1`` (which
    is dropped) and the line starts a fresh file — disk usage per export
    stream is bounded at roughly twice the cap, forever.  Callers
    serialize writes with their own lock.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    if max_bytes > 0:
        try:
            size = path.stat().st_size
        except OSError:
            size = 0
        if size and size + len(line) + 1 > max_bytes:
            os.replace(path, rotated_path(path))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")


class JsonLinesExporter:
    """Append sampled traces to a JSON-lines file (one object per line).

    The file rotates at ``max_bytes``: the current export plus one
    ``.1`` predecessor are kept, older traces are dropped — a
    long-running server's trace export is disk-bounded by construction.
    """

    def __init__(self, path: str | Path, max_bytes: int = DEFAULT_EXPORT_MAX_BYTES):
        self._path = Path(path).expanduser()
        self._max_bytes = int(max_bytes)
        self._lock = threading.Lock()

    @property
    def path(self) -> Path:
        return self._path

    @property
    def rotated(self) -> Path:
        """Where rotated-out traces land (may not exist yet)."""
        return rotated_path(self._path)

    def export(self, trace: Trace) -> bool:
        if not trace.sampled:
            return False
        line = json.dumps(trace.to_dict(), separators=(",", ":"))
        with self._lock:
            append_jsonl_rotating(self._path, line, self._max_bytes)
        return True

    @staticmethod
    def read(path: str | Path) -> list[dict]:
        """Every well-formed trace line in ``path`` (skips torn writes)."""
        traces: list[dict] = []
        try:
            text = Path(path).expanduser().read_text(encoding="utf-8")
        except OSError:
            return traces
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                continue
            if isinstance(payload, dict) and "trace_id" in payload:
                traces.append(payload)
        return traces
