"""Contextvar-based request tracing with nested phase spans.

A request handler opens a root trace (:func:`start_trace`); any code it
calls — directly, or via the scheduler's pool threads when the caller
copies its :mod:`contextvars` context — can annotate a phase with
:func:`span` without plumbing a tracer argument through the stack:

    with start_trace("/explain") as trace:
        ...
        with span("cube-build"):
            ...

Spans nest: a ``span`` opened inside another records the outer span as
its parent, producing a tree rooted at span id 0 (the request itself).
Phases whose duration was measured elsewhere (the scheduler's queue
wait, which elapses *before* the pool thread runs) are attached
post-hoc with :func:`record_span`.

Sampling is decided at the root: an unsampled trace still carries a
trace id (so every response can return ``X-Repro-Trace-Id``) but its
spans are dropped at entry, making ``span()`` in deep layers nearly
free.  Sampled traces are serialized by :class:`JsonLinesExporter` as
one JSON object per line.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

#: (Trace, parent span id) for the code currently executing, or None.
_CURRENT: contextvars.ContextVar[tuple["Trace", int] | None] = contextvars.ContextVar(
    "repro_obs_trace", default=None
)


class Span:
    """One timed phase inside a trace."""

    __slots__ = ("span_id", "parent_id", "name", "start", "duration")

    def __init__(self, span_id: int, parent_id: int | None, name: str, start: float):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.duration: float | None = None


class Trace:
    """A request-scoped span tree; append-safe from pool threads."""

    def __init__(self, name: str, sampled: bool = True):
        self.trace_id = uuid.uuid4().hex[:16]
        self.name = name
        self.sampled = sampled
        self.started_unix = time.time()
        self._started_perf = time.perf_counter()
        self._lock = threading.Lock()
        self._next_id = 1
        self.root = Span(0, None, name, 0.0)
        self.spans: list[Span] = [self.root]

    def begin_span(self, name: str, parent_id: int) -> Span:
        now = time.perf_counter() - self._started_perf
        with self._lock:
            span = Span(self._next_id, parent_id, name, now)
            self._next_id += 1
            self.spans.append(span)
        return span

    def end_span(self, span: Span) -> None:
        span.duration = (time.perf_counter() - self._started_perf) - span.start

    def attach_span(self, name: str, seconds: float, parent_id: int) -> Span:
        """Attach a phase measured elsewhere, ending now."""
        end = time.perf_counter() - self._started_perf
        with self._lock:
            span = Span(self._next_id, parent_id, name, max(0.0, end - seconds))
            span.duration = seconds
            self._next_id += 1
            self.spans.append(span)
        return span

    def finish(self) -> None:
        self.root.duration = time.perf_counter() - self._started_perf

    @property
    def duration_seconds(self) -> float:
        if self.root.duration is None:
            return time.perf_counter() - self._started_perf
        return self.root.duration

    def to_dict(self) -> dict:
        with self._lock:
            spans = [
                {
                    "id": span.span_id,
                    "parent": span.parent_id,
                    "name": span.name,
                    "start_ms": round(span.start * 1000.0, 3),
                    "duration_ms": (
                        round(span.duration * 1000.0, 3)
                        if span.duration is not None
                        else None
                    ),
                }
                for span in self.spans
            ]
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "time_unix": self.started_unix,
            "pid": os.getpid(),
            "duration_ms": round(self.duration_seconds * 1000.0, 3),
            "spans": spans,
        }


@contextmanager
def start_trace(name: str, sampled: bool = True) -> Iterator[Trace]:
    """Open a root trace for the enclosed request."""
    trace = Trace(name, sampled=sampled)
    token = _CURRENT.set((trace, 0))
    try:
        yield trace
    finally:
        trace.finish()
        _CURRENT.reset(token)


@contextmanager
def span(name: str) -> Iterator[Span | None]:
    """Time a phase under the current trace; no-op without one.

    Unsampled traces skip span bookkeeping entirely, so instrumented
    deep layers cost two contextvar reads when tracing is off.
    """
    current = _CURRENT.get()
    if current is None or not current[0].sampled:
        yield None
        return
    trace, parent_id = current
    entry = trace.begin_span(name, parent_id)
    token = _CURRENT.set((trace, entry.span_id))
    try:
        yield entry
    finally:
        trace.end_span(entry)
        _CURRENT.reset(token)


def record_span(name: str, seconds: float) -> Span | None:
    """Attach an already-measured phase to the current trace."""
    current = _CURRENT.get()
    if current is None or not current[0].sampled:
        return None
    trace, parent_id = current
    return trace.attach_span(name, seconds, parent_id)


def current_trace() -> Trace | None:
    current = _CURRENT.get()
    return current[0] if current is not None else None


def current_trace_id() -> str | None:
    trace = current_trace()
    return trace.trace_id if trace is not None else None


class JsonLinesExporter:
    """Append sampled traces to a JSON-lines file (one object per line)."""

    def __init__(self, path: str | Path):
        self._path = Path(path).expanduser()
        self._lock = threading.Lock()

    @property
    def path(self) -> Path:
        return self._path

    def export(self, trace: Trace) -> bool:
        if not trace.sampled:
            return False
        line = json.dumps(trace.to_dict(), separators=(",", ":"))
        with self._lock:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            with open(self._path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        return True

    @staticmethod
    def read(path: str | Path) -> list[dict]:
        """Every well-formed trace line in ``path`` (skips torn writes)."""
        traces: list[dict] = []
        try:
            text = Path(path).expanduser().read_text(encoding="utf-8")
        except OSError:
            return traces
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                continue
            if isinstance(payload, dict) and "trace_id" in payload:
                traces.append(payload)
        return traces
