"""BENCH trajectory schema and the perf-regression gate.

Every ``benchmarks/BENCH_*.json`` file is an **append-mode trajectory**:
a JSON list of run records, newest last, each carrying ``bench`` (the
driver's name), ``scale``, and ``git_rev`` alongside its numbers
(``benchmarks/support.append_run`` appends and migrates legacy
single-dict files in place).  Nothing used to read those trajectories
back — a perf regression shipped silently.  This module closes the
loop:

* :func:`flatten` turns one record into ``{dotted.metric: value}``
  leaves (``warm.routed_p95_ms``, ``sweep.0.throughput_rps``);
* :func:`metric_direction` classifies each leaf by name — latency-like
  (``*_ms``, ``*_seconds``, ``p50/p95/p99``) is lower-better,
  throughput-like (``*speedup*``, ``*_per_second``, ``*_rps``) is
  higher-better, anything else (row counts, byte sizes) is ignored;
* :func:`check_trajectory` compares the newest record's directional
  metrics against the **rolling median** of up to ``window`` prior
  records of the same ``(bench, scale)`` group and reports a
  :class:`Regression` for every metric outside tolerance.

``repro bench check`` runs this over the checked-in trajectories and
exits non-zero naming each offending metric; CI runs it right after the
bench smokes so the freshly appended record is gated against history.

The default tolerance is deliberately generous (``3.0``×): bench
records come from whatever machine ran the PR, and cross-machine noise
on millisecond latencies is huge.  The gate is a tripwire for
order-of-magnitude mistakes — an accidentally quadratic loop, a lost
cache — not a microbenchmark referee.  Metrics whose baseline sits
below a floor (default 1 ms) are skipped entirely: at that scale the
measurement is scheduler jitter, not signal.
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path

from repro.exceptions import QueryError

#: Default regression tolerance: newest may be up to this multiple worse
#: than the rolling median before the gate trips.
DEFAULT_TOLERANCE = 3.0

#: How many prior records (per bench/scale group) the rolling median sees.
DEFAULT_WINDOW = 5

#: Minimum prior records required before the gate compares at all.
DEFAULT_MIN_HISTORY = 1

#: Latency metrics with a baseline below this many milliseconds are
#: skipped: sub-millisecond numbers are timer jitter, not trajectory.
DEFAULT_MIN_LATENCY_MS = 1.0

#: Record keys that are identity/metadata, never metrics.
META_KEYS = frozenset(("bench", "scale", "git_rev", "ts", "time_unix", "label"))

_LOWER_SUFFIXES = ("_ms", "_seconds", "_sec", "_ns", "_us")
_HIGHER_SUFFIXES = ("_per_second", "_per_sec", "_rps", "_qps", "_hz")


def metric_direction(name: str) -> str | None:
    """``"lower"`` / ``"higher"`` / ``None`` for one flattened metric name.

    Classification is by the *leaf* segment of the dotted name, so
    ``warm.routed_p95_ms`` is judged as ``routed_p95_ms``.
    """
    leaf = name.rsplit(".", 1)[-1].lower()
    if "speedup" in leaf:
        return "higher"
    for suffix in _HIGHER_SUFFIXES:
        if leaf.endswith(suffix) or leaf == suffix.lstrip("_"):
            return "higher"
    for suffix in _LOWER_SUFFIXES:
        if leaf.endswith(suffix):
            return "lower"
    return None


def flatten(record: dict, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of one record as ``{dotted.name: value}``.

    Nested dicts join with ``.``; lists of dicts flatten by index
    (``sweep.0.p50_ms``) so sweep-style sub-records stay comparable
    across runs with the same shape.  Booleans, strings, metadata keys,
    and lists of scalars are not metrics and are dropped.
    """
    flat: dict[str, float] = {}
    for key, value in record.items():
        if not prefix and key in META_KEYS:
            continue
        name = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            flat[name] = float(value)
        elif isinstance(value, dict):
            flat.update(flatten(value, prefix=f"{name}."))
        elif isinstance(value, list):
            for index, item in enumerate(value):
                if isinstance(item, dict):
                    flat.update(flatten(item, prefix=f"{name}.{index}."))
    return flat


def load_trajectory(path: str | Path) -> list[dict]:
    """Records of one BENCH file, oldest first.

    Accepts both the trajectory (list) schema and a legacy single-dict
    file, which loads as a one-record trajectory — the gate then simply
    has no history for it yet.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(payload, dict):
        return [payload]
    if isinstance(payload, list):
        return [record for record in payload if isinstance(record, dict)]
    raise QueryError(f"{path}: expected a JSON list or object, got {type(payload).__name__}")


def _group_key(record: dict) -> tuple[str, str]:
    return (str(record.get("bench", "")), str(record.get("scale", "")))


def _floor_for(name: str, min_latency_ms: float) -> float:
    leaf = name.rsplit(".", 1)[-1].lower()
    if leaf.endswith("_ms"):
        return min_latency_ms
    if leaf.endswith(("_seconds", "_sec")):
        return min_latency_ms / 1000.0
    return 0.0


class Regression:
    """One metric of the newest record outside its tolerance band."""

    __slots__ = ("metric", "direction", "newest", "baseline", "history", "bench", "scale")

    def __init__(self, metric, direction, newest, baseline, history, bench, scale):
        self.metric = metric
        self.direction = direction
        self.newest = newest
        self.baseline = baseline
        self.history = history
        self.bench = bench
        self.scale = scale

    @property
    def ratio(self) -> float:
        """How many times worse than baseline (always >= 1 for a failure)."""
        if self.direction == "lower":
            return self.newest / self.baseline if self.baseline else float("inf")
        return self.baseline / self.newest if self.newest else float("inf")

    def message(self) -> str:
        verb = "slower" if self.direction == "lower" else "worse"
        return (
            f"{self.metric}: {self.newest:g} vs rolling median {self.baseline:g} "
            f"({self.ratio:.2f}x {verb}, n={self.history})"
        )


class TrajectoryCheck:
    """Outcome of gating one trajectory's newest record."""

    def __init__(self, name, bench, scale, compared, skipped, history, regressions):
        self.name = name
        self.bench = bench
        self.scale = scale
        self.compared = compared
        self.skipped = skipped
        self.history = history
        self.regressions = regressions

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        ident = f"{self.name}[{self.bench or '?'}/{self.scale or '?'}]"
        if self.history == 0:
            return f"PASS {ident}: no prior records yet (baseline seeded)"
        status = "PASS" if self.ok else "FAIL"
        line = (
            f"{status} {ident}: {self.compared} metric(s) vs median of "
            f"{self.history} prior run(s)"
        )
        if self.skipped:
            line += f", {self.skipped} below noise floor"
        return line


def check_trajectory(
    records: list[dict],
    name: str = "",
    tolerance: float = DEFAULT_TOLERANCE,
    window: int = DEFAULT_WINDOW,
    min_history: int = DEFAULT_MIN_HISTORY,
    min_latency_ms: float = DEFAULT_MIN_LATENCY_MS,
) -> TrajectoryCheck:
    """Gate the newest record of one trajectory against its history.

    Only prior records from the newest record's own ``(bench, scale)``
    group are baseline material — a legacy record with no ``bench`` key,
    or a run at a different scale, never contaminates the median.
    """
    if tolerance < 1.0:
        raise QueryError(f"tolerance must be >= 1.0, got {tolerance:g}")
    if not records:
        raise QueryError(f"{name or 'trajectory'}: no records to check")
    newest = records[-1]
    key = _group_key(newest)
    priors = [record for record in records[:-1] if _group_key(record) == key]
    priors = priors[-window:] if window > 0 else priors
    bench, scale = key
    if len(priors) < max(1, min_history):
        return TrajectoryCheck(name, bench, scale, 0, 0, len(priors), [])
    newest_flat = flatten(newest)
    prior_flats = [flatten(record) for record in priors]
    compared = 0
    skipped = 0
    regressions: list[Regression] = []
    for metric in sorted(newest_flat):
        direction = metric_direction(metric)
        if direction is None:
            continue
        history = [flat[metric] for flat in prior_flats if metric in flat]
        if not history:
            continue
        baseline = statistics.median(history)
        value = newest_flat[metric]
        floor = _floor_for(metric, min_latency_ms)
        if direction == "lower" and baseline < floor and value < floor * tolerance:
            skipped += 1
            continue
        compared += 1
        failed = (
            value > baseline * tolerance
            if direction == "lower"
            else value * tolerance < baseline
        )
        if failed:
            regressions.append(
                Regression(metric, direction, value, baseline, len(history), bench, scale)
            )
    return TrajectoryCheck(name, bench, scale, compared, skipped, len(priors), regressions)


def check_files(
    paths: list[Path],
    tolerance: float = DEFAULT_TOLERANCE,
    window: int = DEFAULT_WINDOW,
    min_history: int = DEFAULT_MIN_HISTORY,
    min_latency_ms: float = DEFAULT_MIN_LATENCY_MS,
) -> list[TrajectoryCheck]:
    """Run the gate over many BENCH files; one check per file."""
    checks = []
    for path in paths:
        records = load_trajectory(path)
        checks.append(
            check_trajectory(
                records,
                name=Path(path).name,
                tolerance=tolerance,
                window=window,
                min_history=min_history,
                min_latency_ms=min_latency_ms,
            )
        )
    return checks


def discover_bench_files(results_dir: str | Path) -> list[Path]:
    """Every ``BENCH_*.json`` under ``results_dir``, name-sorted."""
    return sorted(Path(results_dir).glob("BENCH_*.json"))
