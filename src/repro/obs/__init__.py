"""repro.obs — metrics, tracing, and structured logs (stdlib-only).

Three cooperating surfaces:

* :mod:`repro.obs.metrics` — thread-safe labeled counters/gauges/
  histograms, Prometheus text exposition, and per-worker snapshot
  persistence so multi-process serving merges into one scrape;
* :mod:`repro.obs.trace` — contextvar-propagated per-request trace ids
  and nested phase spans, exported as JSON lines;
* :mod:`repro.obs.logging` — JSON log formatter plus the serve access
  log and the ``--slow-query-ms`` slow-query log.
"""

from repro.obs.logging import AccessLog, JsonFormatter, SlowQueryLog
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    SnapshotStore,
    get_registry,
    merge_snapshots,
    parse_exposition,
    render_snapshot,
    set_registry,
)
from repro.obs.trace import (
    JsonLinesExporter,
    Trace,
    current_trace,
    current_trace_id,
    record_span,
    span,
    start_trace,
)

__all__ = [
    "AccessLog",
    "DEFAULT_LATENCY_BUCKETS",
    "JsonFormatter",
    "JsonLinesExporter",
    "MetricsRegistry",
    "SlowQueryLog",
    "SnapshotStore",
    "Trace",
    "current_trace",
    "current_trace_id",
    "get_registry",
    "merge_snapshots",
    "parse_exposition",
    "record_span",
    "render_snapshot",
    "set_registry",
    "span",
    "start_trace",
]
