"""repro.obs — metrics, tracing, logs, profiling, and the bench gate
(stdlib-only).

Five cooperating surfaces:

* :mod:`repro.obs.metrics` — thread-safe labeled counters/gauges/
  histograms, Prometheus text exposition, and per-worker snapshot
  persistence so multi-process serving merges into one scrape;
* :mod:`repro.obs.trace` — contextvar-propagated per-request trace ids
  and nested phase spans, exported as size-rotated JSON lines, plus the
  process-wide active-span map the profiler joins against;
* :mod:`repro.obs.logging` — JSON log formatter plus the serve access
  log and the ``--slow-query-ms`` slow-query log;
* :mod:`repro.obs.profile` — sampling wall-clock profiler attributing
  collapsed stacks to trace phases (``/debug/profile``, slow-query
  auto-capture, continuous ``/metrics`` feed);
* :mod:`repro.obs.bench` — the BENCH_*.json trajectory schema and the
  ``repro bench check`` perf-regression gate.
"""

from repro.obs.bench import (
    check_files,
    check_trajectory,
    discover_bench_files,
    flatten,
    load_trajectory,
    metric_direction,
)
from repro.obs.logging import AccessLog, JsonFormatter, SlowQueryLog
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    SnapshotStore,
    get_registry,
    merge_snapshots,
    parse_exposition,
    render_snapshot,
    set_registry,
)
from repro.obs.profile import (
    ProfileReport,
    SamplingProfiler,
    SlowProfileWriter,
    capture,
    parse_collapsed,
)
from repro.obs.trace import (
    JsonLinesExporter,
    Trace,
    active_phases,
    current_trace,
    current_trace_id,
    record_span,
    span,
    start_trace,
)

__all__ = [
    "AccessLog",
    "DEFAULT_LATENCY_BUCKETS",
    "JsonFormatter",
    "JsonLinesExporter",
    "MetricsRegistry",
    "ProfileReport",
    "SamplingProfiler",
    "SlowProfileWriter",
    "SlowQueryLog",
    "SnapshotStore",
    "Trace",
    "active_phases",
    "capture",
    "check_files",
    "check_trajectory",
    "current_trace",
    "current_trace_id",
    "discover_bench_files",
    "flatten",
    "get_registry",
    "load_trajectory",
    "merge_snapshots",
    "metric_direction",
    "parse_collapsed",
    "parse_exposition",
    "record_span",
    "render_snapshot",
    "set_registry",
    "span",
    "start_trace",
]
