"""Sampling wall-clock profiler joined to the tracer's phase spans.

The observability layer's *where-does-the-time-go* surface, stdlib-only:
a :class:`SamplingProfiler` runs a background daemon thread that walks
``sys._current_frames()`` at a configurable rate, collapses each
thread's Python stack into a ``frame;frame;frame`` path, and — by
consulting the tracer's active-span map
(:func:`repro.obs.trace.active_phases`) — attributes every sample to
the *phase* the sampled thread is currently inside (``queue-wait``,
``cube-build``, ``score``, ``segment``, …).  Three consumers:

* ``GET /debug/profile?seconds=S&hz=H`` on a live server captures a
  short profile and returns it as collapsed-stack text (each line is
  ``phase;frame;…;frame count`` — directly consumable by
  ``flamegraph.pl`` and by ``repro obs flame``);
* ``repro serve --profile-slow`` auto-captures a short profile whenever
  a request crosses ``--slow-query-ms``, written next to the slow-query
  log keyed by the request's trace id (:class:`SlowProfileWriter`);
* a continuous low-rate profiler (``repro serve --profile-hz``) feeds
  per-phase self-time into the metrics registry, so a ``/metrics``
  scrape answers "which phase is burning CPU" without a capture.

Sampling is wall-clock: a thread blocked on a lock or a read counts
toward its phase just like one spinning — exactly what a latency
investigation wants.  Overhead is bounded by design: the sampler does
all aggregation work on its own thread, and each sweep costs one
``sys._current_frames()`` call plus a frame walk per live thread, so
profiled workloads slow down by well under 5% at the default rate (the
test suite pins that bound).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path

from repro.exceptions import QueryError
from repro.obs.trace import (
    DEFAULT_EXPORT_MAX_BYTES,
    active_phases,
    append_jsonl_rotating,
)

#: Default sampling rate.  97 Hz, not 100: a prime rate cannot phase-lock
#: with millisecond-periodic work, which would systematically over- or
#: under-sample it.
DEFAULT_HZ = 97.0

#: Hard cap on the sampling rate a caller (or an HTTP client) may ask
#: for; beyond ~1 kHz the sampler's own GIL time stops being negligible.
MAX_HZ = 997.0

#: Frames kept per sampled stack, innermost-first during the walk; a
#: deeper stack keeps its leaf frames and truncates the root end.
MAX_STACK_DEPTH = 64

#: Phase bucket for threads with no sampled trace (server plumbing,
#: flusher threads, user threads outside any request).
UNTRACED = "untraced"

#: Collapsed-stack root placed when a stack was depth-truncated.
TRUNCATED = "..."


def _frame_stack(frame, max_depth: int) -> tuple[str, ...]:
    """Collapse one frame chain into a root-first ``module.func`` tuple."""
    stack: list[str] = []
    while frame is not None and len(stack) < max_depth:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        stack.append(f"{module}.{code.co_name}")
        frame = frame.f_back
    if frame is not None:
        stack.append(TRUNCATED)
    stack.reverse()
    return tuple(stack)


class ProfileReport:
    """Aggregated samples of one profiling window.

    ``stacks`` maps ``(phase, frame-tuple)`` to its sample count;
    ``phase_samples`` is the per-phase marginal.  ``sweeps`` counts
    sampling passes (each pass samples every live thread once), so
    ``interval_seconds * phase_samples[p]`` estimates phase ``p``'s
    wall-clock self time — summed across threads, which is why a
    parallel phase can legitimately exceed the window's duration.
    """

    def __init__(
        self,
        hz: float,
        duration_seconds: float,
        sweeps: int,
        stacks: dict[tuple[str, tuple[str, ...]], int],
        started_unix: float | None = None,
    ):
        self.hz = float(hz)
        self.duration_seconds = float(duration_seconds)
        self.sweeps = int(sweeps)
        self.stacks = stacks
        self.started_unix = started_unix
        self.samples = sum(stacks.values())
        self.phase_samples: dict[str, int] = {}
        for (phase, _stack), count in stacks.items():
            self.phase_samples[phase] = self.phase_samples.get(phase, 0) + count

    # ------------------------------------------------------------------
    @property
    def interval_seconds(self) -> float:
        """Achieved seconds per sweep (falls back to the nominal rate)."""
        if self.sweeps > 0 and self.duration_seconds > 0:
            return self.duration_seconds / self.sweeps
        return 1.0 / self.hz if self.hz > 0 else 0.0

    def phase_self_seconds(self) -> dict[str, float]:
        """Estimated wall-clock self time per phase, largest first."""
        interval = self.interval_seconds
        return dict(
            sorted(
                ((phase, count * interval) for phase, count in self.phase_samples.items()),
                key=lambda item: -item[1],
            )
        )

    def top(self, n: int = 20) -> list[tuple[str, int, float]]:
        """Hotspots: ``(leaf frame, self samples, self seconds)`` rows."""
        interval = self.interval_seconds
        leaves: dict[str, int] = {}
        for (_phase, stack), count in self.stacks.items():
            leaf = stack[-1] if stack else "?"
            leaves[leaf] = leaves.get(leaf, 0) + count
        ranked = sorted(leaves.items(), key=lambda item: (-item[1], item[0]))
        return [(leaf, count, count * interval) for leaf, count in ranked[:n]]

    def collapsed(self) -> str:
        """Collapsed-stack text: ``phase;frame;…;frame count`` per line.

        The phase is the synthetic root frame, so a flamegraph built
        from this output groups time by trace phase first — the join
        the raw profiler could never show on its own.
        """
        lines = [
            ";".join((phase, *stack)) + f" {count}"
            for (phase, stack), count in sorted(
                self.stacks.items(), key=lambda item: (-item[1], item[0])
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "hz": self.hz,
            "duration_seconds": round(self.duration_seconds, 6),
            "sweeps": self.sweeps,
            "samples": self.samples,
            "started_unix": self.started_unix,
            "stacks": [
                [phase, list(stack), count]
                for (phase, stack), count in sorted(
                    self.stacks.items(), key=lambda item: (-item[1], item[0])
                )
            ],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ProfileReport":
        stacks: dict[tuple[str, tuple[str, ...]], int] = {}
        for entry in payload.get("stacks", ()):
            if not isinstance(entry, (list, tuple)) or len(entry) != 3:
                continue
            phase, stack, count = entry
            try:
                stacks[(str(phase), tuple(str(f) for f in stack))] = int(count)
            except (TypeError, ValueError):
                continue
        return cls(
            hz=float(payload.get("hz", 0.0) or 0.0),
            duration_seconds=float(payload.get("duration_seconds", 0.0) or 0.0),
            sweeps=int(payload.get("sweeps", 0) or 0),
            stacks=stacks,
            started_unix=payload.get("started_unix"),
        )

    @classmethod
    def merge(cls, reports: "list[ProfileReport]") -> "ProfileReport":
        """Sum many windows into one (the CLI aggregation unit)."""
        stacks: dict[tuple[str, tuple[str, ...]], int] = {}
        duration = 0.0
        sweeps = 0
        hz = 0.0
        for report in reports:
            duration += report.duration_seconds
            sweeps += report.sweeps
            hz = hz or report.hz
            for key, count in report.stacks.items():
                stacks[key] = stacks.get(key, 0) + count
        return cls(hz=hz, duration_seconds=duration, sweeps=sweeps, stacks=stacks)


def parse_collapsed(text: str) -> ProfileReport:
    """Parse collapsed-stack text (``/debug/profile`` output) back into a
    report.  Sweep/duration information is not carried by the format, so
    the result supports stack aggregation (``top``, ``collapsed``,
    merging) but estimates time at the default rate."""
    stacks: dict[tuple[str, tuple[str, ...]], int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        path, _, count_text = line.rpartition(" ")
        try:
            count = int(count_text)
        except ValueError:
            continue
        if not path:
            continue
        frames = path.split(";")
        key = (frames[0], tuple(frames[1:]))
        stacks[key] = stacks.get(key, 0) + count
    sweeps = sum(stacks.values())
    return ProfileReport(
        hz=DEFAULT_HZ,
        duration_seconds=sweeps / DEFAULT_HZ if sweeps else 0.0,
        sweeps=sweeps,
        stacks=stacks,
    )


class SamplingProfiler:
    """Background-thread sampling profiler with phase attribution.

    Parameters
    ----------
    hz:
        Sampling rate (sweeps per second), ``0 < hz <= MAX_HZ``.
    max_stack:
        Frames kept per sampled stack (leaf end wins on truncation).
    exclude_threads:
        Thread idents never sampled — a ``/debug/profile`` handler
        excludes itself so the capture doesn't show its own wait.
    phase_counter:
        Optional labeled metrics counter; when set, every sample adds
        one nominal interval to ``phase=<phase>`` — the continuous
        profiler's feed into ``/metrics``.
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        max_stack: int = MAX_STACK_DEPTH,
        exclude_threads: tuple[int, ...] = (),
        phase_counter=None,
    ):
        hz = float(hz)
        if not (0.0 < hz <= MAX_HZ):
            raise QueryError(f"profiler hz must be in (0, {MAX_HZ:g}], got {hz:g}")
        self.hz = hz
        self._interval = 1.0 / hz
        self._max_stack = int(max_stack)
        self._exclude = set(exclude_threads)
        self._phase_counter = phase_counter
        self._lock = threading.Lock()
        self._stacks: dict[tuple[str, tuple[str, ...]], int] = {}
        self._sweeps = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_perf: float | None = None
        self._started_unix: float | None = None
        self._stopped_elapsed: float | None = None

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise QueryError("profiler already started (one-shot; build a new one)")
        self._started_perf = time.perf_counter()
        self._started_unix = time.time()
        self._thread = threading.Thread(
            target=self._loop, name="repro-profile", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> ProfileReport:
        """Stop sampling and return the window's report (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        if self._stopped_elapsed is None and self._started_perf is not None:
            self._stopped_elapsed = time.perf_counter() - self._started_perf
        return self.report()

    def report(self) -> ProfileReport:
        """A snapshot report (usable mid-run for continuous profiling)."""
        if self._started_perf is None:
            elapsed = 0.0
        elif self._stopped_elapsed is not None:
            elapsed = self._stopped_elapsed
        else:
            elapsed = time.perf_counter() - self._started_perf
        with self._lock:
            stacks = dict(self._stacks)
            sweeps = self._sweeps
        return ProfileReport(
            hz=self.hz,
            duration_seconds=elapsed,
            sweeps=sweeps,
            stacks=stacks,
            started_unix=self._started_unix,
        )

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        skip_base = self._exclude
        own = threading.get_ident()
        while not self._stop.wait(self._interval):
            self._sample(skip_base | {own})

    def _sample(self, skip: set[int]) -> None:
        frames = sys._current_frames()
        phases = active_phases()
        sampled: list[str] = []
        try:
            with self._lock:
                self._sweeps += 1
                for ident, frame in frames.items():
                    if ident in skip:
                        continue
                    stack = _frame_stack(frame, self._max_stack)
                    phase = phases.get(ident, (None, UNTRACED))[1]
                    key = (phase, stack)
                    self._stacks[key] = self._stacks.get(key, 0) + 1
                    sampled.append(phase)
        finally:
            # Frame objects keep their whole chain (locals included)
            # alive; drop the reference the moment aggregation is done.
            del frames
        if self._phase_counter is not None:
            for phase in sampled:
                self._phase_counter.inc(self._interval, phase=phase)


def capture(
    seconds: float,
    hz: float = DEFAULT_HZ,
    exclude_threads: tuple[int, ...] = (),
) -> ProfileReport:
    """Profile the whole process for ``seconds`` and return the report."""
    if seconds <= 0:
        raise QueryError(f"capture seconds must be positive, got {seconds:g}")
    profiler = SamplingProfiler(hz=hz, exclude_threads=exclude_threads)
    profiler.start()
    try:
        # An Event wait, not time.sleep: wakes promptly under interpreter
        # shutdown and keeps the capture's own thread trivially cheap.
        threading.Event().wait(seconds)
    finally:
        report = profiler.stop()
    return report


class SlowProfileWriter:
    """Auto-capture for slow queries, appended as JSON lines.

    ``repro serve --profile-slow`` hands each slow request's trace id
    here; at most one capture runs at a time (a herd of slow queries
    yields one representative profile, not a pile-up of samplers), and
    each finished capture appends one ``{trace_id, latency_ms, …,
    stacks}`` object to ``slowprof-<worker>.jsonl`` next to the
    slow-query log — joinable back to the span tree by trace id, with
    the same size-based rotation policy as the trace export.
    """

    def __init__(
        self,
        path: str | Path,
        seconds: float = 2.0,
        hz: float = DEFAULT_HZ,
        max_bytes: int = DEFAULT_EXPORT_MAX_BYTES,
    ):
        self._path = Path(path).expanduser()
        self._seconds = float(seconds)
        self._hz = float(hz)
        self._max_bytes = int(max_bytes)
        self._busy = threading.Lock()
        self._write_lock = threading.Lock()
        self.captures = 0
        self.skipped = 0

    @property
    def path(self) -> Path:
        return self._path

    def maybe_capture(
        self,
        trace_id: str | None,
        path: str,
        latency_ms: float,
        wait: bool = False,
    ) -> bool:
        """Start a background capture for one slow request.

        Returns False (and counts a skip) when a capture is already in
        flight.  ``wait=True`` blocks until the capture has been written
        — tests use it; the serve path never does.
        """
        if not self._busy.acquire(blocking=False):
            self.skipped += 1
            return False
        thread = threading.Thread(
            target=self._run,
            args=(trace_id, path, latency_ms),
            name="repro-slowprof",
            daemon=True,
        )
        thread.start()
        if wait:
            thread.join()
        return True

    def _run(self, trace_id: str | None, path: str, latency_ms: float) -> None:
        try:
            # This thread only waits out the window; excluding it keeps
            # its own sleep from polluting the capture.
            report = capture(
                self._seconds,
                hz=self._hz,
                exclude_threads=(threading.get_ident(),),
            )
            entry = {
                "ts": round(time.time(), 3),
                "trace_id": trace_id,
                "path": path,
                "latency_ms": round(latency_ms, 3),
                **report.to_json(),
            }
            line = json.dumps(entry, separators=(",", ":"))
            with self._write_lock:
                append_jsonl_rotating(self._path, line, self._max_bytes)
            self.captures += 1
        except OSError:  # pragma: no cover - disk-full etc.
            pass
        finally:
            self._busy.release()

    @staticmethod
    def read(path: str | Path) -> list[dict]:
        """Every well-formed profile entry in ``path`` (skips torn lines)."""
        entries: list[dict] = []
        try:
            text = Path(path).expanduser().read_text(encoding="utf-8")
        except OSError:
            return entries
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                continue
            if isinstance(payload, dict) and "stacks" in payload:
                entries.append(payload)
        return entries
