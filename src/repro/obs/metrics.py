"""Thread-safe labeled metrics with a Prometheus text exposition.

The observability layer's counting surface: a :class:`MetricsRegistry`
owns labeled :class:`Counter`s, :class:`Gauge`s and fixed-bucket latency
:class:`Histogram`s, all guarded by one registry lock so scheduler
threads can increment concurrently without losing updates.  Three output
shapes come off the same registry:

* :meth:`MetricsRegistry.snapshot` — a JSON-able dict of every series,
  the unit of cross-process merging;
* :func:`render_snapshot` / :meth:`MetricsRegistry.render` — the
  Prometheus text exposition format (version 0.0.4) a ``GET /metrics``
  scrape returns;
* :func:`parse_exposition` — a small validating parser for the same
  format, used by tests and the CI smoke to prove a scrape is
  well-formed without any external dependency.

Multi-process serving (:mod:`repro.serve.multiproc`) cannot share one
registry across ``SO_REUSEPORT`` workers, so each worker periodically
persists its snapshot as a JSON file under the cache directory
(:class:`SnapshotStore`, keyed by worker id and pid) and any worker's
``/metrics`` handler merges every live worker's snapshot
(:func:`merge_snapshots`) — one scrape sees the whole pool.  Counters
and histograms merge by summation; gauges also sum (queue depths and
in-flight counts are per-worker quantities whose pool-wide value is the
sum — per-worker breakdowns belong in labels, not in merge semantics).

Deep layers (cube cache, lattice router, detect tier) record into the
process-wide default registry (:func:`get_registry`) so they need no
plumbed-through handle; tests isolate themselves with
:func:`set_registry`.
"""

from __future__ import annotations

import json
import math
import os
import re
import tempfile
import threading
import time
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from repro.exceptions import QueryError

#: Default latency buckets (seconds) — request-scale, sub-ms to 10 s.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Coarser buckets (seconds) for prepare/build phases, which run longer.
BUILD_BUCKETS: tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Snapshot payload format; bump on layout changes so stale files from a
#: previous version read as unmergeable and are skipped.
SNAPSHOT_FORMAT = 1

#: Filename prefix/suffix of persisted worker snapshots.
SNAPSHOT_PREFIX = "metrics-"
SNAPSHOT_SUFFIX = ".json"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise QueryError(f"invalid metric name {name!r}")
    return name


def _check_labels(labels: Sequence[str]) -> tuple[str, ...]:
    for label in labels:
        if not _LABEL_RE.match(label):
            raise QueryError(f"invalid label name {label!r}")
    return tuple(labels)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    as_int = int(value)
    return str(as_int) if as_int == value else repr(value)


class _Metric:
    """One metric family; series live in the owning registry's lock."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str, labels: tuple[str, ...]):
        self._registry = registry
        self.name = name
        self.help = help
        self.labels = labels

    def _key(self, label_values: Mapping[str, object]) -> tuple[str, ...]:
        if set(label_values) != set(self.labels):
            raise QueryError(
                f"metric {self.name!r} takes labels {list(self.labels)}, "
                f"got {sorted(label_values)}"
            )
        return tuple(str(label_values[label]) for label in self.labels)


class Counter(_Metric):
    """A monotonically increasing sum."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise QueryError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._registry._lock:
            series = self._registry._series[self.name]
            series[key] = series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._registry._lock:
            return self._registry._series[self.name].get(key, 0.0)


class Gauge(_Metric):
    """A value that can go up and down (queue depth, in-flight count)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._registry._lock:
            self._registry._series[self.name][key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._registry._lock:
            series = self._registry._series[self.name]
            series[key] = series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._registry._lock:
            return self._registry._series[self.name].get(key, 0.0)


class Histogram(_Metric):
    """Fixed-bucket latency distribution (cumulative ``le`` semantics).

    Each series holds per-bucket *non-cumulative* counts plus a running
    sum and count; rendering accumulates them into the Prometheus
    ``_bucket{le=...}`` / ``_sum`` / ``_count`` triple.  An observation
    equal to a bucket's upper bound lands in that bucket (``le`` is
    inclusive); anything beyond the last bound lands in ``+Inf``.
    """

    kind = "histogram"

    def __init__(self, registry, name, help, labels, buckets: tuple[float, ...]):
        super().__init__(registry, name, help, labels)
        self.buckets = buckets

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        index = len(self.buckets)  # +Inf by default
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._registry._lock:
            series = self._registry._series[self.name]
            state = series.get(key)
            if state is None:
                state = series[key] = {
                    "counts": [0] * (len(self.buckets) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
            state["counts"][index] += 1
            state["sum"] += float(value)
            state["count"] += 1

    def state(self, **labels) -> dict | None:
        key = self._key(labels)
        with self._registry._lock:
            state = self._registry._series[self.name].get(key)
            return json.loads(json.dumps(state)) if state is not None else None


class MetricsRegistry:
    """A process-local set of metric families behind one lock.

    Families are get-or-create: asking twice for the same name returns
    the same object, and asking with a conflicting type, label set or
    bucket layout raises :class:`~repro.exceptions.QueryError` loudly —
    two call sites silently disagreeing about a metric's shape would
    corrupt every scrape after.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._metrics: dict[str, _Metric] = {}
        # name -> {label-values-tuple -> float | histogram-state-dict}
        self._series: dict[str, dict] = {}

    # ------------------------------------------------------------------
    # Family registration
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        buckets = tuple(float(b) for b in buckets)
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise QueryError(
                f"histogram {name!r} needs strictly increasing, non-empty buckets"
            )
        metric = self._register(Histogram, name, help, labels, buckets=buckets)
        if metric.buckets != buckets:
            raise QueryError(
                f"histogram {name!r} already registered with buckets "
                f"{list(metric.buckets)}"
            )
        return metric

    def _register(self, cls, name: str, help: str, labels: Sequence[str], **extra):
        _check_name(name)
        labels = _check_labels(labels)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labels != labels:
                    raise QueryError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {list(existing.labels)}"
                    )
                return existing
            metric = cls(self, name, help, labels, **extra)
            self._metrics[name] = metric
            self._series[name] = {}
            return metric

    def families(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._metrics))

    # ------------------------------------------------------------------
    # Snapshots and rendering
    # ------------------------------------------------------------------
    def snapshot(self, worker: str | None = None) -> dict:
        """A JSON-able copy of every series (the merge/persist unit)."""
        with self._lock:
            metrics: dict[str, dict] = {}
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                family: dict = {
                    "type": metric.kind,
                    "help": metric.help,
                    "labels": list(metric.labels),
                    "series": [],
                }
                if isinstance(metric, Histogram):
                    family["buckets"] = list(metric.buckets)
                for key in sorted(self._series[name]):
                    value = self._series[name][key]
                    if isinstance(metric, Histogram):
                        family["series"].append(
                            {
                                "labels": list(key),
                                "buckets": list(value["counts"]),
                                "sum": value["sum"],
                                "count": value["count"],
                            }
                        )
                    else:
                        family["series"].append({"labels": list(key), "value": value})
                metrics[name] = family
        return {
            "format": SNAPSHOT_FORMAT,
            "pid": os.getpid(),
            "worker": worker if worker is not None else str(os.getpid()),
            "written_unix": time.time(),
            "metrics": metrics,
        }

    def render(self, extra_snapshots: Iterable[dict] = ()) -> str:
        """This registry's exposition text, merged with ``extra_snapshots``."""
        snapshots = [self.snapshot(), *extra_snapshots]
        return render_snapshot(merge_snapshots(snapshots))


# ----------------------------------------------------------------------
# The process-wide default registry
# ----------------------------------------------------------------------
_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry deep layers record into."""
    with _default_lock:
        return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (tests); returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
        return previous


# ----------------------------------------------------------------------
# Merging and exposition
# ----------------------------------------------------------------------
def merge_snapshots(snapshots: Sequence[dict]) -> dict:
    """Sum many snapshots into one (the multi-worker ``/metrics`` view).

    Counters, gauges and histogram series merge by summation per
    ``(metric, label-values)``; a family whose type/labels/buckets
    disagree across snapshots keeps the first spelling and skips the
    conflicting contribution (one worker running newer code must not
    poison the whole scrape).
    """
    merged: dict[str, dict] = {}
    for snapshot in snapshots:
        if snapshot.get("format") != SNAPSHOT_FORMAT:
            continue
        for name, family in snapshot.get("metrics", {}).items():
            target = merged.get(name)
            if target is None:
                target = merged[name] = {
                    "type": family["type"],
                    "help": family["help"],
                    "labels": list(family["labels"]),
                    "series": [],
                }
                if "buckets" in family:
                    target["buckets"] = list(family["buckets"])
                index: dict[tuple, dict] = {}
                target["_index"] = index
            if (
                target["type"] != family["type"]
                or target["labels"] != list(family["labels"])
                or target.get("buckets") != family.get("buckets")
            ):
                continue
            index = target["_index"]
            for series in family["series"]:
                key = tuple(series["labels"])
                existing = index.get(key)
                if existing is None:
                    copied = json.loads(json.dumps(series))
                    index[key] = copied
                    target["series"].append(copied)
                elif family["type"] == "histogram":
                    existing["buckets"] = [
                        a + b for a, b in zip(existing["buckets"], series["buckets"])
                    ]
                    existing["sum"] += series["sum"]
                    existing["count"] += series["count"]
                else:
                    existing["value"] += series["value"]
    for family in merged.values():
        family.pop("_index", None)
        family["series"].sort(key=lambda s: s["labels"])
    return {
        "format": SNAPSHOT_FORMAT,
        "pid": os.getpid(),
        "worker": "merged",
        "written_unix": time.time(),
        "metrics": dict(sorted(merged.items())),
    }


def _sample_line(name: str, labels: Sequence[str], values: Sequence[str], value: float) -> str:
    if labels:
        body = ",".join(
            f'{label}="{_escape_label_value(str(val))}"'
            for label, val in zip(labels, values)
        )
        return f"{name}{{{body}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def render_snapshot(snapshot: dict) -> str:
    """One snapshot as Prometheus text exposition (version 0.0.4)."""
    lines: list[str] = []
    for name, family in snapshot.get("metrics", {}).items():
        if family.get("help"):
            escaped = family["help"].replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {name} {escaped}")
        lines.append(f"# TYPE {name} {family['type']}")
        labels = family["labels"]
        for series in family["series"]:
            values = series["labels"]
            if family["type"] == "histogram":
                cumulative = 0
                for bound, count in zip(family["buckets"], series["buckets"]):
                    cumulative += count
                    lines.append(
                        _sample_line(
                            f"{name}_bucket",
                            [*labels, "le"],
                            [*values, f"{bound:g}"],
                            cumulative,
                        )
                    )
                cumulative += series["buckets"][-1]
                lines.append(
                    _sample_line(
                        f"{name}_bucket", [*labels, "le"], [*values, "+Inf"], cumulative
                    )
                )
                lines.append(
                    _sample_line(f"{name}_sum", labels, values, series["sum"])
                )
                lines.append(
                    _sample_line(f"{name}_count", labels, values, series["count"])
                )
            else:
                lines.append(_sample_line(name, labels, values, series["value"]))
    return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label_value(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def parse_exposition(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse (and validate) Prometheus text exposition into samples.

    Returns ``{(sample_name, sorted((label, value), ...)): value}``.
    Raises :class:`~repro.exceptions.QueryError` on malformed lines, a
    sample outside any declared ``# TYPE`` family, an unparsable value,
    or a histogram whose cumulative bucket counts decrease — the checks
    the CI smoke runs against a live scrape.
    """
    families: dict[str, str] = {}
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    histogram_last: dict[tuple, float] = {}
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 4 or parts[3] not in ("counter", "gauge", "histogram", "untyped"):
                raise QueryError(f"line {line_number}: malformed TYPE line {raw!r}")
            families[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise QueryError(f"line {line_number}: malformed sample {raw!r}")
        name, label_body, value_text = match.groups()
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                family = name[: -len(suffix)]
                break
        if family not in families:
            raise QueryError(f"line {line_number}: sample {name!r} has no TYPE declaration")
        if family != name and families[family] != "histogram":
            raise QueryError(
                f"line {line_number}: {name!r} suffix on non-histogram family {family!r}"
            )
        labels: list[tuple[str, str]] = []
        if label_body:
            consumed = _LABEL_PAIR_RE.sub("", label_body).replace(",", "").strip()
            if consumed:
                raise QueryError(f"line {line_number}: malformed labels {label_body!r}")
            labels = [
                (label, _unescape_label_value(value))
                for label, value in _LABEL_PAIR_RE.findall(label_body)
            ]
        try:
            if value_text == "+Inf":
                value = math.inf
            elif value_text == "-Inf":
                value = -math.inf
            else:
                value = float(value_text)
        except ValueError:
            raise QueryError(
                f"line {line_number}: unparsable value {value_text!r}"
            ) from None
        key = (name, tuple(sorted(labels)))
        if key in samples:
            raise QueryError(f"line {line_number}: duplicate sample {key}")
        samples[key] = value
        if name.endswith("_bucket") and families.get(family) == "histogram":
            series = (family, tuple(sorted(l for l in labels if l[0] != "le")))
            previous = histogram_last.get(series)
            if previous is not None and value < previous:
                raise QueryError(
                    f"line {line_number}: histogram {family!r} bucket counts decrease"
                )
            histogram_last[series] = value
    return samples


# ----------------------------------------------------------------------
# Cross-process snapshot persistence
# ----------------------------------------------------------------------
def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (OSError, PermissionError):
        return True
    return True


class SnapshotStore:
    """Periodic per-worker snapshot files under one shared directory.

    Each ``SO_REUSEPORT`` serve worker writes its registry snapshot to
    ``metrics-<worker_id>.json`` (atomic: temp file + rename); a scrape
    on any worker reads every file, drops snapshots whose writer pid is
    dead (a restarted worker would otherwise be double-counted against
    its own ghost) and merges the rest.
    """

    def __init__(self, directory: str | Path):
        self._directory = Path(directory).expanduser()

    @property
    def directory(self) -> Path:
        return self._directory

    def path_for(self, worker_id: str) -> Path:
        safe = re.sub(r"[^A-Za-z0-9_.-]", "_", str(worker_id))
        return self._directory / f"{SNAPSHOT_PREFIX}{safe}{SNAPSHOT_SUFFIX}"

    def write(self, snapshot: dict, worker_id: str | None = None) -> Path:
        """Atomically persist one snapshot; returns its path."""
        worker_id = worker_id if worker_id is not None else snapshot.get("worker", "0")
        self._directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(worker_id)
        handle, tmp_name = tempfile.mkstemp(
            dir=self._directory, suffix=f"{SNAPSHOT_SUFFIX}.tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                json.dump(snapshot, tmp)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def load_all(self, alive: Callable[[int], bool] = _pid_alive) -> list[dict]:
        """Every readable, live-writer snapshot in the directory.

        Corrupt or foreign files are skipped (a crashed writer must not
        poison the pool's scrape), as are snapshots whose recorded pid
        no longer exists.
        """
        snapshots: list[dict] = []
        try:
            paths = sorted(self._directory.glob(f"{SNAPSHOT_PREFIX}*{SNAPSHOT_SUFFIX}"))
        except OSError:
            return snapshots
        for path in paths:
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if not isinstance(payload, dict) or payload.get("format") != SNAPSHOT_FORMAT:
                continue
            pid = payload.get("pid")
            if isinstance(pid, int) and not alive(pid):
                continue
            snapshots.append(payload)
        return snapshots

    def delete(self, worker_id: str) -> bool:
        try:
            self.path_for(worker_id).unlink()
            return True
        except OSError:
            return False
