"""Structured JSON logging: formatter, serve access log, slow-query log.

Every record renders as one JSON object per line, so the serve tier's
logs are machine-parseable without a log-shipping dependency.  The
access and slow-query logs deliberately instantiate ``logging.Logger``
directly instead of calling ``logging.getLogger`` — tests spin up many
apps per process, and registering handlers on shared global loggers
would duplicate every line once per app.
"""

from __future__ import annotations

import json
import logging
import sys
import threading
import time
from pathlib import Path
from typing import IO

#: LogRecord attributes that are plumbing, not payload.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """Render records as single-line JSON with extras inlined."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 3),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_"):
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, separators=(",", ":"))


class AccessLog:
    """Structured request log for the serve tier.

    One line per completed (or shed) request: method, path, dataset,
    status, latency and the request's trace id — the runtime
    counterpart of the paper's offline latency tables.
    """

    def __init__(self, stream: IO[str] | None = None):
        # Deliberately NOT logging.getLogger: a private logger keeps each
        # ServeApp's handler isolated from every other app in the process.
        self._logger = logging.Logger("repro.access", level=logging.INFO)
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(JsonFormatter())
        self._logger.addHandler(handler)

    def log(
        self,
        method: str,
        path: str,
        status: int,
        latency_ms: float,
        dataset: str | None = None,
        trace_id: str | None = None,
    ) -> None:
        self._logger.info(
            "%s %s %d",
            method,
            path,
            status,
            extra={
                "method": method,
                "path": path,
                "status": status,
                "latency_ms": round(latency_ms, 3),
                "dataset": dataset,
                "trace_id": trace_id,
            },
        )

    def message(self, text: str) -> None:
        """A free-form server message (stdlib handler plumbing)."""
        self._logger.info("%s", text)


class SlowQueryLog:
    """JSON-lines record of requests slower than a threshold.

    Enabled by ``repro serve --slow-query-ms``; each entry carries the
    trace id so a slow request can be joined against its span tree in
    the trace export.
    """

    def __init__(
        self,
        threshold_ms: float,
        path: str | Path | None = None,
        stream: IO[str] | None = None,
    ):
        self.threshold_ms = float(threshold_ms)
        self._path = Path(path).expanduser() if path is not None else None
        self._stream = stream
        self._lock = threading.Lock()

    @property
    def path(self) -> Path | None:
        return self._path

    def observe(
        self,
        path: str,
        latency_ms: float,
        dataset: str | None = None,
        trace_id: str | None = None,
        status: int | None = None,
    ) -> bool:
        """Record the request if it exceeded the threshold."""
        if latency_ms < self.threshold_ms:
            return False
        entry = {
            "ts": round(time.time(), 3),
            "path": path,
            "dataset": dataset,
            "status": status,
            "latency_ms": round(latency_ms, 3),
            "threshold_ms": self.threshold_ms,
            "trace_id": trace_id,
        }
        line = json.dumps(entry, separators=(",", ":"))
        with self._lock:
            if self._path is not None:
                self._path.parent.mkdir(parents=True, exist_ok=True)
                with open(self._path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
            if self._stream is not None:
                self._stream.write(line + "\n")
        return True

    @staticmethod
    def read(path: str | Path) -> list[dict]:
        """Every well-formed slow-query entry in ``path``."""
        entries: list[dict] = []
        try:
            text = Path(path).expanduser().read_text(encoding="utf-8")
        except OSError:
            return entries
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                continue
            if isinstance(payload, dict) and "latency_ms" in payload:
                entries.append(payload)
        return entries
