"""Dynamic program for optimal K-segmentation (paper section 5.1, Eq. 11).

``D(j, k) = min over j' of D(j', k-1) + cost(j', j)`` where ``cost`` is the
precomputed ``|P| * var(P)`` matrix.  The DP fills every ``k`` up to the
requested maximum in one pass, which is exactly what the elbow method of
section 6 needs ("collecting D(n, K) with varying K from 1 to 20 does not
add extra cost").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SegmentationError


@dataclass(frozen=True)
class SegmentationScheme:
    """One K-segmentation scheme ``P_K`` with its objective value.

    Attributes
    ----------
    boundaries:
        Reduced point indices ``(c_1, ..., c_{K+1})`` including both
        endpoints; there are ``K`` segments between consecutive entries.
    total_cost:
        ``sum_i |P_i| var(P_i)`` of the scheme.
    """

    boundaries: tuple[int, ...]
    total_cost: float

    @property
    def k(self) -> int:
        """Number of segments."""
        return len(self.boundaries) - 1

    @property
    def cuts(self) -> tuple[int, ...]:
        """Interior cutting positions ``(c_2, ..., c_K)``."""
        return self.boundaries[1:-1]

    def segments(self) -> list[tuple[int, int]]:
        """``(start, stop)`` index pairs of each segment."""
        return list(zip(self.boundaries, self.boundaries[1:]))


def solve_k_segmentation(
    cost: np.ndarray, k_max: int, max_object_span: int | None = None
) -> list[SegmentationScheme]:
    """Optimal schemes for every ``K`` in ``1..k_max``.

    Parameters
    ----------
    cost:
        ``(N, N)`` cost matrix over reduced points; ``cost[i, j]`` is the
        weighted variance of segment ``[i, j]`` and ``inf`` marks
        disallowed segments (e.g. exceeding the sketch length constraint).
    k_max:
        Largest segment count of interest (paper caps at 20).
    max_object_span:
        Optional hard cap on ``j - i`` in *reduced* indices, an additional
        pruning knob; the usual length constraint is already encoded as
        ``inf`` entries in ``cost``.

    Returns
    -------
    list of :class:`SegmentationScheme`
        Entry ``r`` is the optimal scheme with ``K = r + 1`` segments.
        Infeasible ``K`` (larger than ``N - 1``) are omitted.
    """
    n_points = cost.shape[0]
    if cost.ndim != 2 or cost.shape[1] != n_points:
        raise SegmentationError(f"cost matrix must be square, got {cost.shape}")
    if n_points < 2:
        raise SegmentationError("need at least two points to segment")
    if k_max < 1:
        raise SegmentationError(f"k_max must be >= 1, got {k_max}")
    k_max = min(k_max, n_points - 1)

    # table[j, k] = minimal cost covering [0, j] with k segments.
    table = np.full((n_points, k_max + 1), np.inf)
    parent = np.full((n_points, k_max + 1), -1, dtype=np.intp)
    table[0, 0] = 0.0
    for k in range(1, k_max + 1):
        # Segment ends j need at least k objects before them.
        for j in range(k, n_points):
            lo = k - 1
            if max_object_span is not None:
                lo = max(lo, j - max_object_span)
            candidates = table[lo:j, k - 1] + cost[lo:j, j]
            best = int(np.argmin(candidates))
            value = candidates[best]
            if np.isfinite(value):
                table[j, k] = value
                parent[j, k] = lo + best

    schemes: list[SegmentationScheme] = []
    for k in range(1, k_max + 1):
        if not np.isfinite(table[n_points - 1, k]):
            continue
        boundaries = [n_points - 1]
        j, level = n_points - 1, k
        while level > 0:
            j = int(parent[j, level])
            boundaries.append(j)
            level -= 1
        boundaries.reverse()
        schemes.append(
            SegmentationScheme(
                boundaries=tuple(boundaries),
                total_cost=float(table[n_points - 1, k]),
            )
        )
    if not schemes:
        raise SegmentationError(
            "no feasible segmentation; the length constraint is too tight"
        )
    return schemes
