"""K-Segmentation: explanation-aware variance, DP, elbow K selection, sketching."""

from repro.segmentation.distance import (
    ALLPAIR_VARIANTS,
    VARIANTS,
    combine_ndcg,
    dcg_cross,
    dcg_weights,
    explanation_distance,
    ideal_dcg,
    ndcg,
)
from repro.segmentation.dp import SegmentationScheme, solve_k_segmentation
from repro.segmentation.kselect import MAX_SEGMENTS, elbow_point, k_variance_curve
from repro.segmentation.sketch import default_sketch_parameters, select_sketch
from repro.segmentation.variance import SegmentationCosts

__all__ = [
    "ALLPAIR_VARIANTS",
    "MAX_SEGMENTS",
    "SegmentationCosts",
    "SegmentationScheme",
    "VARIANTS",
    "combine_ndcg",
    "dcg_cross",
    "dcg_weights",
    "default_sketch_parameters",
    "elbow_point",
    "explanation_distance",
    "ideal_dcg",
    "k_variance_curve",
    "ndcg",
    "select_sketch",
    "solve_k_segmentation",
]
