"""Exhaustive K-segmentation oracle used to validate the DP in tests."""

from __future__ import annotations

import itertools

import numpy as np

from repro.exceptions import SegmentationError


def exhaustive_best_segmentation(
    cost: np.ndarray, k: int
) -> tuple[tuple[int, ...], float]:
    """Minimal-cost scheme by trying every combination of cut positions.

    Returns ``(boundaries, total_cost)``.  Exponential in ``k`` — tests
    only.
    """
    n_points = cost.shape[0]
    if not 1 <= k <= n_points - 1:
        raise SegmentationError(f"infeasible K={k} for {n_points} points")
    best_boundaries: tuple[int, ...] | None = None
    best_cost = np.inf
    for cuts in itertools.combinations(range(1, n_points - 1), k - 1):
        boundaries = (0, *cuts, n_points - 1)
        total = 0.0
        for left, right in zip(boundaries, boundaries[1:]):
            total += cost[left, right]
            if total >= best_cost:
                break
        if total < best_cost:
            best_cost = total
            best_boundaries = boundaries
    if best_boundaries is None or not np.isfinite(best_cost):
        raise SegmentationError("no feasible segmentation found")
    return best_boundaries, float(best_cost)


def random_schemes(
    n_points: int, k: int, count: int, rng: np.random.Generator
) -> list[tuple[int, ...]]:
    """Uniformly sampled K-segmentation schemes (boundaries incl. endpoints).

    Used by the ground-truth-rank protocol of section 4.2.2, which samples
    10 000 random schemes from the huge ``P_K`` space.
    """
    if not 1 <= k <= n_points - 1:
        raise SegmentationError(f"infeasible K={k} for {n_points} points")
    interior = n_points - 2
    schemes: list[tuple[int, ...]] = []
    n_possible = None
    try:
        import math

        n_possible = math.comb(interior, k - 1)
    except (ImportError, ValueError):  # pragma: no cover
        n_possible = None
    if n_possible is not None and n_possible <= count:
        # Small space: enumerate instead of sampling with replacement.
        return [
            (0, *cuts, n_points - 1)
            for cuts in itertools.combinations(range(1, n_points - 1), k - 1)
        ]
    for _ in range(count):
        cuts = np.sort(rng.choice(np.arange(1, n_points - 1), size=k - 1, replace=False))
        schemes.append((0, *map(int, cuts), n_points - 1))
    return schemes
