"""Optimal selection of ``K`` by the elbow method (paper section 6).

The paper normalizes the K-variance curve to the unit square and picks the
"elbow point" with the task-agnostic Kneedle algorithm [Satopaa et al.,
ICDCSW'11].  For a decreasing curve, Kneedle flips it to the increasing
difference curve ``(1 - y_hat(K))`` and takes the K maximizing
``(1 - y_hat(K)) - x_hat(K)`` — equivalently, minimizing
``y_hat(K) + x_hat(K)``.  (The paper's inline formula ``argmax
[total_var(K) - K]`` would always return K=1 on a decreasing normalized
curve; we implement the cited Kneedle behaviour, which reproduces the
paper's reported selections, e.g. K=6 for Covid total cases.)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import SegmentationError

#: User-perception cap on the number of segments (paper section 6).
MAX_SEGMENTS = 20


def elbow_point(k_values: Sequence[int], total_costs: Sequence[float]) -> int:
    """The elbow ``K*`` of a K-variance curve.

    Parameters
    ----------
    k_values:
        Candidate segment counts (ascending).
    total_costs:
        Total within-segment variance ``D(n, K)`` for each candidate.

    Returns
    -------
    int
        The selected ``K*``.  Degenerate curves (fewer than three points or
        zero range) fall back to the smallest ``K``.
    """
    k_array = np.asarray(k_values, dtype=np.float64)
    cost_array = np.asarray(total_costs, dtype=np.float64)
    if k_array.shape != cost_array.shape or k_array.ndim != 1:
        raise SegmentationError("k_values and total_costs must be 1-D and aligned")
    if k_array.shape[0] == 0:
        raise SegmentationError("empty K-variance curve")
    if k_array.shape[0] < 3:
        return int(k_array[0])
    k_span = k_array[-1] - k_array[0]
    cost_span = cost_array.max() - cost_array.min()
    if k_span <= 0 or cost_span <= 0:
        return int(k_array[0])
    x_hat = (k_array - k_array[0]) / k_span
    y_hat = (cost_array - cost_array.min()) / cost_span
    difference = (1.0 - y_hat) - x_hat
    return int(k_array[int(np.argmax(difference))])


def k_variance_curve(schemes: Sequence) -> tuple[list[int], list[float]]:
    """Extract the ``(K, total variance)`` curve from DP schemes."""
    ks = [scheme.k for scheme in schemes]
    costs = [scheme.total_cost for scheme in schemes]
    return ks, costs
