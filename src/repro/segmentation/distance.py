"""Explanation-based distance between segments (paper section 4.1.3).

The distance between two segments is built from NDCG: treating segment
``P_i`` as the query, the ranked explanation list ``E*_m(P_j)`` of the other
segment as the retrieved documents, and the *rectified* difference score

    gamma_bar(E^r_j, P_i) = gamma(E^r_j, P_i) * 1[tau(E^r_j, P_j) == tau(E^r_j, P_i)]

as relevance (Table 2): an explanation that moves the KPI in opposite
directions on the two segments is treated as irrelevant.

This module is the *reference* implementation — direct, segment-at-a-time,
used by tests and by one-off distance queries.  The vectorized bulk path
that the pipeline uses lives in :mod:`repro.segmentation.variance` and is
cross-checked against this one in the test suite.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.ca.cascade import TopMResult
from repro.diff.scorer import SegmentScorer
from repro.exceptions import SegmentationError

#: The eight within-segment variance designs evaluated in section 4.2.2.
VARIANTS = ("tse", "dist1", "dist2", "allpair", "Stse", "Sdist1", "Sdist2", "Sallpair")

#: Variants whose inner structure compares all object pairs instead of
#: object-vs-centroid (Eq. 10).
ALLPAIR_VARIANTS = frozenset({"allpair", "Sallpair"})


def dcg_weights(m: int) -> np.ndarray:
    """Discount weights ``1 / log2(r + 1)`` for ranks ``r = 1..m``."""
    ranks = np.arange(1, m + 1, dtype=np.float64)
    return 1.0 / np.log2(ranks + 1.0)


def ideal_dcg(result: TopMResult) -> float:
    """``DCG(P_i, E*_m(P_i))`` (Eq. 4): no rectification on the own segment."""
    total = 0.0
    for rank, gamma in enumerate(result.gammas, start=1):
        total += gamma / math.log2(rank + 1)
    return total


def dcg_cross(
    scorer: SegmentScorer,
    target: tuple[int, int],
    source_result: TopMResult,
) -> float:
    """``DCG(P_target, E*_m(P_source))`` (Eq. 3) with rectified relevance."""
    if not source_result.indices:
        return 0.0
    if len(source_result.taus) != len(source_result.indices):
        raise SegmentationError(
            "TopMResult lacks change-effect context; call with_context() first"
        )
    indices = np.asarray(source_result.indices)
    gammas, taus = scorer.gamma_tau(target[0], target[1], indices)
    total = 0.0
    for rank, (gamma_on_target, tau_on_target, tau_on_source) in enumerate(
        zip(gammas, taus, source_result.taus), start=1
    ):
        if int(tau_on_target) == int(tau_on_source):
            total += float(gamma_on_target) / math.log2(rank + 1)
    return total


def ndcg(
    scorer: SegmentScorer,
    target: tuple[int, int],
    target_result: TopMResult,
    source_result: TopMResult,
) -> float:
    """``NDCG(P_target, E*_m(P_source))`` (Eq. 5), clamped into [0, 1].

    Degenerate case: a flat target segment has ideal DCG 0; we define the
    NDCG as 1 there (a flat segment is perfectly explained by anything that
    contributes nothing) — the cross DCG is necessarily 0 too because every
    ``gamma(., P_target)`` vanishes.
    """
    denominator = ideal_dcg(target_result)
    if denominator <= 0.0:
        return 1.0
    numerator = dcg_cross(scorer, target, source_result)
    return min(numerator / denominator, 1.0)


def combine_ndcg(forward: float, backward: float, variant: str) -> float:
    """Distance from the two NDCG terms under a variance design variant.

    ``forward`` is ``NDCG(P_i, E*_m(P_j))`` (how well the *other* segment's
    explanations explain ``P_i``) and ``backward`` is the mirrored term.
    In the centroid-structured variants ``P_i`` is the centroid and ``P_j``
    the object, matching Eqs. 8 and 9.

    The ``S*`` variants replace the arithmetic mean in Eq. 6 with the
    quadratic (l2) mean; the one-sided variants square their single term.
    """
    if variant in ("tse", "allpair"):
        return 1.0 - (forward + backward) / 2.0
    if variant == "dist1":
        return 1.0 - forward
    if variant == "dist2":
        return 1.0 - backward
    if variant in ("Stse", "Sallpair"):
        return 1.0 - math.sqrt((forward * forward + backward * backward) / 2.0)
    if variant == "Sdist1":
        return 1.0 - forward * forward
    if variant == "Sdist2":
        return 1.0 - backward * backward
    raise SegmentationError(f"unknown variance variant {variant!r}; use one of {VARIANTS}")


def explanation_distance(
    scorer: SegmentScorer,
    segment_i: tuple[int, int],
    segment_j: tuple[int, int],
    result_i: TopMResult,
    result_j: TopMResult,
    variant: str = "tse",
) -> float:
    """``dist(P_i, P_j)`` (Eq. 6 and its variants), in ``[0, 1]``.

    ``result_i``/``result_j`` are the segments' top-m results (they carry
    the gamma values that form the ideal DCG denominators).
    """
    forward = ndcg(scorer, segment_i, result_i, result_j)
    backward = ndcg(scorer, segment_j, result_j, result_i)
    return combine_ndcg(forward, backward, variant)


def pad_results(
    results: Sequence[TopMResult], m: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Pack ragged top-m results into dense arrays for vectorized code.

    Returns ``(indices, gammas, taus, valid)``, each ``(len(results), m)``;
    missing ranks carry index 0 with ``valid`` False and zero gamma.
    ``taus`` here are the change effects on each result's own segment,
    re-derived from the sign convention that gamma >= 0 selections keep
    their stored sign via the result's ``taus`` field.
    """
    n = len(results)
    indices = np.zeros((n, m), dtype=np.intp)
    gammas = np.zeros((n, m), dtype=np.float64)
    taus = np.zeros((n, m), dtype=np.int8)
    valid = np.zeros((n, m), dtype=bool)
    for row, result in enumerate(results):
        k = min(len(result.indices), m)
        if k:
            indices[row, :k] = result.indices[:k]
            gammas[row, :k] = result.gammas[:k]
            taus[row, :k] = result.taus[:k]
            valid[row, :k] = True
    return indices, gammas, taus, valid
