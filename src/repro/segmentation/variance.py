"""Within-segment variance and bulk segment-cost precomputation (Eq. 7).

The K-segmentation DP needs ``cost(a, b) = |P| * var(P)`` for every
candidate segment ``P = [p_a, p_b]``.  :class:`SegmentationCosts`
precomputes that entire matrix:

1. score every *unit object* ``[p_x, p_x+1]`` and every candidate segment
   with the cascading-analysts solver (module b of the pipeline);
2. evaluate the NDCG-based distance between each object and its segment's
   centroid (Eqs. 3–6) — vectorized across the objects of a segment;
3. for the ``allpair`` variance structures (Eq. 10), precompute the full
   object-pair distance matrix once and reduce any segment's variance to a
   2-D prefix-sum lookup.

Restricted cut grids
--------------------
Sketching (section 5.3.2) re-runs the pipeline with candidate *cutting
positions* restricted to the sketch, but the within-segment variance is
still measured over **full-resolution unit objects** — the paper's phase-II
complexity ``O(m * |S|^2 * n)`` carries the factor ``n`` for exactly this
reason.  ``cut_positions`` therefore only restricts where segments may
start and end; objects are always the consecutive point pairs of the
underlying series.
"""

from __future__ import annotations

import time
from typing import Protocol, Sequence

import numpy as np

from repro.ca.cascade import TopMResult
from repro.diff.scorer import SegmentScorer
from repro.exceptions import SegmentationError
from repro.segmentation.distance import (
    ALLPAIR_VARIANTS,
    VARIANTS,
    dcg_weights,
    pad_results,
)


class TopMSolver(Protocol):
    """Anything that maps a gamma matrix to per-segment top-m results."""

    def solve_batch(self, gammas: np.ndarray) -> list[TopMResult]:  # pragma: no cover
        ...


class SegmentationCosts:
    """Precomputed ``|P| * var(P)`` for all candidate segments.

    Parameters
    ----------
    scorer:
        Difference scorer over the query's explanation cube.
    solver:
        Top-m solver (:class:`~repro.ca.cascade.CascadingAnalysts` or
        :class:`~repro.ca.guess_verify.GuessAndVerify`).
    m:
        Explanation quota per segment (paper default 3).
    variant:
        Variance design, one of
        :data:`repro.segmentation.distance.VARIANTS` (paper default
        ``tse``).
    cut_positions:
        Sorted original time positions where segments may start/end
        (default: every point).  Only the cut grid shrinks — the variance
        of a segment is always a sum over the full-resolution unit objects
        it covers.  Reduced indices used throughout the public API index
        into this array.
    max_length:
        When given, only segments spanning at most this many original time
        steps get a finite cost — the phase-I constraint of sketching.
    segments:
        When given, costs are computed only for these reduced ``(i, j)``
        pairs.  The resulting cost matrix is *not* suitable for the DP —
        this mode exists for evaluating a fixed scheme (Table 7) and for
        targeted queries.
    """

    def __init__(
        self,
        scorer: SegmentScorer,
        solver: TopMSolver,
        m: int = 3,
        variant: str = "tse",
        cut_positions: Sequence[int] | np.ndarray | None = None,
        max_length: int | None = None,
        segments: Sequence[tuple[int, int]] | None = None,
    ):
        if variant not in VARIANTS:
            raise SegmentationError(
                f"unknown variance variant {variant!r}; use one of {VARIANTS}"
            )
        n_times = scorer.cube.n_times
        if n_times < 2:
            raise SegmentationError("need a series of at least two points")
        if cut_positions is None:
            cut_positions = np.arange(n_times, dtype=np.intp)
        else:
            cut_positions = np.asarray(cut_positions, dtype=np.intp)
        if cut_positions.ndim != 1 or cut_positions.shape[0] < 2:
            raise SegmentationError("cut_positions must be a 1-D array of >= 2 points")
        if np.any(np.diff(cut_positions) <= 0):
            raise SegmentationError("cut_positions must be strictly increasing")
        if cut_positions[0] < 0 or cut_positions[-1] >= n_times:
            raise SegmentationError(
                f"cut_positions out of range for a series of length {n_times}"
            )
        if max_length is not None and max_length < int(np.diff(cut_positions).max()):
            raise SegmentationError(
                "max_length smaller than the widest gap between cut positions; "
                "no valid segmentation exists"
            )

        self._scorer = scorer
        self._solver = solver
        # The candidate tuple at construction time.  Appendable cubes
        # mutate in place but *replace* their explanations tuple when the
        # candidate set grows, so this captured reference is what
        # :meth:`extend` compares against.
        self._explanations = scorer.cube.explanations
        self._m = m
        self._variant = variant
        self._positions = cut_positions
        self._max_length = max_length
        self._only_segments = (
            None
            if segments is None
            else sorted({(int(i), int(j)) for i, j in segments})
        )
        self._n_points = cut_positions.shape[0]
        self._n_units = n_times - 1
        self._weights = dcg_weights(m)
        self.timings: dict[str, float] = {
            "precompute": 0.0,
            "cascading": 0.0,
            "segmentation": 0.0,
        }

        started = time.perf_counter()
        self._prepare_units()
        self.timings["precompute"] += time.perf_counter() - started

        self._results: dict[tuple[int, int], TopMResult] = {}
        self._cost = np.full((self._n_points, self._n_points), np.inf, dtype=np.float64)
        np.fill_diagonal(self._cost, 0.0)
        if variant in ALLPAIR_VARIANTS:
            self._fill_costs_allpair()
        else:
            self._fill_costs_centroid()

    # ------------------------------------------------------------------
    # Public accessors
    # ------------------------------------------------------------------
    @property
    def variant(self) -> str:
        return self._variant

    @property
    def m(self) -> int:
        return self._m

    @property
    def positions(self) -> np.ndarray:
        """Original time positions of the cut grid."""
        return self._positions

    @property
    def n_points(self) -> int:
        """Number of cut-grid points (``N``); the DP may place ``N - 1`` cuts."""
        return self._n_points

    @property
    def cost_matrix(self) -> np.ndarray:
        """``(N, N)`` matrix of ``|P| * var(P)``; ``inf`` marks disallowed."""
        return self._cost

    def cost(self, start: int, stop: int) -> float:
        """``|P| * var(P)`` for the reduced segment ``[start, stop]``."""
        if not 0 <= start < stop < self._n_points:
            raise SegmentationError(
                f"invalid reduced segment [{start}, {stop}] for {self._n_points} points"
            )
        return float(self._cost[start, stop])

    def variance(self, start: int, stop: int) -> float:
        """``var(P)`` (Eq. 7 / Eq. 10) for the reduced segment.

        The normalizer is the number of unit objects the segment covers,
        i.e. its span in original time steps.
        """
        span = int(self._positions[stop] - self._positions[start])
        return self.cost(start, stop) / span

    def total_cost(self, boundaries: Sequence[int]) -> float:
        """Objective value ``sum |P_i| var(P_i)`` of a segmentation scheme.

        ``boundaries`` are reduced cut-grid indices including both
        endpoints, e.g. ``[0, 3, 7, N-1]`` for a 3-segment scheme.
        """
        boundaries = list(boundaries)
        if boundaries[0] != 0 or boundaries[-1] != self._n_points - 1:
            raise SegmentationError("boundaries must start at 0 and end at N-1")
        total = 0.0
        for left, right in zip(boundaries, boundaries[1:]):
            total += self.cost(left, right)
        return total

    def unit_result(self, index: int) -> TopMResult:
        """Top-m result of the ``index``-th full-resolution unit object."""
        return self._unit_results[index]

    # ------------------------------------------------------------------
    # Incremental growth (streaming appends; paper section 8)
    # ------------------------------------------------------------------
    def extend(
        self,
        scorer: SegmentScorer,
        solver: TopMSolver,
        cut_positions: Sequence[int] | np.ndarray | None = None,
        first_changed_position: int | None = None,
    ) -> "SegmentationCosts":
        """A new :class:`SegmentationCosts` over a *grown* series, reusing
        this instance's work for the unchanged prefix.

        ``scorer`` must score the same candidate set over a series at
        least as long as this instance's; ``first_changed_position`` is
        the smallest time position whose values may differ from the
        series this instance was built on
        (:attr:`repro.cube.delta.AppendInfo.first_changed_position`,
        minus the smoothing half-window when the scorer smooths).  It
        defaults to the old length — a pure extension.

        Two classes of work are reused instead of recomputed:

        * **unit objects** strictly before the changed region keep their
          gamma/tau rows and their cascading-analysts results (each unit
          is solved independently, so the reuse is bit-exact);
        * **segment costs** whose right endpoint lies before the changed
          region are carried over from this instance's cost matrix and
          result cache (translated through original time positions, so
          the new cut grid may differ from the old one).

        Everything else — new units, and every segment touching the
        appended region — is computed fresh, so per-update cost is
        proportional to the appended suffix, not the total length.
        ``allpair`` variants reuse the unit structures but refill their
        pair-distance prefix sums in full (they are inherently quadratic).
        """
        new_cube = scorer.cube
        old_n_times = self._n_units + 1
        if new_cube.n_times < old_n_times:
            raise SegmentationError(
                "extend() requires a series at least as long as the original"
            )
        same_candidates = new_cube.explanations is self._explanations or (
            new_cube.n_explanations == len(self._explanations)
            and new_cube.explanations == self._explanations
        )
        if not same_candidates:
            raise SegmentationError(
                "extend() requires an unchanged candidate set; build fresh "
                "SegmentationCosts when candidates were added or re-filtered"
            )
        if first_changed_position is None:
            first_changed_position = old_n_times
        first_changed_position = max(0, min(first_changed_position, old_n_times))
        # Unit u spans positions [u, u+1]; it is reusable iff both lie
        # strictly before the changed region.
        keep_units = int(np.clip(first_changed_position - 1, 0, self._n_units))

        grown = SegmentationCosts.__new__(SegmentationCosts)
        grown._scorer = scorer
        grown._solver = solver
        grown._explanations = new_cube.explanations
        grown._m = self._m
        grown._variant = self._variant
        grown._max_length = None
        grown._only_segments = None
        grown._weights = self._weights
        n_times = new_cube.n_times
        if cut_positions is None:
            cut_positions = np.arange(n_times, dtype=np.intp)
        else:
            cut_positions = np.asarray(cut_positions, dtype=np.intp)
        if cut_positions.ndim != 1 or cut_positions.shape[0] < 2:
            raise SegmentationError("cut_positions must be a 1-D array of >= 2 points")
        if np.any(np.diff(cut_positions) <= 0):
            raise SegmentationError("cut_positions must be strictly increasing")
        if cut_positions[0] < 0 or cut_positions[-1] >= n_times:
            raise SegmentationError(
                f"cut_positions out of range for a series of length {n_times}"
            )
        grown._positions = cut_positions
        grown._n_points = cut_positions.shape[0]
        grown._n_units = n_times - 1
        grown.timings = {"precompute": 0.0, "cascading": 0.0, "segmentation": 0.0}

        started = time.perf_counter()
        grown._extend_units(self, keep_units)
        grown.timings["precompute"] += time.perf_counter() - started

        grown._results = {}
        grown._cost = np.full(
            (grown._n_points, grown._n_points), np.inf, dtype=np.float64
        )
        np.fill_diagonal(grown._cost, 0.0)
        if self._variant in ALLPAIR_VARIANTS:
            grown._fill_costs_allpair()
        else:
            carried = self._carry_costs(grown, first_changed_position)
            grown._fill_costs_centroid(skip=carried)
        return grown

    def _extend_units(self, previous: "SegmentationCosts", keep_units: int) -> None:
        """Unit structures for a grown series, reusing a valid prefix."""
        starts = np.arange(keep_units, self._n_units, dtype=np.intp)
        stops = starts + 1
        if starts.size:
            gamma_new, tau_new = self._scorer.gamma_tau_many(starts, stops)
            change_new = self._scorer.overall_changes(starts, stops)
            ca_started = time.perf_counter()
            solved = self._solver.solve_batch(gamma_new.T)
            self.timings["cascading"] += time.perf_counter() - ca_started
            new_results = [
                result.with_context(
                    taus=tuple(int(tau_new[index, x]) for index in result.indices),
                    source_segment=(int(starts[x]), int(stops[x])),
                )
                for x, result in enumerate(solved)
            ]
        else:
            gamma_new = np.empty((self._scorer.cube.n_explanations, 0))
            tau_new = np.empty((self._scorer.cube.n_explanations, 0), dtype=np.int8)
            change_new = np.empty(0)
            new_results = []
        self._gamma_unit = np.concatenate(
            [previous._gamma_unit[:, :keep_units], gamma_new], axis=1
        )
        self._tau_unit = np.concatenate(
            [previous._tau_unit[:, :keep_units], tau_new], axis=1
        )
        self._overall_change_unit = np.concatenate(
            [previous._overall_change_unit[:keep_units], change_new]
        )
        self._unit_results = previous._unit_results[:keep_units] + new_results
        self._unit_idx, self._unit_gamma, self._unit_tau, self._unit_valid = pad_results(
            self._unit_results, self._m
        )
        self._ideal_unit = self._unit_gamma @ self._weights

    def _carry_costs(
        self, grown: "SegmentationCosts", first_changed_position: int
    ) -> set[tuple[int, int]]:
        """Copy still-valid segment costs into ``grown``'s matrix.

        A segment is carried when its right endpoint lies strictly before
        the changed region; returns the carried reduced pairs so the fill
        skips them.  Translation goes through *original* positions, so the
        old and new cut grids may differ.
        """
        new_index_of = {int(p): i for i, p in enumerate(grown._positions)}
        carried: set[tuple[int, int]] = set()
        old_positions = self._positions
        finite_i, finite_j = np.nonzero(np.isfinite(self._cost))
        for i, j in zip(finite_i.tolist(), finite_j.tolist()):
            if j <= i:
                continue
            orig_i = int(old_positions[i])
            orig_j = int(old_positions[j])
            if orig_j >= first_changed_position:
                continue
            new_i = new_index_of.get(orig_i)
            new_j = new_index_of.get(orig_j)
            if new_i is None or new_j is None:
                continue
            grown._cost[new_i, new_j] = self._cost[i, j]
            carried.add((new_i, new_j))
            result = self._results.get((i, j))
            if result is not None:
                grown._results[(new_i, new_j)] = result
        return carried

    def segment_result(self, start: int, stop: int) -> TopMResult:
        """Top-m result of a reduced segment (lazily computed if needed)."""
        key = (int(start), int(stop))
        result = self._results.get(key)
        if result is None:
            result = self._solve_segments(
                np.asarray([self._positions[key[0]]]),
                np.asarray([self._positions[key[1]]]),
            )[0]
            self._results[key] = result
        return result

    # ------------------------------------------------------------------
    # Unit-object preparation (always full resolution)
    # ------------------------------------------------------------------
    def _prepare_units(self) -> None:
        starts = np.arange(self._n_units, dtype=np.intp)
        stops = starts + 1
        self._gamma_unit, self._tau_unit = self._scorer.gamma_tau_many(starts, stops)
        self._overall_change_unit = self._scorer.overall_changes(starts, stops)

        ca_started = time.perf_counter()
        unit_results = self._solver.solve_batch(self._gamma_unit.T)
        self.timings["cascading"] += time.perf_counter() - ca_started

        self._unit_results = [
            result.with_context(
                taus=tuple(
                    int(self._tau_unit[index, x]) for index in result.indices
                ),
                source_segment=(int(starts[x]), int(stops[x])),
            )
            for x, result in enumerate(unit_results)
        ]
        self._unit_idx, self._unit_gamma, self._unit_tau, self._unit_valid = pad_results(
            self._unit_results, self._m
        )
        self._ideal_unit = self._unit_gamma @ self._weights

    # ------------------------------------------------------------------
    # Segment solving helpers
    # ------------------------------------------------------------------
    def _segment_pairs(self) -> list[tuple[int, int]]:
        """Reduced ``(i, j)`` pairs needing a cost, honouring constraints.

        Pairs spanning exactly one unit object are excluded — their cost is
        0 by definition and their result is the unit's.
        """
        if self._only_segments is not None:
            return [
                (i, j)
                for i, j in self._only_segments
                if self._positions[j] - self._positions[i] > 1
            ]
        pairs: list[tuple[int, int]] = []
        for i in range(self._n_points - 1):
            for j in range(i + 1, self._n_points):
                span = self._positions[j] - self._positions[i]
                if self._max_length is not None and span > self._max_length:
                    break
                if span > 1:
                    pairs.append((i, j))
        return pairs

    def _solve_segments(
        self, starts: np.ndarray, stops: np.ndarray
    ) -> list[TopMResult]:
        """Solve top-m for segments given by original-position arrays."""
        gammas = self._scorer.gamma_many(starts, stops)
        ca_started = time.perf_counter()
        results = self._solver.solve_batch(gammas.T)
        self.timings["cascading"] += time.perf_counter() - ca_started
        annotated = []
        for column, result in enumerate(results):
            # Effects are only reported for each segment's m winners, so
            # fetch those instead of materializing the full tau matrix.
            winner_taus = self._scorer.tau(
                int(starts[column]),
                int(stops[column]),
                np.asarray(result.indices, dtype=np.intp),
            )
            result_taus = tuple(int(tau) for tau in winner_taus)
            annotated.append(
                result.with_context(
                    taus=result_taus,
                    source_segment=(int(starts[column]), int(stops[column])),
                )
            )
        return annotated

    # ------------------------------------------------------------------
    # Centroid-structured variants (tse, dist1, dist2, S-variants)
    # ------------------------------------------------------------------
    def _fill_costs_centroid(self, skip: set[tuple[int, int]] | None = None) -> None:
        pairs = self._segment_pairs()
        if skip:
            pairs = [pair for pair in pairs if pair not in skip]
        # Single-object segments cost 0 by definition: the object is its
        # own centroid.
        for i in range(self._n_points - 1):
            for j in range(i + 1, self._n_points):
                if self._positions[j] - self._positions[i] == 1:
                    self._cost[i, j] = 0.0
                    self._results[(i, j)] = self._unit_results[int(self._positions[i])]

        epsilon = max(self._scorer.cube.n_explanations, 1)
        chunk = int(np.clip(32_000_000 // (8 * epsilon), 64, 8192))
        for offset in range(0, len(pairs), chunk):
            block = pairs[offset : offset + chunk]
            starts = self._positions[np.asarray([i for i, _ in block], dtype=np.intp)]
            stops = self._positions[np.asarray([j for _, j in block], dtype=np.intp)]
            results = self._solve_segments(starts, stops)
            distance_started = time.perf_counter()
            for (i, j), result in zip(block, results):
                self._results[(i, j)] = result
                self._cost[i, j] = self._centroid_cost(i, j, result)
            self.timings["segmentation"] += time.perf_counter() - distance_started

    def _centroid_cost(self, i: int, j: int, centroid: TopMResult) -> float:
        """``sum_x dist(object_x, centroid)`` over the covered unit objects."""
        weights = self._weights
        start_pos = int(self._positions[i])
        stop_pos = int(self._positions[j])
        span = slice(start_pos, stop_pos)
        n_objects = stop_pos - start_pos

        # --- NDCG(object_x, E*(centroid)) per object ----------------------
        if centroid.indices:
            c_idx = np.asarray(centroid.indices, dtype=np.intp)
            c_tau = np.asarray(centroid.taus, dtype=np.int8)
            rel = self._gamma_unit[c_idx][:, span]  # (m_c, L)
            agree = self._tau_unit[c_idx][:, span] == c_tau[:, None]
            numerator = (rel * agree).T @ weights[: c_idx.shape[0]]  # (L,)
        else:
            numerator = np.zeros(n_objects)
        ideal = self._ideal_unit[span]
        centroid_explains_obj = np.ones(n_objects)
        positive = ideal > 0.0
        centroid_explains_obj[positive] = np.minimum(
            numerator[positive] / ideal[positive], 1.0
        )

        # --- NDCG(centroid, E*(object_x)) per object ----------------------
        ideal_centroid = (
            float(np.dot(centroid.gammas, weights[: len(centroid.gammas)]))
            if centroid.gammas
            else 0.0
        )
        if ideal_centroid > 0.0:
            cube = self._scorer.cube
            overall_change = (
                cube.overall_values[stop_pos] - cube.overall_values[start_pos]
            )
            obj_idx = self._unit_idx[span]  # (L, m)
            excluded = cube.excluded_values
            delta = overall_change - (
                excluded[obj_idx, stop_pos] - excluded[obj_idx, start_pos]
            )
            rel = self._scorer.metric.score(delta, overall_change)
            agree = np.sign(delta).astype(np.int8) == self._unit_tau[span]
            masked = rel * agree * self._unit_valid[span]
            numerator_back = masked @ weights
            obj_explains_centroid = np.minimum(numerator_back / ideal_centroid, 1.0)
        else:
            obj_explains_centroid = np.ones(n_objects)

        # combine_ndcg convention: first argument is NDCG(P_i, E*(P_j))
        # with P_i the centroid (Eq. 8).
        return float(
            np.sum(self._combine(obj_explains_centroid, centroid_explains_obj))
        )

    # ------------------------------------------------------------------
    # All-pair variants (Eq. 10)
    # ------------------------------------------------------------------
    def _fill_costs_allpair(self) -> None:
        distance_started = time.perf_counter()
        n_units = self._n_units
        # ndcg_pair[x, y] = NDCG(object_x, E*(object_y)) for all unit pairs.
        rel = self._gamma_unit[self._unit_idx]  # (n_units, m, n_units): [y, r, x]
        agree = self._tau_unit[self._unit_idx] == self._unit_tau[:, :, None]
        masked = rel * agree * self._unit_valid[:, :, None]
        numerator = np.einsum("yrx,r->yx", masked, self._weights)
        ndcg_pair = np.ones((n_units, n_units))
        positive = self._ideal_unit > 0.0
        ndcg_pair[positive, :] = np.minimum(
            numerator.T[positive, :] / self._ideal_unit[positive, None], 1.0
        )
        pair_distance = self._combine(ndcg_pair, ndcg_pair.T)
        np.fill_diagonal(pair_distance, 0.0)

        # 2-D prefix sums make every segment's pair total an O(1) lookup.
        prefix = np.zeros((n_units + 1, n_units + 1))
        prefix[1:, 1:] = np.cumsum(np.cumsum(pair_distance, axis=0), axis=1)
        requested = (
            None if self._only_segments is None else set(self._only_segments)
        )
        for i in range(self._n_points - 1):
            for j in range(i + 1, self._n_points):
                lo = int(self._positions[i])
                hi = int(self._positions[j])
                span = hi - lo
                if self._max_length is not None and span > self._max_length:
                    break
                if requested is not None and (i, j) not in requested and span > 1:
                    continue
                if span == 1:
                    self._cost[i, j] = 0.0
                    continue
                block = prefix[hi, hi] - prefix[lo, hi] - prefix[hi, lo] + prefix[lo, lo]
                n_pairs = span * (span - 1) / 2.0
                variance = (block / 2.0) / n_pairs
                self._cost[i, j] = span * variance
        self.timings["segmentation"] += time.perf_counter() - distance_started

    # ------------------------------------------------------------------
    def _combine(self, forward: np.ndarray, backward: np.ndarray) -> np.ndarray:
        """Vectorized :func:`repro.segmentation.distance.combine_ndcg`."""
        variant = self._variant
        if variant in ("tse", "allpair"):
            return 1.0 - (forward + backward) / 2.0
        if variant == "dist1":
            return 1.0 - forward
        if variant == "dist2":
            return 1.0 - backward
        if variant in ("Stse", "Sallpair"):
            return 1.0 - np.sqrt((forward * forward + backward * backward) / 2.0)
        if variant == "Sdist1":
            return 1.0 - forward * forward
        return 1.0 - backward * backward


def scheme_total_variance(
    scorer: SegmentScorer,
    solver: TopMSolver,
    boundaries: Sequence[int],
    m: int = 3,
    variant: str = "tse",
) -> tuple[float, list[float]]:
    """Full-resolution objective of a fixed segmentation scheme.

    ``boundaries`` are *original* time positions (endpoints included).
    Only the scheme's own segments are scored, so this stays cheap even
    when the scheme came from a sketch-restricted search — it is how the
    optimization-quality comparison (Table 7) evaluates Vanilla and O1+O2
    on equal footing.

    Returns ``(total, per_segment_variances)``.
    """
    pairs = list(zip(boundaries, boundaries[1:]))
    costs = SegmentationCosts(scorer, solver, m=m, variant=variant, segments=pairs)
    per_segment = [costs.variance(i, j) for i, j in pairs]
    total = sum(costs.cost(i, j) for i, j in pairs)
    return float(total), per_segment
