"""Sketching optimization (paper section 5.3.2, ``O2``).

Phase I selects a *sketch* — a small set of promising cutting positions —
by running the normal pipeline under the constraint that every segment
spans at most ``L`` original time steps, asking for ``|S|`` segments; the
resulting boundaries are the sketch points.  Phase II (driven by the
caller) re-runs the pipeline over the sketch points only, shrinking the
quadratic/cubic terms from ``n`` to ``|S|``.

Paper defaults: ``L = min(0.05 * n, 20)`` and ``|S| = 3n / L``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.diff.scorer import SegmentScorer
from repro.exceptions import SegmentationError
from repro.segmentation.dp import solve_k_segmentation
from repro.segmentation.variance import SegmentationCosts, TopMSolver


def default_sketch_parameters(n_points: int) -> tuple[int, int]:
    """Paper defaults ``(L, |S|)`` for a series of ``n_points`` points.

    The size is clamped so that the phase-I DP stays feasible:
    ``|S| <= n - 1`` segments must exist, and ``|S| * L`` must cover the
    series.
    """
    if n_points < 3:
        raise SegmentationError("sketching needs at least three points")
    length_cap = max(2, min(int(math.ceil(0.05 * n_points)), 20))
    size = int(math.ceil(3 * n_points / length_cap))
    size = min(size, n_points - 1)
    size = max(size, int(math.ceil((n_points - 1) / length_cap)))
    return length_cap, size


def select_sketch(
    scorer: SegmentScorer,
    solver: TopMSolver,
    m: int = 3,
    variant: str = "tse",
    length_cap: int | None = None,
    size: int | None = None,
    timings: dict[str, float] | None = None,
) -> np.ndarray:
    """Phase I: the sketch positions (original time positions, sorted).

    Runs K-segmentation with ``K = |S|`` under the max-segment-length
    constraint ``L`` and returns the scheme's boundaries, which always
    include both series endpoints.
    """
    n_points = scorer.cube.n_times
    default_length, default_size = default_sketch_parameters(n_points)
    if length_cap is None:
        length_cap = default_length
    if size is None:
        size = default_size
    if size * length_cap < n_points - 1:
        raise SegmentationError(
            f"sketch of {size} segments with length cap {length_cap} cannot "
            f"cover {n_points} points"
        )
    costs = SegmentationCosts(
        scorer,
        solver,
        m=m,
        variant=variant,
        max_length=length_cap,
    )
    if timings is not None:
        for key, value in costs.timings.items():
            timings[key] = timings.get(key, 0.0) + value
    schemes = solve_k_segmentation(costs.cost_matrix, k_max=size)
    feasible = [scheme for scheme in schemes if scheme.k == min(size, n_points - 1)]
    if not feasible:
        # The largest feasible K under the constraint still yields a sketch.
        feasible = [schemes[-1]]
    boundaries = np.asarray(feasible[0].boundaries, dtype=np.intp)
    return costs.positions[boundaries]
