"""The ``.npz`` columnar snapshot format and its memory-mapped source.

``repro store convert`` writes a relation as an *uncompressed* ``.npz``
archive: one array member per column plus a JSON header (column roles, row
count, a content digest, and whether the row order is chunk-safe).  The
snapshot canonicalizes cells to the CSV dtype policy — dimension and time
cells become text, measures float64 — so a CSV → npz conversion
round-trips to an identical :meth:`~repro.relation.table.Relation.fingerprint`.

Loading is designed to avoid materialization twice over:

* the **fingerprint** is read straight from the JSON header (the content
  digest was computed at convert time), so keying the rollup cache costs
  one small read — no column bytes are touched;
* the **columns** are memory-mapped in place: the archive is written
  uncompressed (``np.savez``), so each member's array payload is a
  contiguous byte range of the zip file and can be ``np.memmap``-ed
  directly.  Float measure columns stay mapped all the way into the
  relation; text columns are decoded per chunk.  Anything unexpected
  (compressed members, exotic npy versions) falls back to a plain
  ``np.load`` — slower, never wrong.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import SchemaError
from repro.relation.schema import AttributeKind, Schema
from repro.relation.table import Relation
from repro.store.base import DEFAULT_CHUNK_ROWS, DataSource, compose_fingerprint

#: Bump when the snapshot layout changes; older files then fail loudly.
NPZ_FORMAT = 1

#: Sanity tag distinguishing store snapshots from arbitrary npz files.
NPZ_KIND = "repro.store/npz"


def _canonical_text_cells(values: np.ndarray) -> list[str]:
    """Column cells canonicalized to text (the CSV dtype policy)."""
    cells = [v if isinstance(v, str) else str(v) for v in values.tolist()]
    for cell in cells:
        if cell.endswith("\x00"):
            # Fixed-width U storage zero-pads, so a trailing NUL would be
            # silently stripped on load; refuse to write a lossy snapshot.
            raise SchemaError(
                "cannot snapshot a text cell with a trailing NUL character"
            )
    return cells


def _chunk_safe(relation: Relation) -> bool:
    """Whether any prefix-chunking of the rows satisfies the append contract.

    A chunked cube build appends one chunk after another; a *new* time
    label must always sort after every label seen in earlier chunks.
    That holds for every possible chunk boundary iff the first
    occurrences of the distinct labels appear in label-sorted order.
    """
    time_attr = relation.schema.time_name()
    if time_attr is None or relation.n_rows == 0:
        return True
    codes, _ = relation.time_positions(time_attr)
    first_occurrence = np.unique(codes, return_index=True)[1]
    return bool(np.all(np.diff(first_occurrence) > 0))


def write_npz(relation: Relation, path: str | Path) -> dict:
    """Persist a relation as a columnar snapshot; returns the header.

    Members are stored uncompressed so :class:`NpzSource` can memory-map
    them.  The header's ``content_digest`` is the relation's fingerprint
    — computed here, once, so later fingerprint queries never touch the
    column bytes.
    """
    path = Path(path)
    schema = relation.schema
    arrays: dict[str, np.ndarray] = {}
    for position, name in enumerate(schema.names):
        column = relation.column(name)
        if schema.attribute(name).is_measure:
            arrays[f"c{position}"] = np.asarray(column, dtype=np.float64)
        else:
            cells = _canonical_text_cells(column)
            arrays[f"c{position}"] = (
                np.asarray(cells) if cells else np.empty(0, dtype="<U1")
            )
    header = {
        "format": NPZ_FORMAT,
        "kind": NPZ_KIND,
        "columns": [[a.name, a.kind.value] for a in schema],
        "n_rows": relation.n_rows,
        "content_digest": relation.fingerprint(),
        "chunk_safe": _chunk_safe(relation),
    }
    header_bytes = json.dumps(header).encode("utf-8")
    with open(path, "wb") as handle:
        np.savez(handle, header=np.frombuffer(header_bytes, dtype=np.uint8), **arrays)
    return header


def _read_header(path: Path) -> dict:
    try:
        with np.load(path, allow_pickle=False) as data:
            header = json.loads(bytes(data["header"].tobytes()).decode("utf-8"))
    except Exception as error:
        raise SchemaError(f"{path} is not a readable store snapshot: {error}") from None
    if header.get("kind") != NPZ_KIND or header.get("format") != NPZ_FORMAT:
        raise SchemaError(
            f"{path} is not a repro.store npz snapshot (kind/format mismatch)"
        )
    return header


def _mmap_member(path: Path, member: str) -> np.ndarray:
    """Memory-map one uncompressed npy member of a zip archive.

    Any C-order array maps, whatever its rank — column snapshots are 1-D,
    the finalized-cube artifact (:mod:`repro.cube.artifact`) maps its
    ``(epsilon, n)`` series matrices through the same helper.  Raises
    ``ValueError`` for anything the fast path cannot represent
    (compressed member, Fortran order, object dtype, 0-d scalar, unknown
    npy version); the caller falls back to ``np.load``.
    """
    with zipfile.ZipFile(path) as archive:
        info = archive.getinfo(f"{member}.npy")
    if info.compress_type != zipfile.ZIP_STORED:
        raise ValueError("member is compressed")
    with open(path, "rb") as handle:
        handle.seek(info.header_offset)
        local = handle.read(30)
        if len(local) != 30 or local[:4] != b"PK\x03\x04":
            raise ValueError("bad local file header")
        name_len = int.from_bytes(local[26:28], "little")
        extra_len = int.from_bytes(local[28:30], "little")
        handle.seek(info.header_offset + 30 + name_len + extra_len)
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
        else:
            raise ValueError(f"unsupported npy version {version}")
        if fortran or dtype.hasobject or len(shape) == 0:
            raise ValueError("member layout not mappable")
        offset = handle.tell()
    return np.memmap(path, dtype=dtype, mode="r", shape=shape, offset=offset)


class NpzSource(DataSource):
    """A columnar snapshot file, memory-mapped on load.

    The role binding defaults to what the snapshot recorded; explicit
    ``dimensions``/``measures``/``time`` arguments re-bind a subset of the
    stored columns (e.g. to explain by fewer attributes).  Each role is
    overridden independently — ``dimensions=["region"]`` alone keeps the
    snapshot's measure and time columns.
    """

    scheme = "npz"

    def __init__(
        self,
        path: str | Path,
        dimensions: Sequence[str] = (),
        measures: Sequence[str] = (),
        time: str | None = None,
        default_aggregate: str = "sum",
        mmap: bool = True,
    ):
        self._path = Path(path)
        self._mmap = mmap
        self._header: dict | None = None
        self._arrays: dict[str, np.ndarray] | None = None
        self._override = (tuple(dimensions), tuple(measures), time)
        self._schema: Schema | None = None
        self.default_aggregate = default_aggregate

    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    @property
    def uri(self) -> str:
        return f"npz:{self._path}"

    def _load_header(self) -> dict:
        if self._header is None:
            self._header = _read_header(self._path)
        return self._header

    @property
    def stored_schema(self) -> Schema:
        """The role assignment recorded in the snapshot header."""
        header = self._load_header()
        from repro.relation.schema import Attribute

        return Schema(
            Attribute(name, AttributeKind(kind)) for name, kind in header["columns"]
        )

    @property
    def schema(self) -> Schema:
        if self._schema is None:
            dimensions, measures, time = self._override
            stored = self.stored_schema
            if not dimensions and not measures and time is None:
                self._schema = stored
            else:
                # Merge per role: an unset override keeps the snapshot's
                # recorded binding, so e.g. dimensions=["region"] alone
                # still knows the measure and time columns.
                self._schema = Schema.build(
                    dimensions=dimensions or stored.dimension_names(),
                    measures=measures or stored.measure_names(),
                    time=time or stored.time_name(),
                )
                self._check_columns(self.column_names())
        return self._schema

    def column_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self._load_header()["columns"])

    def count_rows(self) -> int | None:
        return int(self._load_header()["n_rows"])

    @property
    def chunk_safe(self) -> bool:
        """Whether the stored row order satisfies the append contract."""
        return bool(self._load_header().get("chunk_safe", False))

    def fingerprint(self) -> str:
        """Header-only: the content digest was computed at convert time."""
        return compose_fingerprint(
            (self.scheme, repr(self.schema), self._load_header()["content_digest"])
        )

    # ------------------------------------------------------------------
    def _stored_arrays(self) -> dict[str, np.ndarray]:
        """The raw stored column arrays, memory-mapped when possible."""
        if self._arrays is not None:
            return self._arrays
        header = self._load_header()
        names = [name for name, _ in header["columns"]]
        arrays: dict[str, np.ndarray] = {}
        fallback: "np.lib.npyio.NpzFile | None" = None
        try:
            for position, name in enumerate(names):
                member = f"c{position}"
                if self._mmap:
                    try:
                        arrays[name] = _mmap_member(self._path, member)
                        continue
                    except (ValueError, KeyError, OSError):
                        pass
                if fallback is None:
                    fallback = np.load(self._path, allow_pickle=False)
                arrays[name] = np.asarray(fallback[member])
        finally:
            if fallback is not None:
                fallback.close()
        self._arrays = arrays
        return arrays

    def _columns_for(
        self, arrays: dict[str, np.ndarray], window: slice
    ) -> dict[str, np.ndarray]:
        """Bound-schema columns for a row window, CSV dtype policy applied."""
        columns: dict[str, np.ndarray] = {}
        for name in self.schema.names:
            stored = arrays[name][window]
            if self.schema.attribute(name).is_measure:
                try:
                    columns[name] = np.asarray(stored, dtype=np.float64)
                except (TypeError, ValueError):
                    raise SchemaError(
                        f"snapshot column {name!r} is not numeric but is bound "
                        "as a measure"
                    ) from None
            elif stored.dtype.kind == "U":
                # Text cells become Python str objects (the CSV policy),
                # so fingerprints match a CSV load of the same table.
                # astype boxes each U cell as str in one C pass — no
                # per-cell Python loop in the per-chunk ingest path.
                columns[name] = stored.astype(object)
            else:
                # Non-text storage bound as a dimension (rare re-bind of
                # a numeric column): canonicalize cells to str.
                columns[name] = np.asarray(
                    [str(v) for v in stored.tolist()], dtype=object
                )
        return columns

    def read(self) -> Relation:
        arrays = self._stored_arrays()
        self._check_columns(tuple(arrays))
        return Relation(self._columns_for(arrays, slice(None)), self.schema)

    def iter_chunks(self, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> Iterator[Relation]:
        if chunk_rows < 1:
            raise SchemaError(f"chunk_rows must be >= 1, got {chunk_rows}")
        arrays = self._stored_arrays()
        self._check_columns(tuple(arrays))
        n_rows = int(self._load_header()["n_rows"])
        for start in range(0, n_rows, chunk_rows):
            window = slice(start, min(start + chunk_rows, n_rows))
            yield Relation(self._columns_for(arrays, window), self.schema)
        if n_rows == 0:
            yield Relation(self._columns_for(arrays, slice(None)), self.schema)
