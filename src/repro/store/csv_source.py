"""CSV-backed :class:`~repro.store.base.DataSource`.

Parsing is the column-batched path of :mod:`repro.relation.csvio` — the
stdlib ``csv.reader`` C loop, one ``zip`` transpose, one vectorized numpy
float conversion per measure column — applied either to the whole file
(:meth:`CsvSource.read`) or to bounded row batches
(:meth:`CsvSource.iter_chunks`), so a multi-gigabyte CSV can feed an
out-of-core cube build without ever being resident as a relation.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator, Sequence

from repro.exceptions import SchemaError
from repro.relation.csvio import columns_from_csv_rows, parse_csv_text
from repro.relation.schema import Schema
from repro.relation.table import Relation
from repro.store.base import (
    DEFAULT_CHUNK_ROWS,
    DataSource,
    compose_fingerprint,
    file_digest,
)


class CsvSource(DataSource):
    """A CSV file bound to (dimensions, measures, time) roles.

    The binding is explicit — a CSV header carries no role information —
    and unnamed CSV columns are dropped, exactly like
    :func:`~repro.relation.csvio.read_csv`.
    """

    scheme = "csv"

    def __init__(
        self,
        path: str | Path,
        dimensions: Sequence[str] = (),
        measures: Sequence[str] = (),
        time: str | None = None,
        default_aggregate: str = "sum",
    ):
        self._path = Path(path)
        self._schema = Schema.build(dimensions=dimensions, measures=measures, time=time)
        self.default_aggregate = default_aggregate

    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    @property
    def uri(self) -> str:
        return f"csv:{self._path}"

    @property
    def schema(self) -> Schema:
        return self._schema

    def column_names(self) -> tuple[str, ...]:
        with open(self._path, newline="", encoding="utf-8") as handle:
            header = next(csv.reader(handle), None)
        if header is None:
            raise SchemaError(f"CSV {self._path} is empty (no header row)")
        return tuple(header)

    def fingerprint(self) -> str:
        """Streaming byte hash of the file, framed with the role binding."""
        return compose_fingerprint(
            (self.scheme, repr(self._schema), file_digest(self._path))
        )

    # ------------------------------------------------------------------
    def _open(self):
        handle = open(self._path, newline="", encoding="utf-8")
        reader = csv.reader(handle)
        header = next(reader, None)
        self._check_columns(header or ())
        return handle, reader, list(header or ())

    def read(self) -> Relation:
        with open(self._path, newline="", encoding="utf-8") as handle:
            text = handle.read()
        return parse_csv_text(text, self._schema, origin=self.uri)

    def iter_chunks(self, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> Iterator[Relation]:
        if chunk_rows < 1:
            raise SchemaError(f"chunk_rows must be >= 1, got {chunk_rows}")
        handle, reader, header = self._open()
        with handle:
            batch: list[Sequence[str]] = []
            consumed = 0
            for row in reader:
                batch.append(row)
                if len(batch) >= chunk_rows:
                    yield Relation(
                        columns_from_csv_rows(
                            batch, header, self._schema, row_offset=consumed
                        ),
                        self._schema,
                    )
                    consumed += len(batch)
                    batch = []
            if batch:
                yield Relation(
                    columns_from_csv_rows(
                        batch, header, self._schema, row_offset=consumed
                    ),
                    self._schema,
                )
