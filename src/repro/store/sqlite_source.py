"""SQLite-backed :class:`~repro.store.base.DataSource` with pushdown.

The stdlib ``sqlite3`` driver gives three pushdowns the file formats
cannot:

* **column pushdown** — only the bound schema's columns are selected, so
  a wide table never materializes unused attributes;
* **predicate pushdown** — an optional ``where`` clause (URI parameter
  ``where=...``, passed verbatim) filters rows inside the engine, so the
  relation only ever holds the slice being explained;
* **GROUP-BY pre-aggregation pushdown** — with ``preaggregate=1`` the
  engine reduces the rows to one per ``(time, dimensions...)`` group with
  ``SUM(measure)`` before they leave SQLite.  The cube then scatters
  pre-reduced rows: its aggregated *series* are numerically the same
  (SUM is associative), but candidate ``supports`` count distinct groups
  instead of raw rows — so the support filter sees different counts, and
  the pushdown is only allowed for the ``sum`` aggregate and must be
  opted into explicitly.

Reads are streamed with ``fetchmany`` off a single cursor, so
:meth:`SqliteSource.iter_chunks` holds one chunk of rows at a time and
yields exactly the rows :meth:`SqliteSource.read` would, in the same
order (both run the identical SQL).
"""

from __future__ import annotations

import sqlite3
from contextlib import closing
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import QueryError, SchemaError
from repro.relation.schema import Schema
from repro.relation.table import Relation
from repro.store.base import (
    DEFAULT_CHUNK_ROWS,
    DataSource,
    compose_fingerprint,
    file_digest,
)


def quote_identifier(name: str) -> str:
    """SQL-quote a table/column identifier (doubles embedded quotes)."""
    return '"' + name.replace('"', '""') + '"'


class SqliteSource(DataSource):
    """One table (or view) of a SQLite database, bound to schema roles.

    Parameters
    ----------
    path / table:
        Database file and the table to read.
    dimensions / measures / time:
        The role binding; all named columns must exist in the table.
    where:
        Optional SQL boolean expression appended as ``WHERE ...``
        (predicate pushdown).  Passed verbatim — it is the caller's own
        database.
    order_by_time:
        Append ``ORDER BY <time>`` so the returned rows are time-sorted —
        this makes any table safe for the chunked out-of-core build, at
        the cost of canonicalizing the row order (URI parameter
        ``order=time``).  Off by default: the natural scan order
        round-trips a converted relation exactly.
    preaggregate:
        Enable the GROUP-BY pushdown (``sum`` aggregate only; see the
        module docstring for the supports caveat).
    """

    scheme = "sqlite"

    def __init__(
        self,
        path: str | Path,
        table: str,
        dimensions: Sequence[str] = (),
        measures: Sequence[str] = (),
        time: str | None = None,
        where: str | None = None,
        order_by_time: bool = False,
        preaggregate: bool = False,
        default_aggregate: str = "sum",
    ):
        self._path = Path(path)
        self._table = table
        self._schema = Schema.build(dimensions=dimensions, measures=measures, time=time)
        self._where = where
        self._order_by_time = order_by_time
        self._preaggregate = preaggregate
        self.default_aggregate = default_aggregate
        if preaggregate:
            if default_aggregate != "sum":
                raise QueryError(
                    "preaggregate pushdown supports only the sum aggregate "
                    f"(got {default_aggregate!r}); AVG/VAR states cannot be "
                    "rebuilt from pre-reduced rows"
                )
            if len(self._schema.measure_names()) != 1:
                raise QueryError(
                    "preaggregate pushdown needs exactly one measure column"
                )

    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    @property
    def table(self) -> str:
        return self._table

    @property
    def preaggregate(self) -> bool:
        return self._preaggregate

    @property
    def uri(self) -> str:
        params = [f"table={self._table}"]
        if self._where:
            params.append(f"where={self._where}")
        if self._order_by_time:
            params.append("order=time")
        if self._preaggregate:
            params.append("preaggregate=1")
        return f"sqlite:{self._path}?{'&'.join(params)}"

    @property
    def schema(self) -> Schema:
        return self._schema

    def _connect(self) -> sqlite3.Connection:
        if not self._path.is_file():
            raise SchemaError(f"no such SQLite database: {self._path}")
        return sqlite3.connect(f"file:{self._path}?mode=ro", uri=True)

    def column_names(self) -> tuple[str, ...]:
        with closing(self._connect()) as connection:
            rows = connection.execute(
                f"PRAGMA table_info({quote_identifier(self._table)})"
            ).fetchall()
        if not rows:
            raise SchemaError(
                f"database {self._path} has no table {self._table!r}"
            )
        return tuple(row[1] for row in rows)

    def count_rows(self) -> int | None:
        """Row count via the engine (cheap; honors the WHERE pushdown)."""
        query = f"SELECT COUNT(*) FROM {quote_identifier(self._table)}"
        if self._where:
            query += f" WHERE {self._where}"
        if self._preaggregate:
            grouped = ", ".join(
                quote_identifier(name)
                for name in self._schema.names
                if not self._schema.attribute(name).is_measure
            )
            query = (
                f"SELECT COUNT(*) FROM (SELECT 1 FROM "
                f"{quote_identifier(self._table)}"
                + (f" WHERE {self._where}" if self._where else "")
                + (f" GROUP BY {grouped}" if grouped else "")
                + ")"
            )
        with closing(self._connect()) as connection:
            try:
                return int(connection.execute(query).fetchone()[0])
            except sqlite3.Error as error:
                raise QueryError(f"count query failed on {self.uri}: {error}") from None

    def fingerprint(self) -> str:
        """Byte hash of the database plus any live sidecar files.

        O(file bytes) with no SQL parsing or row materialization.  A
        WAL-mode database keeps committed rows in the ``-wal`` sidecar
        until a checkpoint (and a hot ``-journal`` marks a pending
        rollback), so both are folded in when present — otherwise two
        byte-identical main files could carry different data and the
        rollup cache would serve a stale cube.  A logically-equivalent
        rewrite (``VACUUM``, a checkpoint) changes the fingerprint —
        that costs a cache miss, never a stale cube.
        """
        parts = [
            self.scheme,
            repr(self._schema),
            self._table,
            self._where or "",
            f"order={int(self._order_by_time)}",
            f"preagg={int(self._preaggregate)}",
            file_digest(self._path),
        ]
        for suffix in ("-wal", "-journal"):
            sidecar = Path(f"{self._path}{suffix}")
            parts.append(file_digest(sidecar) if sidecar.is_file() else "absent")
        return compose_fingerprint(parts)

    # ------------------------------------------------------------------
    def _select_sql(self) -> str:
        names = self._schema.names
        time_attr = self._schema.time_name()
        if self._preaggregate:
            grouped = [
                name
                for name in names
                if not self._schema.attribute(name).is_measure
            ]
            (measure,) = self._schema.measure_names()
            select = [
                f"SUM({quote_identifier(measure)})"
                if name == measure
                else quote_identifier(name)
                for name in names
            ]
            sql = (
                f"SELECT {', '.join(select)} FROM {quote_identifier(self._table)}"
            )
            if self._where:
                sql += f" WHERE {self._where}"
            sql += f" GROUP BY {', '.join(quote_identifier(g) for g in grouped)}"
            if self._order_by_time and time_attr:
                sql += f" ORDER BY {quote_identifier(time_attr)}"
            return sql
        sql = (
            f"SELECT {', '.join(quote_identifier(name) for name in names)} "
            f"FROM {quote_identifier(self._table)}"
        )
        if self._where:
            sql += f" WHERE {self._where}"
        if self._order_by_time and time_attr:
            sql += f" ORDER BY {quote_identifier(time_attr)}"
        return sql

    def _execute(self, connection: sqlite3.Connection) -> sqlite3.Cursor:
        self._check_columns(self.column_names())
        try:
            return connection.execute(self._select_sql())
        except sqlite3.Error as error:
            raise QueryError(f"query failed on {self.uri}: {error}") from None

    def _rows_to_relation(self, rows: Sequence[tuple]) -> Relation:
        names = self._schema.names
        transposed = tuple(zip(*rows)) if rows else ((),) * len(names)
        columns: dict[str, np.ndarray] = {}
        for position, name in enumerate(names):
            cells = transposed[position]
            if self._schema.attribute(name).is_measure:
                try:
                    columns[name] = np.asarray(cells, dtype=np.float64)
                except (TypeError, ValueError):
                    raise SchemaError(
                        f"measure column {name!r} of {self.uri} has a "
                        "non-numeric (or NULL) cell"
                    ) from None
            else:
                # Cells keep the types the engine hands back; TEXT columns
                # (what `repro store convert` writes) arrive as str, so
                # fingerprints match a CSV load of the same table.
                column = np.empty(len(cells), dtype=object)
                column[:] = cells
                columns[name] = column
        return Relation(columns, self._schema)

    def read(self) -> Relation:
        with closing(self._connect()) as connection:
            cursor = self._execute(connection)
            rows = cursor.fetchall()
        return self._rows_to_relation(rows)

    def iter_chunks(self, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> Iterator[Relation]:
        if chunk_rows < 1:
            raise SchemaError(f"chunk_rows must be >= 1, got {chunk_rows}")
        with closing(self._connect()) as connection:
            cursor = self._execute(connection)
            yielded = False
            while True:
                rows = cursor.fetchmany(chunk_rows)
                if not rows:
                    break
                yielded = True
                yield self._rows_to_relation(rows)
            if not yielded:
                yield self._rows_to_relation([])


def write_sqlite(relation: Relation, path: str | Path, table: str) -> None:
    """Persist a relation into a SQLite table (``repro store convert``).

    Text roles become ``TEXT`` columns, measures ``REAL`` (8-byte IEEE);
    rows are inserted in relation order, so a natural-order read returns
    them unchanged.  An existing table of the same name is replaced.

    One documented lossy corner: SQLite's record format stores an
    integral REAL as an integer, which erases the sign of ``-0.0`` — it
    reads back as ``+0.0`` (every other float64 round-trips bit-exactly,
    integral values included).
    """
    path = Path(path)
    schema = relation.schema
    column_defs = ", ".join(
        f"{quote_identifier(name)} "
        + ("REAL" if schema.attribute(name).is_measure else "TEXT")
        for name in schema.names
    )
    placeholders = ", ".join("?" for _ in schema.names)
    cells = [relation.column(name).tolist() for name in schema.names]
    connection = sqlite3.connect(path)
    try:
        with connection:
            connection.execute(f"DROP TABLE IF EXISTS {quote_identifier(table)}")
            connection.execute(
                f"CREATE TABLE {quote_identifier(table)} ({column_defs})"
            )
            connection.executemany(
                f"INSERT INTO {quote_identifier(table)} VALUES ({placeholders})",
                zip(*cells) if cells else [],
            )
    finally:
        connection.close()
