"""Source URI grammar and resolution.

Every entry point that used to take a CSV path now takes a *source URI*::

    csv:sales.csv?time=day&dimensions=region,channel&measure=revenue
    npz:sales.npz
    sqlite:sales.db?table=sales&time=day&dimensions=region&measure=revenue
    sqlite:sales.db?table=sales&...&where=region='EU'&preaggregate=1&order=time

Grammar
-------
``scheme ':' path [ '?' key '=' value ('&' key '=' value)* ]`` with

* ``scheme`` one of ``csv`` / ``npz`` / ``sqlite``; a bare path without a
  known scheme resolves by file extension (``.csv``, ``.npz``,
  ``.db``/``.sqlite``/``.sqlite3``);
* shared parameters ``time``, ``dimensions`` (comma-separated, alias
  ``dims``), ``measure`` (comma-separated, alias ``measures``) and
  ``aggregate`` binding the relation roles — npz snapshots carry their
  roles in the file, so all are optional there;
* sqlite-only parameters ``table`` (required), ``where`` (verbatim
  predicate pushdown), ``order=time`` (engine-side time sort, making any
  table chunk-safe) and ``preaggregate=0|1`` (GROUP-BY pushdown).

Keys and values are percent-decoded, so values may contain ``&``/``=``/
spaces when escaped (``%26``/``%3D``/``%20``).  Unlike HTML form parsing,
``+`` is **literal** — a ``where=cat='a+b'`` pushdown must reach SQLite
verbatim.  Explicit keyword arguments to :func:`resolve_source` override
URI parameters — the CLI's ``--time``/``--dimensions``/``--measure``
flags ride through them.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Sequence
from urllib.parse import unquote

from repro.exceptions import QueryError
from repro.store.base import DataSource
from repro.store.csv_source import CsvSource
from repro.store.npz_source import NpzSource
from repro.store.sqlite_source import SqliteSource

#: Recognized URI schemes.
SOURCE_SCHEMES = ("csv", "npz", "sqlite")

#: File extensions resolved to a scheme when the URI names none.
EXTENSION_SCHEMES = {
    ".csv": "csv",
    ".npz": "npz",
    ".db": "sqlite",
    ".sqlite": "sqlite",
    ".sqlite3": "sqlite",
}

_SCHEME_RE = re.compile(r"^([a-zA-Z][a-zA-Z0-9+.-]*):")

_SHARED_PARAMS = {"time", "dimensions", "dims", "measure", "measures", "aggregate"}
_SQLITE_PARAMS = {"table", "where", "order", "preaggregate"}


def is_source_uri(text: str) -> bool:
    """Whether ``text`` names a data source rather than a bundled dataset.

    True for an explicit ``csv:``/``npz:``/``sqlite:`` scheme and for
    bare paths with a recognized extension; bundled dataset names
    (``covid-total`` …) contain neither.
    """
    match = _SCHEME_RE.match(text)
    if match:
        return match.group(1).lower() in SOURCE_SCHEMES
    return Path(text.partition("?")[0]).suffix.lower() in EXTENSION_SCHEMES


def parse_source_uri(uri: str) -> tuple[str, str, dict[str, str]]:
    """Split a source URI into ``(scheme, path, params)``."""
    match = _SCHEME_RE.match(uri)
    rest = uri
    scheme = None
    if match and match.group(1).lower() in SOURCE_SCHEMES:
        scheme = match.group(1).lower()
        rest = uri[match.end() :]
    path, _, query = rest.partition("?")
    if scheme is None:
        scheme = EXTENSION_SCHEMES.get(Path(path).suffix.lower())
        if scheme is None:
            raise QueryError(
                f"cannot resolve source {uri!r}: no {'/'.join(SOURCE_SCHEMES)} "
                "scheme and no recognized file extension"
            )
    if not path:
        raise QueryError(f"source URI {uri!r} names no path")
    # Hand-rolled instead of parse_qsl: form decoding turns '+' into a
    # space, which would silently rewrite a verbatim where= pushdown.
    params: dict[str, str] = {}
    if query:
        for pair in query.split("&"):
            key, _, value = pair.partition("=")
            if key:
                params[unquote(key)] = unquote(value)
    return scheme, path, params


def split_list(value: str | None) -> tuple[str, ...]:
    """Split a comma-separated list, stripping blanks (shared CLI/URI helper)."""
    if not value:
        return ()
    return tuple(part.strip() for part in value.split(",") if part.strip())


def resolve_source(
    uri: str | DataSource,
    dimensions: Sequence[str] = (),
    measures: Sequence[str] = (),
    time: str | None = None,
    require_binding: bool = True,
) -> DataSource:
    """Resolve a source URI (or pass through a ready source object).

    Explicit ``dimensions``/``measures``/``time`` arguments take
    precedence over the URI's own parameters.  Unknown parameters raise
    :class:`~repro.exceptions.QueryError` — a typo'd pushdown must not
    silently read the whole table.  ``require_binding=False`` allows a
    csv/sqlite source with no time/measure binding — discovery-only
    consumers (``repro store inspect``) use it to look at a file whose
    schema the user does not know yet; such a source can list columns,
    count rows and fingerprint, but reading it yields no columns.
    """
    if isinstance(uri, DataSource):
        return uri
    scheme, path, params = parse_source_uri(uri)
    allowed = _SHARED_PARAMS | (_SQLITE_PARAMS if scheme == "sqlite" else set())
    unknown = set(params) - allowed
    if unknown:
        raise QueryError(
            f"source URI {uri!r} has unsupported parameter(s) {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )
    dimensions = tuple(dimensions) or split_list(
        params.get("dimensions") or params.get("dims")
    )
    measures = tuple(measures) or split_list(
        params.get("measure") or params.get("measures")
    )
    time = time or params.get("time")
    aggregate = params.get("aggregate", "sum")

    if scheme == "npz":
        return NpzSource(
            path,
            dimensions=dimensions,
            measures=measures,
            time=time,
            default_aggregate=aggregate,
        )

    if require_binding and (time is None or not measures):
        raise QueryError(
            f"{scheme} source {uri!r} needs a time column and at least one "
            "measure (URI parameters time=/measure=/dimensions=, or the "
            "--time/--measure/--dimensions flags)"
        )
    if scheme == "csv":
        return CsvSource(
            path,
            dimensions=dimensions,
            measures=measures,
            time=time,
            default_aggregate=aggregate,
        )
    table = params.get("table")
    if not table:
        raise QueryError(f"sqlite source {uri!r} needs a table= parameter")
    order = params.get("order", "")
    if order not in ("", "time"):
        raise QueryError(
            f"sqlite source {uri!r}: order= supports only 'time', got {order!r}"
        )
    preaggregate = params.get("preaggregate", "0").lower() in ("1", "true", "yes", "on")
    return SqliteSource(
        path,
        table,
        dimensions=dimensions,
        measures=measures,
        time=time,
        where=params.get("where"),
        order_by_time=order == "time",
        preaggregate=preaggregate,
        default_aggregate=aggregate,
    )
