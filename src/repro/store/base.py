"""The :class:`DataSource` protocol: pluggable ingestion backends.

Every path into the system used to funnel through ``read_csv`` — a
materialize-everything parse of one file format.  A ``DataSource``
abstracts the ingestion side of the prepare tier behind four operations:

* **schema discovery** — :meth:`DataSource.column_names` lists what the
  underlying store holds, :attr:`DataSource.schema` is the bound
  (dimensions, measures, time) role assignment the relation will carry;
* **cheap fingerprinting** — :meth:`DataSource.fingerprint` identifies the
  source *content + binding* without materializing the relation (a
  streaming byte hash, or a digest stored at convert time), so the rollup
  cache (:mod:`repro.cube.cache`) can be keyed before any parsing happens
  and a warm serve skips ingestion entirely;
* **one-shot reads** — :meth:`DataSource.read` materializes the whole
  relation (column-batched, no per-row Python loop);
* **chunked reads** — :meth:`DataSource.iter_chunks` yields the same rows
  as bounded-size relations in the same order, which is what the
  out-of-core cube build (:mod:`repro.store.ingest`) feeds through the
  append ledger so peak relation residency stays bounded by the chunk
  size.

Three stdlib-only backends implement it: :class:`~repro.store.CsvSource`,
:class:`~repro.store.NpzSource` (a columnar snapshot written by
``repro store convert``, memory-mapped on load) and
:class:`~repro.store.SqliteSource` (column/predicate/GROUP-BY pushdown).
"""

from __future__ import annotations

import abc
import hashlib
from pathlib import Path
from typing import Iterator, Sequence

from repro.exceptions import SchemaError
from repro.relation.schema import Schema
from repro.relation.table import Relation

#: Default number of rows per chunk for out-of-core ingestion.
DEFAULT_CHUNK_ROWS = 100_000


def file_digest(path: str | Path) -> str:
    """Streaming SHA-256 of a file's raw bytes (1 MiB reads).

    O(bytes) with O(1) memory — no parsing, no materialization.  This is
    the conservative content identity the file-backed sources build their
    fingerprints from: any byte change invalidates, and a byte change
    without a logical change merely costs a cache miss, never a stale
    cube.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(1 << 20)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def compose_fingerprint(parts: Sequence[str]) -> str:
    """Hash a sequence of identity components into one hex digest.

    Each part is length-framed before hashing (the
    :func:`~repro.cube.cache.chain_fingerprint` discipline), so no two
    distinct part sequences can collide by concatenation.
    """
    digest = hashlib.sha256()
    for part in parts:
        encoded = part.encode("utf-8", errors="backslashreplace")
        digest.update(len(encoded).to_bytes(8, "little"))
        digest.update(encoded)
    return digest.hexdigest()


class DataSource(abc.ABC):
    """One ingestible table plus its (dimensions, measures, time) binding.

    Concrete sources are constructed with the storage location and the
    role binding; IO happens lazily in the discovery/read methods.  The
    same source object always yields the same rows in the same order from
    :meth:`read` and :meth:`iter_chunks` — the out-of-core build's
    byte-identity guarantee rests on that.
    """

    #: URI scheme this backend answers to (``csv`` / ``npz`` / ``sqlite``).
    scheme: str = ""

    #: Aggregate suggested by the source URI (``aggregate=`` parameter);
    #: consumers constructing a :class:`~repro.datasets.base.Dataset` from
    #: the source use it as the default.  Not part of the fingerprint —
    #: the :class:`~repro.cube.cache.CubeKey` carries the aggregate
    #: separately.
    default_aggregate: str = "sum"

    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def uri(self) -> str:
        """Canonical URI this source resolves from (``scheme:path?…``)."""

    @property
    @abc.abstractmethod
    def schema(self) -> Schema:
        """The bound relation schema (dimension/measure/time roles)."""

    @abc.abstractmethod
    def column_names(self) -> tuple[str, ...]:
        """Every column the underlying store holds (schema discovery)."""

    @abc.abstractmethod
    def fingerprint(self) -> str:
        """Content identity of (source bytes, role binding, pushdown).

        Cheap: never materializes the relation.  Two sources with equal
        fingerprints yield equal relations, so the rollup cache may serve
        a cube built from one for the other.
        """

    @abc.abstractmethod
    def read(self) -> Relation:
        """Materialize the full relation."""

    @abc.abstractmethod
    def iter_chunks(self, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> Iterator[Relation]:
        """The same rows as :meth:`read`, in order, ``chunk_rows`` at a time.

        Every yielded relation carries the full bound schema; only the
        last chunk may be shorter.  Peak residency of the consumer is
        bounded by one chunk (plus whatever the consumer accumulates).
        """

    def count_rows(self) -> int | None:
        """Row count if the backend knows it cheaply, else ``None``."""
        return None

    # ------------------------------------------------------------------
    def _check_columns(self, available: Sequence[str]) -> None:
        """Validate the bound schema against discovered column names."""
        missing = set(self.schema.names) - set(available)
        if missing:
            raise SchemaError(
                f"source {self.uri} lacks columns {sorted(missing)}; "
                f"available: {sorted(available)}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.uri!r})"
