"""repro.store — pluggable data sources with out-of-core ingestion.

The storage layer behind every entry point: a :class:`DataSource`
abstracts *where rows come from* (schema discovery, cheap content
fingerprinting, one-shot reads, chunked reads), three stdlib-only
backends implement it (CSV, the npz columnar snapshot, SQLite with
pushdown), URI strings name them (``csv:…`` / ``npz:…`` / ``sqlite:…``),
and :mod:`repro.store.ingest` turns any source into a prepared
explanation cube — out-of-core, chunk-by-chunk through the append
ledger, keyed into the rollup cache by the source fingerprint so warm
serves skip ingestion entirely.

See ``docs/ARCHITECTURE.md`` (storage layer section) for the protocol
and the URI grammar.
"""

from repro.store.base import DEFAULT_CHUNK_ROWS, DataSource, compose_fingerprint, file_digest
from repro.store.csv_source import CsvSource
from repro.store.ingest import (
    IngestReport,
    convert,
    dataset_from_source,
    load_or_build_from_source,
    scan_cubes_from_source,
    source_cube_key,
)
from repro.store.npz_source import NpzSource, write_npz
from repro.store.sqlite_source import SqliteSource, write_sqlite
from repro.store.uri import (
    EXTENSION_SCHEMES,
    SOURCE_SCHEMES,
    is_source_uri,
    parse_source_uri,
    resolve_source,
    split_list,
)

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "EXTENSION_SCHEMES",
    "SOURCE_SCHEMES",
    "CsvSource",
    "DataSource",
    "IngestReport",
    "NpzSource",
    "SqliteSource",
    "compose_fingerprint",
    "convert",
    "dataset_from_source",
    "file_digest",
    "is_source_uri",
    "load_or_build_from_source",
    "parse_source_uri",
    "resolve_source",
    "scan_cubes_from_source",
    "source_cube_key",
    "split_list",
    "write_npz",
    "write_sqlite",
]
