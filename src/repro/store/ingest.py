"""Out-of-core ingestion: source-keyed caching and the chunked cube build.

This is where the storage layer meets the prepare tier.  Two ideas:

**Source-keyed rollup caching.**  The classic cache key embeds
``Relation.fingerprint()`` — which requires the relation, i.e. a full
ingest.  :func:`source_cube_key` instead keys by the *source* fingerprint
(``src-…`` namespace: cheap, no materialization), so a warm serve checks
the cache **before** parsing anything and, on a hit, skips ingestion
entirely.  Cold builds store under the same source key; both keyings are
valid simultaneously and never collide (relation fingerprints are bare
hex digests).

**Chunked out-of-core builds.**  :func:`load_or_build_from_source` feeds
:meth:`DataSource.iter_chunks` through the append ledger
(:mod:`repro.cube.delta`): the first chunk builds an appendable cube, every
later chunk is ``cube.append(chunk)``.  Appends replay the exact unbuffered
``np.add.at`` sequence a one-shot build over the concatenated rows would
execute, so the chunked cube is **bit-identical** to the in-memory build —
while peak relation residency stays bounded by one chunk.  The append
contract requires chunk-ordered time labels (a new label must sort after
every label in earlier chunks); a source that violates it degrades to a
one-shot in-memory build — same bytes, unbounded residency, never an
error (``IngestReport.out_of_core`` records which path ran).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.cube.cache import CubeKey, RollupCache, cube_key_for_fingerprint
from repro.cube.datacube import ExplanationCube
from repro.datasets.base import Dataset
from repro.exceptions import BackfillError, QueryError
from repro.obs.trace import span
from repro.relation.aggregates import AggregateFunction
from repro.relation.table import Relation
from repro.store.base import DEFAULT_CHUNK_ROWS, DataSource

#: Namespace prefix keeping source fingerprints apart from relation ones.
SOURCE_KEY_PREFIX = "src-"


def _check_preaggregate(source: DataSource, aggregate: str | AggregateFunction) -> None:
    """Reject a non-sum aggregate over a pre-aggregated source.

    ``SqliteSource`` validates its *default* aggregate at construction,
    but the aggregate actually binds here (and in
    :func:`dataset_from_source`) where callers may override it —
    averaging SUM-pre-reduced group rows would be silently wrong.
    """
    if not getattr(source, "preaggregate", False):
        return
    name = aggregate if isinstance(aggregate, str) else aggregate.name
    if name != "sum":
        raise QueryError(
            f"source {source.uri} pre-aggregates with SUM; aggregate "
            f"{name!r} cannot be computed from pre-reduced rows"
        )


@dataclass(frozen=True)
class IngestReport:
    """What one :func:`load_or_build_from_source` call actually did.

    Attributes
    ----------
    cache_hit:
        The cube came from the rollup cache — no bytes were ingested.
    out_of_core:
        The cube was built chunk-by-chunk through the append ledger
        (``False`` for cache hits, one-shot builds and the fallback).
    chunks / rows:
        Chunks ingested and total rows scattered (0 on a cache hit).
    peak_chunk_rows:
        Largest single chunk materialized — the relation-residency bound
        of an out-of-core build.
    build_seconds:
        Wall-clock spent ingesting + building (0 on a cache hit).
    relation:
        The materialized relation when the one-shot path ran (it was
        paid for — callers like :meth:`ExplainSession.from_source` adopt
        it instead of re-ingesting later); ``None`` for cache hits and
        out-of-core builds, which never hold the full relation.
    """

    cache_hit: bool
    out_of_core: bool
    chunks: int = 0
    rows: int = 0
    peak_chunk_rows: int = 0
    build_seconds: float = 0.0
    relation: "Relation | None" = field(default=None, repr=False, compare=False)


def source_cube_key(
    source: DataSource,
    measure: str,
    explain_by: Sequence[str],
    aggregate: str | AggregateFunction = "sum",
    time_attr: str | None = None,
    max_order: int = 3,
    deduplicate: bool = True,
) -> CubeKey:
    """The rollup-cache key a cube built from ``source`` resolves to.

    Derived without materializing the relation: the data component is the
    source fingerprint under the ``src-`` namespace.
    """
    return cube_key_for_fingerprint(
        f"{SOURCE_KEY_PREFIX}{source.fingerprint()}",
        measure,
        explain_by,
        aggregate=aggregate,
        time_attr=time_attr or source.schema.require_time(),
        max_order=max_order,
        deduplicate=deduplicate,
    )


def _build_out_of_core(
    source: DataSource,
    explain_by: Sequence[str],
    measure: str,
    aggregate: str | AggregateFunction,
    time_attr: str | None,
    max_order: int,
    deduplicate: bool,
    columnar: bool,
    chunk_rows: int,
) -> tuple[ExplanationCube, int, int, int]:
    """Chunk-feed the source through the append ledger.

    Returns ``(cube, chunks, rows, peak_chunk_rows)``; raises
    :class:`~repro.exceptions.QueryError` when the source yields no rows
    or a chunk back-fills a new time label (the caller falls back).
    """
    cube: ExplanationCube | None = None
    chunks = rows = peak = 0
    for chunk in source.iter_chunks(chunk_rows):
        if chunk.n_rows == 0:
            continue
        chunks += 1
        rows += chunk.n_rows
        peak = max(peak, chunk.n_rows)
        if cube is None:
            cube = ExplanationCube(
                chunk,
                explain_by,
                measure,
                aggregate=aggregate,
                time_attr=time_attr,
                max_order=max_order,
                deduplicate=deduplicate,
                columnar=columnar,
                appendable=True,
            )
        else:
            cube.append(chunk)
    if cube is None:
        raise QueryError(f"source {source.uri} yielded no rows")
    return cube, chunks, rows, peak


def scan_cubes_from_source(
    source: DataSource,
    queries: Sequence[dict],
    time_attr: str | None = None,
    columnar: bool = True,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    out_of_core: bool = True,
) -> tuple[list[ExplanationCube], IngestReport]:
    """Build N cubes from **one scan** over the source.

    The multi-rollup workhorse behind :func:`repro.lattice.build_lattice`:
    instead of paying N ingestion passes for N cube shapes, every chunk is
    materialized once and scattered into all N append ledgers before the
    next chunk is read — so peak relation residency stays one chunk while
    the scan cost is paid once, and each resulting cube is bit-identical
    to its own independent build (appends replay the exact unbuffered
    ``np.add.at`` sequence of a one-shot build).

    ``queries`` holds one dict per cube with the build parameters:
    ``explain_by``, ``measure``, and optionally ``aggregate``,
    ``max_order``, ``deduplicate``.  Degradation mirrors
    :func:`load_or_build_from_source`: a source whose chunk order violates
    the append contract (or ``out_of_core=False``) falls back to a single
    one-shot read feeding all N builds — still one scan, unbounded
    residency — and the report's ``relation`` hands the materialized rows
    to callers that can reuse them.
    """
    if not queries:
        raise QueryError("scan_cubes_from_source needs at least one query")
    for query in queries:
        _check_preaggregate(source, query.get("aggregate", "sum"))

    def make_cube(query: dict, relation: Relation) -> ExplanationCube:
        return ExplanationCube(
            relation,
            query["explain_by"],
            query["measure"],
            aggregate=query.get("aggregate", "sum"),
            time_attr=time_attr,
            max_order=query.get("max_order", 3),
            deduplicate=query.get("deduplicate", True),
            columnar=columnar,
            appendable=True,
        )

    started = time.perf_counter()
    chunked = False
    chunks = rows = peak = 0
    cubes: list[ExplanationCube] | None = None
    if out_of_core and getattr(source, "chunk_safe", True) is False:
        out_of_core = False
    if out_of_core:
        try:
            cubes = []
            for chunk in source.iter_chunks(chunk_rows):
                if chunk.n_rows == 0:
                    continue
                chunks += 1
                rows += chunk.n_rows
                peak = max(peak, chunk.n_rows)
                if not cubes:
                    cubes = [make_cube(query, chunk) for query in queries]
                else:
                    for cube in cubes:
                        cube.append(chunk)
            if not cubes:
                raise QueryError(f"source {source.uri} yielded no rows")
            chunked = True
        except BackfillError:
            # Chunk order unsafe — degrade to the shared one-shot read
            # below, exactly like the single-cube path.
            cubes = None
            chunks = rows = peak = 0
    relation: Relation | None = None
    if cubes is None:
        relation = source.read()
        if relation.n_rows == 0:
            raise QueryError(f"source {source.uri} yielded no rows")
        chunks, rows, peak = 1, relation.n_rows, relation.n_rows
        cubes = [make_cube(query, relation) for query in queries]
    report = IngestReport(
        cache_hit=False,
        out_of_core=chunked,
        chunks=chunks,
        rows=rows,
        peak_chunk_rows=peak,
        build_seconds=time.perf_counter() - started,
        relation=relation,
    )
    return cubes, report


def load_or_build_from_source(
    cache: RollupCache | None,
    source: DataSource,
    explain_by: Sequence[str],
    measure: str,
    aggregate: str | AggregateFunction = "sum",
    time_attr: str | None = None,
    max_order: int = 3,
    deduplicate: bool = True,
    columnar: bool = True,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    out_of_core: bool = True,
) -> tuple[ExplanationCube, IngestReport]:
    """Serve a cube for a data source, ingesting only on a cache miss.

    The source-keyed sibling of :func:`repro.cube.cache.load_or_build`:
    with a cache, the key is derived from the cheap source fingerprint
    and a hit returns the stored cube without reading a single row.  On a
    miss the cube is built out-of-core (chunked through the append
    ledger, bit-identical to one-shot; degrades to a one-shot in-memory
    build when the source's chunk order violates the append contract) or
    one-shot when ``out_of_core=False``, then stored under the source
    key.
    """
    _check_preaggregate(source, aggregate)
    key = None
    if cache is not None:
        key = source_cube_key(
            source,
            measure,
            explain_by,
            aggregate=aggregate,
            time_attr=time_attr,
            max_order=max_order,
            deduplicate=deduplicate,
        )
        cached = cache.load(key)
        if cached is not None:
            return cached, IngestReport(cache_hit=True, out_of_core=False)

    started = time.perf_counter()
    with span("ingest"):
        chunked = False
        chunks = rows = peak = 0
        cube: ExplanationCube | None = None
        if out_of_core and getattr(source, "chunk_safe", True) is False:
            # The source knows its row order violates the append contract
            # (npz snapshots record it at convert time): skip the doomed
            # chunked attempt instead of paying for it and then re-reading.
            out_of_core = False
        if out_of_core:
            try:
                cube, chunks, rows, peak = _build_out_of_core(
                    source,
                    explain_by,
                    measure,
                    aggregate,
                    time_attr,
                    max_order,
                    deduplicate,
                    columnar,
                    chunk_rows,
                )
                chunked = True
            except BackfillError:
                # An unordered source: a new label back-filled across a
                # chunk boundary.  Degrade to the one-shot build below —
                # same results, unbounded residency.  Only this specific
                # error means "chunk order unsafe"; a misconfiguration
                # (bad aggregate, invalid binding) propagates instead of
                # paying a pointless full re-ingest to hit the same
                # error again.
                cube = None
        relation: Relation | None = None
        if cube is None:
            relation = source.read()
            if relation.n_rows == 0:
                raise QueryError(f"source {source.uri} yielded no rows")
            chunks, rows, peak = 1, relation.n_rows, relation.n_rows
            cube = ExplanationCube(
                relation,
                explain_by,
                measure,
                aggregate=aggregate,
                time_attr=time_attr,
                max_order=max_order,
                deduplicate=deduplicate,
                columnar=columnar,
                appendable=True,
            )
    if cache is not None and key is not None:
        try:
            cache.store(key, cube)
        except (TypeError, OSError):
            # Unstorable labels or an unwritable cache directory degrade
            # to an uncached build, exactly like load_or_build.
            pass
    report = IngestReport(
        cache_hit=False,
        out_of_core=chunked,
        chunks=chunks,
        rows=rows,
        peak_chunk_rows=peak,
        build_seconds=time.perf_counter() - started,
        relation=relation,
    )
    return cube, report


def dataset_from_source(
    source: DataSource,
    name: str | None = None,
    aggregate: str | None = None,
    measure: str | None = None,
    explain_by: Sequence[str] | None = None,
) -> Dataset:
    """Materialize a :class:`~repro.datasets.base.Dataset` from a source.

    The dataset's query defaults come from the source binding: the first
    measure column, every dimension as explain-by, and the source URI's
    ``aggregate`` parameter.  This is the bridge the dataset registry and
    the CLI use for ``--source`` runs (one-shot materialization; the
    out-of-core path lives in
    :meth:`repro.core.session.ExplainSession.from_source`).
    """
    _check_preaggregate(source, aggregate or source.default_aggregate)
    schema = source.schema
    measures = schema.measure_names()
    if measure is None:
        if not measures:
            raise QueryError(f"source {source.uri} binds no measure column")
        measure = measures[0]
    relation = source.read()
    return Dataset(
        name=name or source.uri,
        relation=relation,
        measure=measure,
        explain_by=tuple(explain_by) if explain_by else schema.dimension_names(),
        aggregate=aggregate or source.default_aggregate,
        description=f"{source.scheme} source ({relation.n_rows} rows)",
    )


def convert(source: DataSource, dest_uri: str) -> tuple[str, int]:
    """Materialize a source and persist it under another backend.

    ``dest_uri`` follows the same grammar (``npz:out.npz``,
    ``sqlite:out.db?table=t``, ``csv:out.csv`` or a bare path with a
    recognized extension); returns ``(destination path, rows written)``.
    Rows are written in source order, so a chunk-safe source stays
    chunk-safe — and converting *to* npz records chunk safety in the
    snapshot header.
    """
    from repro.store.uri import parse_source_uri

    scheme, path, params = parse_source_uri(dest_uri)
    allowed = {"table"} if scheme == "sqlite" else set()
    unknown = set(params) - allowed
    if unknown:
        # Same strictness as resolve_source: a typo'd parameter must not
        # be dropped silently.
        raise QueryError(
            f"destination URI {dest_uri!r} has unsupported parameter(s) "
            f"{sorted(unknown)}"
            + (f"; allowed: {sorted(allowed)}" if allowed else "")
        )
    relation = source.read()
    if scheme == "npz":
        from repro.store.npz_source import write_npz

        write_npz(relation, path)
    elif scheme == "sqlite":
        from repro.store.sqlite_source import write_sqlite

        table = params.get("table")
        if not table:
            raise QueryError(
                f"sqlite destination {dest_uri!r} needs a table= parameter"
            )
        write_sqlite(relation, path, table)
    elif scheme == "csv":
        from repro.relation.csvio import write_csv

        write_csv(relation, path)
    else:  # pragma: no cover - parse_source_uri already rejects
        raise QueryError(f"unsupported destination scheme {scheme!r}")
    return path, relation.n_rows
