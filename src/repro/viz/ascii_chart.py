"""Terminal-friendly ASCII rendering of time series and segmentations.

The paper's interface returns trendline visualizations (Figure 2); in this
offline reproduction the same information is rendered as text so examples
and benchmarks can show their output anywhere.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import QueryError
from repro.relation.timeseries import TimeSeries


def ascii_chart(
    series: TimeSeries,
    cuts: Sequence[int] = (),
    width: int = 78,
    height: int = 12,
    marker: str = "*",
) -> str:
    """Render a series as an ASCII chart with optional cut markers.

    Parameters
    ----------
    series:
        The series to draw.
    cuts:
        Positions to mark with vertical bars (segment boundaries).
    width / height:
        Canvas size in characters.
    marker:
        Character used for data points.
    """
    if width < 8 or height < 3:
        raise QueryError("chart needs width >= 8 and height >= 3")
    values = series.values
    n = len(series)
    if n == 0:
        return "(empty series)"
    lo = float(values.min())
    hi = float(values.max())
    span = hi - lo if hi > lo else 1.0
    columns = np.minimum((np.arange(n) * width) // max(n - 1, 1), width - 1)
    rows = ((values - lo) / span * (height - 1)).round().astype(int)

    canvas = [[" "] * width for _ in range(height)]
    cut_columns = {int(columns[min(c, n - 1)]) for c in cuts if 0 <= c < n}
    for column in cut_columns:
        for row in range(height):
            canvas[row][column] = "|"
    for position in range(n):
        canvas[height - 1 - rows[position]][columns[position]] = marker

    label_width = 10
    lines = []
    for row in range(height):
        if row == 0:
            label = f"{hi:>{label_width}.4g} "
        elif row == height - 1:
            label = f"{lo:>{label_width}.4g} "
        else:
            label = " " * (label_width + 1)
        lines.append(label + "".join(canvas[row]))
    first = str(series.label_at(0))
    last = str(series.label_at(n - 1))
    footer = " " * (label_width + 1) + first + " " * max(width - len(first) - len(last), 1) + last
    lines.append(footer)
    return "\n".join(lines)


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """One-line unicode sparkline of a value array."""
    blocks = "▁▂▃▄▅▆▇█"
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return ""
    if values.size > width:
        # Downsample by averaging buckets.
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.asarray(
            [values[a:b].mean() if b > a else values[min(a, values.size - 1)] for a, b in zip(edges, edges[1:])]
        )
    lo, hi = float(values.min()), float(values.max())
    span = hi - lo if hi > lo else 1.0
    indices = ((values - lo) / span * (len(blocks) - 1)).round().astype(int)
    return "".join(blocks[i] for i in indices)
