"""Text visualization: ASCII charts and explanation tables."""

from repro.viz.ascii_chart import ascii_chart, sparkline
from repro.viz.report import (
    explanation_table,
    full_report,
    k_variance_table,
    segment_sparklines,
    segmentation_chart,
)

__all__ = [
    "ascii_chart",
    "explanation_table",
    "full_report",
    "k_variance_table",
    "segment_sparklines",
    "segmentation_chart",
    "sparkline",
]
