"""Tabular reports of explanation results (the paper's Tables 3–5)."""

from __future__ import annotations

from repro.core.result import ExplainResult
from repro.viz.ascii_chart import ascii_chart, sparkline


def explanation_table(result: ExplainResult, max_explanations: int = 3) -> str:
    """Render an :class:`ExplainResult` as a Table 3/4/5-style text table.

    Columns: segment window, then ``Top-r Expl`` with the change effect
    appended (``+``/``-``), exactly like the paper's tables.
    """
    header = ["Segment"] + [f"Top-{r + 1} Expl" for r in range(max_explanations)]
    rows: list[list[str]] = [header]
    for segment in result.segments:
        cells = [f"{segment.start_label} ~ {segment.stop_label}"]
        for rank in range(max_explanations):
            if rank < len(segment.explanations):
                scored = segment.explanations[rank]
                cells.append(f"{scored.explanation!r} {scored.effect_symbol}")
            else:
                cells.append("-")
        rows.append(cells)
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    return "\n".join(lines)


def k_variance_table(result: ExplainResult) -> str:
    """The K-variance curve with the elbow marked (Figures 11–14, left)."""
    lines = ["K   total variance"]
    for k, cost in result.k_variance_curve.items():
        star = "  <- elbow" if k == result.k and result.k_was_auto else ""
        lines.append(f"{k:<3d} {cost:14.4f}{star}")
    return "\n".join(lines)


def segmentation_chart(result: ExplainResult) -> str:
    """The explained series with the chosen cuts marked (Figure 2 style)."""
    return ascii_chart(result.series, cuts=result.cuts)


def full_report(result: ExplainResult) -> str:
    """Chart + explanation table + K-variance curve, ready to print."""
    parts = [
        segmentation_chart(result),
        "",
        explanation_table(result),
        "",
        k_variance_table(result),
    ]
    return "\n".join(parts)


def segment_sparklines(result: ExplainResult) -> str:
    """Per-segment sparkline of the overall series (compact Figure 2)."""
    values = result.series.values
    lines = []
    for segment in result.segments:
        window = values[segment.start : segment.stop + 1]
        lines.append(
            f"{str(segment.start_label):>12s} ~ {str(segment.stop_label):<12s} "
            f"{sparkline(window, 40)}  "
            + ", ".join(
                f"{s.explanation!r}({s.effect_symbol})" for s in segment.explanations
            )
        )
    return "\n".join(lines)
