"""Classical seasonal decomposition (paper section 8, "Seasonal Datasets").

"Users can also first decompose the seasonal datasets and explain the
seasonality and trend separately."  This module provides the classical
moving-average decomposition the paper cites [Hyndman & Athanasopoulos,
FPP] so that users can run TSExplain on the trend component of a seasonal
KPI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.smoothing import moving_average
from repro.exceptions import QueryError
from repro.relation.timeseries import TimeSeries


@dataclass(frozen=True)
class Decomposition:
    """Additive decomposition ``observed = trend + seasonal + residual``."""

    observed: TimeSeries
    trend: TimeSeries
    seasonal: TimeSeries
    residual: TimeSeries

    def components(self) -> dict[str, TimeSeries]:
        """All four components keyed by name."""
        return {
            "observed": self.observed,
            "trend": self.trend,
            "seasonal": self.seasonal,
            "residual": self.residual,
        }


def decompose(series: TimeSeries, period: int) -> Decomposition:
    """Classical additive decomposition with a given seasonal period.

    The trend is a centered moving average of length ``period`` (shrinking
    at the edges, so no NaN padding); the seasonal component is the
    mean-centered per-phase average of the detrended series; the residual
    is what remains.
    """
    if period < 2:
        raise QueryError(f"seasonal period must be >= 2, got {period}")
    n = len(series)
    if n < 2 * period:
        raise QueryError(
            f"series of length {n} too short for period {period} (need >= {2 * period})"
        )
    values = series.values
    trend = moving_average(values, period if period % 2 == 1 else period + 1)
    detrended = values - trend
    phase = np.arange(n) % period
    seasonal_means = np.array(
        [detrended[phase == p].mean() for p in range(period)]
    )
    seasonal_means -= seasonal_means.mean()
    seasonal = seasonal_means[phase]
    residual = values - trend - seasonal
    labels = series.labels
    return Decomposition(
        observed=series,
        trend=TimeSeries(trend, labels),
        seasonal=TimeSeries(seasonal, labels),
        residual=TimeSeries(residual, labels),
    )
