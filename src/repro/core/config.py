"""Configuration of a TSExplain query."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.diff.metrics import available_metrics
from repro.exceptions import ConfigError
from repro.segmentation.distance import VARIANTS
from repro.segmentation.kselect import MAX_SEGMENTS


@dataclass(frozen=True)
class ExplainConfig:
    """All knobs of the TSExplain pipeline, with paper defaults.

    Attributes
    ----------
    m:
        Number of explanations returned per segment (paper default 3).
    max_order:
        Explanation order threshold ``beta_max`` (paper default 3).
    metric:
        Difference metric name (paper evaluates ``absolute-change``).
    variant:
        Within-segment variance design (paper's winning design ``tse``).
    k:
        Fixed segment count; ``None`` selects the optimal K with the elbow
        method (section 6).
    k_max:
        Largest K considered by the elbow search (paper caps at 20).
    use_filter:
        Apply the support filter of section 7.5.1 (``w filter``).
    filter_ratio:
        Support-filter ratio (paper default 0.001).
    use_guess_verify:
        Enable optimization O1 (guess-and-verify, section 5.3.1).  Ignored
        for single-attribute queries where top-m selection is already a
        vectorized argsort.
    initial_guess:
        O1's starting prefix size ``m_bar`` (paper: 30 when m=3).
    use_sketch:
        Enable optimization O2 (sketching, section 5.3.2).
    sketch_length:
        Phase-I max segment length ``L``; ``None`` uses the paper default
        ``min(0.05 n, 20)``.
    sketch_size:
        Sketch size ``|S|``; ``None`` uses the paper default ``3n / L``.
    smoothing_window:
        Centered moving-average window applied to all cube series before
        explaining ("for very fuzzy datasets, we apply a moving average",
        section 7.4); ``None`` disables smoothing.
    deduplicate:
        Drop containment-redundant candidate conjunctions.
    cache_dir:
        Directory of the persistent rollup cache
        (:class:`repro.cube.cache.RollupCache`).  When set, the pipeline
        loads the raw explanation cube from disk if an entry matches the
        relation fingerprint and query parameters, and stores freshly
        built cubes for later runs; ``None`` (default) disables caching.
        Smoothing and the support filter are applied after the cached
        cube is loaded, so one entry serves many configurations.
    cache_max_entries:
        Upper bound on the number of entries kept in ``cache_dir``;
        stores beyond it evict the least-recently-used entries.  Set
        this for workloads that produce unboundedly many distinct cubes
        (e.g. streaming, where every snapshot has a fresh fingerprint).
        ``None`` (default) keeps the cache unbounded.
    columnar:
        Use the vectorized columnar cube build (default).  ``False``
        selects the legacy per-candidate finalize loop — identical
        results, only slower; kept for benchmarking.
    """

    m: int = 3
    max_order: int = 3
    metric: str = "absolute-change"
    variant: str = "tse"
    k: int | None = None
    k_max: int = MAX_SEGMENTS
    use_filter: bool = True
    filter_ratio: float = 0.001
    use_guess_verify: bool = False
    initial_guess: int = 30
    use_sketch: bool = False
    sketch_length: int | None = None
    sketch_size: int | None = None
    smoothing_window: int | None = None
    deduplicate: bool = True
    cache_dir: str | None = None
    cache_max_entries: int | None = None
    columnar: bool = True

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ConfigError(f"m must be >= 1, got {self.m}")
        if self.max_order < 1:
            raise ConfigError(f"max_order must be >= 1, got {self.max_order}")
        if self.variant not in VARIANTS:
            raise ConfigError(
                f"unknown variance variant {self.variant!r}; use one of {VARIANTS}"
            )
        # get_metric() resolves names case-insensitively; mirror that here
        # so every name the run tier would accept passes validation.
        if self.metric.lower() not in available_metrics():
            raise ConfigError(
                f"unknown difference metric {self.metric!r}; use one of "
                f"{available_metrics()}"
            )
        if self.k is not None and self.k < 1:
            raise ConfigError(f"k must be >= 1, got {self.k}")
        if self.k_max < 1:
            raise ConfigError(f"k_max must be >= 1, got {self.k_max}")
        if self.k is not None and self.k > self.k_max:
            raise ConfigError(f"k={self.k} exceeds k_max={self.k_max}")
        if not 0.0 <= self.filter_ratio < 1.0:
            raise ConfigError(f"filter_ratio must be in [0, 1), got {self.filter_ratio}")
        if self.initial_guess < self.m:
            raise ConfigError(
                f"initial_guess ({self.initial_guess}) must be >= m ({self.m})"
            )
        if self.sketch_length is not None and self.sketch_length < 2:
            raise ConfigError(f"sketch_length must be >= 2, got {self.sketch_length}")
        if self.sketch_size is not None and self.sketch_size < 1:
            raise ConfigError(f"sketch_size must be >= 1, got {self.sketch_size}")
        if self.smoothing_window is not None and self.smoothing_window < 1:
            raise ConfigError(
                f"smoothing_window must be >= 1, got {self.smoothing_window}"
            )
        if self.cache_dir is not None and not str(self.cache_dir).strip():
            raise ConfigError("cache_dir must be a non-empty path or None")
        if self.cache_max_entries is not None and self.cache_max_entries < 1:
            raise ConfigError(
                f"cache_max_entries must be >= 1, got {self.cache_max_entries}"
            )

    # ------------------------------------------------------------------
    # Presets matching the paper's evaluated configurations (section 7.5)
    # ------------------------------------------------------------------
    @classmethod
    def vanilla(cls, **overrides) -> "ExplainConfig":
        """``VanillaTSExplain``: no filter, no O1, no O2."""
        return cls(use_filter=False, use_guess_verify=False, use_sketch=False, **overrides)

    @classmethod
    def with_filter(cls, **overrides) -> "ExplainConfig":
        """``w filter``: support filter only."""
        return cls(use_filter=True, use_guess_verify=False, use_sketch=False, **overrides)

    @classmethod
    def o1(cls, **overrides) -> "ExplainConfig":
        """``O1``: filter + guess-and-verify."""
        return cls(use_filter=True, use_guess_verify=True, use_sketch=False, **overrides)

    @classmethod
    def o2(cls, **overrides) -> "ExplainConfig":
        """``O2``: filter + sketching."""
        return cls(use_filter=True, use_guess_verify=False, use_sketch=True, **overrides)

    @classmethod
    def optimized(cls, **overrides) -> "ExplainConfig":
        """``O1+O2``: all optimizations (the interactive configuration)."""
        return cls(use_filter=True, use_guess_verify=True, use_sketch=True, **overrides)

    def updated(self, **overrides) -> "ExplainConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)
