"""Explain-by attribute recommendation (paper section 9, future work).

"Several future work directions include ... recommending explain-by
attributes."  This module implements that direction: each candidate
dimension is scored by how well its best single-attribute explanations
account for the changes of the aggregated series, so users without domain
knowledge get a ranked starting point.

Scoring
-------
For a dimension ``A`` we build a single-attribute cube and measure, over a
set of probe segments (the unit objects of a coarse grid), the *coverage*
``sum of top-m gamma / |overall change|`` and the *concentration*
(coverage of the top-1 alone).  High coverage with high concentration means
a few values of ``A`` explain most of what happens — exactly what makes an
attribute a good explain-by choice.  Attributes whose every value moves in
lock-step with the total (e.g. a uniform shard id) have high coverage but
low concentration and rank below genuinely discriminative attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ca.cascade import CascadingAnalysts, DrillDownTree
from repro.cube.datacube import ExplanationCube
from repro.diff.scorer import SegmentScorer
from repro.exceptions import QueryError
from repro.relation.table import Relation


@dataclass(frozen=True)
class AttributeScore:
    """Recommendation record for one candidate explain-by attribute.

    Attributes
    ----------
    attribute:
        The dimension name.
    coverage:
        Mean share of the per-segment change explained by the top-m
        non-overlapping explanations of this attribute alone (0..1).
    concentration:
        Mean share explained by the top-1 explanation (0..1); higher means
        fewer values carry the signal.
    cardinality:
        Number of distinct values (high-cardinality attributes are harder
        to read and slightly penalized in the final score).
    score:
        The ranking key: ``coverage * concentration`` with a soft
        cardinality penalty.
    """

    attribute: str
    coverage: float
    concentration: float
    cardinality: int
    score: float

    def row(self) -> str:
        return (
            f"{self.attribute:<24s} coverage={self.coverage:6.3f} "
            f"top1={self.concentration:6.3f} |values|={self.cardinality:<6d} "
            f"score={self.score:6.3f}"
        )


def recommend_explain_by(
    relation: Relation,
    measure: str,
    candidates: Sequence[str] | None = None,
    aggregate: str = "sum",
    time_attr: str | None = None,
    m: int = 3,
    n_probes: int = 16,
) -> list[AttributeScore]:
    """Rank candidate dimensions by how well they explain the series.

    Parameters
    ----------
    relation / measure / aggregate / time_attr:
        The query being explained.
    candidates:
        Dimensions to consider (default: every dimension attribute).
    m:
        Explanation quota used when probing.
    n_probes:
        Number of probe segments (a coarse even grid over the series).

    Returns
    -------
    list of :class:`AttributeScore`, best first.
    """
    if candidates is None:
        candidates = relation.schema.dimension_names()
    if not candidates:
        raise QueryError("no candidate dimensions to recommend from")
    scores = []
    for attribute in candidates:
        scores.append(
            _score_attribute(
                relation, measure, attribute, aggregate, time_attr, m, n_probes
            )
        )
    scores.sort(key=lambda s: -s.score)
    return scores


def _probe_segments(n_times: int, n_probes: int) -> list[tuple[int, int]]:
    """A coarse even grid of probe segments covering the series."""
    n_probes = max(1, min(n_probes, n_times - 1))
    edges = np.unique(np.linspace(0, n_times - 1, n_probes + 1).astype(int))
    return [(int(a), int(b)) for a, b in zip(edges, edges[1:]) if b > a]


def _score_attribute(
    relation: Relation,
    measure: str,
    attribute: str,
    aggregate: str,
    time_attr: str | None,
    m: int,
    n_probes: int,
) -> AttributeScore:
    cube = ExplanationCube(
        relation,
        [attribute],
        measure,
        aggregate=aggregate,
        time_attr=time_attr,
        max_order=1,
    )
    scorer = SegmentScorer(cube)
    solver = CascadingAnalysts(DrillDownTree(cube.explanations), m=m)
    coverages: list[float] = []
    concentrations: list[float] = []
    for start, stop in _probe_segments(cube.n_times, n_probes):
        overall = abs(cube.overall_change(start, stop))
        if overall <= 0.0:
            continue
        gammas = scorer.gamma(start, stop)
        result = solver.solve(gammas)
        coverages.append(min(result.total / overall, 1.0))
        top1 = result.gammas[0] if result.gammas else 0.0
        concentrations.append(min(top1 / overall, 1.0))
    coverage = float(np.mean(coverages)) if coverages else 0.0
    concentration = float(np.mean(concentrations)) if concentrations else 0.0
    cardinality = int(len(cube.explanations))
    # Soft readability penalty: every decade of cardinality costs 10%.
    penalty = 1.0 / (1.0 + 0.1 * np.log10(max(cardinality, 1)))
    return AttributeScore(
        attribute=attribute,
        coverage=coverage,
        concentration=concentration,
        cardinality=cardinality,
        score=float(coverage * concentration * penalty),
    )
