"""Inspection hints for high-variance segments (paper section 9).

"Several future work directions include ... adding hints for segments with
higher variance for further inspection."  A segment with high
within-segment variance means its top explanations are *not* consistent
across the period — either K was too small or something interesting is
buried inside.  This module flags such segments and can drill into one by
re-running TSExplain on just that window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.config import ExplainConfig
from repro.core.engine import TSExplain
from repro.core.result import ExplainResult, SegmentExplanation
from repro.core.session import ExplainSession
from repro.exceptions import QueryError

#: Segments whose variance exceeds this multiple of the mean are flagged.
DEFAULT_VARIANCE_FACTOR = 1.5

#: Minimum absolute variance to be worth flagging at all.  Distances live
#: in [0, 1], so a variance this small means the segment is essentially
#: cohesive even if its neighbours are perfectly so.
DEFAULT_MIN_VARIANCE = 0.1


@dataclass(frozen=True)
class SegmentHint:
    """A flagged segment and why it deserves a closer look.

    Attributes
    ----------
    segment:
        The flagged segment.
    variance:
        Its within-segment variance.
    relative:
        Variance divided by the mean variance of all segments.
    """

    segment: SegmentExplanation
    variance: float
    relative: float

    def describe(self) -> str:
        return (
            f"{self.segment.start_label} ~ {self.segment.stop_label}: "
            f"variance {self.variance:.3f} ({self.relative:.1f}x the mean) — "
            "explanations are inconsistent here; consider drilling down"
        )


def variance_hints(
    result: ExplainResult,
    factor: float = DEFAULT_VARIANCE_FACTOR,
    min_variance: float = DEFAULT_MIN_VARIANCE,
) -> list[SegmentHint]:
    """Segments whose variance stands out and is large enough to matter.

    A segment is flagged when its variance is at least ``factor`` times the
    mean segment variance *and* at least ``min_variance`` in absolute terms
    (distances live in [0, 1], so tiny variances mean the segment is
    already cohesive).  Returns an empty list when every segment is
    similarly cohesive.
    """
    if factor <= 0:
        raise QueryError(f"factor must be positive, got {factor}")
    variances = [segment.variance for segment in result.segments]
    if not variances:
        return []
    mean = sum(variances) / len(variances)
    if mean <= 1e-12:
        return []
    hints = [
        SegmentHint(segment=segment, variance=segment.variance, relative=segment.variance / mean)
        for segment in result.segments
        if segment.variance >= factor * mean and segment.variance >= min_variance
    ]
    hints.sort(key=lambda hint: -hint.variance)
    return hints


def drill_down(
    engine: TSExplain | ExplainSession,
    segment: SegmentExplanation,
    config: ExplainConfig | None = None,
) -> ExplainResult:
    """Re-explain a single segment at finer granularity.

    Runs the engine or session on the segment's window only (so the elbow
    can pick a fresh K for the sub-period) — an O(window) slice of the
    prepared cube, so drilling down never rescans the relation.  Raises if
    the segment is too short to split further.
    """
    start: Hashable = segment.start_label
    stop: Hashable = segment.stop_label
    if segment.length < 3:
        raise QueryError(
            f"segment {start} ~ {stop} has only {segment.length} steps; "
            "nothing to drill into"
        )
    return engine.explain(start=start, stop=stop, config=config)
