"""Moving-average smoothing of time series and explanation cubes.

Section 7.4: "For very fuzzy datasets, we apply a moving average to smooth
it before explaining it."  Smoothing must be applied consistently to the
overall series *and* to every candidate's included/excluded series so that
the decomposition ``overall = slice + rest`` is preserved; that is why the
cube-level helper exists rather than smoothing the aggregate alone.
"""

from __future__ import annotations

import numpy as np

from repro.cube.datacube import ExplanationCube
from repro.exceptions import QueryError
from repro.relation.timeseries import TimeSeries


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with shrinking windows at the edges.

    Every output point averages the input points within ``window // 2``
    steps on each side, clipped to the series bounds — so the output has
    the same length and no NaN padding, and a window of 1 is the identity.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise QueryError(f"moving_average expects 1-D values, got {values.shape}")
    if window < 1:
        raise QueryError(f"window must be >= 1, got {window}")
    if window == 1 or values.shape[0] <= 1:
        return values.copy()
    half = window // 2
    n = values.shape[0]
    prefix = np.concatenate([[0.0], np.cumsum(values)])
    left = np.maximum(np.arange(n) - half, 0)
    right = np.minimum(np.arange(n) + half, n - 1)
    return (prefix[right + 1] - prefix[left]) / (right - left + 1)


def smooth_series(series: TimeSeries, window: int) -> TimeSeries:
    """A moving-average smoothed copy of a time series."""
    return TimeSeries(moving_average(series.values, window), series.labels)


def smooth_cube(cube: ExplanationCube, window: int) -> ExplanationCube:
    """A cube whose overall/included/excluded series are all smoothed.

    Because the moving average is linear, smoothing the included and
    excluded series separately keeps ``overall = included + excluded``
    exact for SUM/COUNT cubes.
    """
    if window == 1:
        return cube
    overall = moving_average(cube.overall_values, window)
    included = np.vstack(
        [moving_average(row, window) for row in cube.included_values]
    ) if cube.n_explanations else cube.included_values.copy()
    excluded = np.vstack(
        [moving_average(row, window) for row in cube.excluded_values]
    ) if cube.n_explanations else cube.excluded_values.copy()
    return ExplanationCube.from_arrays(
        aggregate=cube.aggregate,
        measure=cube.measure,
        explain_by=cube.explain_by,
        labels=cube.labels,
        overall=overall,
        explanations=cube.explanations,
        supports=cube.supports,
        included=included,
        excluded=excluded,
    )
