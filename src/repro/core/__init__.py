"""TSExplain core: engine facade, pipeline, configuration, results."""

from repro.core.config import ExplainConfig
from repro.core.engine import TSExplain
from repro.core.hints import SegmentHint, drill_down, variance_hints
from repro.core.pipeline import ExplainPipeline
from repro.core.recommend import AttributeScore, recommend_explain_by
from repro.core.result import ExplainResult, SegmentExplanation
from repro.core.seasonal import Decomposition, decompose
from repro.core.session import ExplainQuery, ExplainSession, window_relation
from repro.core.smoothing import moving_average, smooth_cube, smooth_series
from repro.core.streaming import StreamingExplainer

__all__ = [
    "AttributeScore",
    "Decomposition",
    "ExplainConfig",
    "ExplainPipeline",
    "ExplainQuery",
    "ExplainResult",
    "ExplainSession",
    "SegmentExplanation",
    "SegmentHint",
    "StreamingExplainer",
    "TSExplain",
    "decompose",
    "drill_down",
    "moving_average",
    "recommend_explain_by",
    "smooth_cube",
    "smooth_series",
    "variance_hints",
    "window_relation",
]
