"""The prepare-once / query-many session API.

The paper's interactivity claim rests on its two-tier split: an expensive
*prepare* phase (build the explanation cube) and a cheap *run* phase (every
difference score is an O(1) array lookup).  :class:`ExplainSession` makes
that split the shape of the public API — bind a relation and the cube
parameters once, build or cache-load the cube once, then serve unlimited
queries as **O(window) slices of the prepared arrays**:

    session = ExplainSession(relation, measure="cases", explain_by=["state"])
    session.explain()                                   # whole series
    session.explain("2020-03-01", "2020-07-01")         # spring wave only
    session.diff("2020-03-01", "2020-06-01")            # two-point diff
    session.query().window("2020-03-01", "2020-07-01") \
           .metric("absolute-change").top(5).run()      # fluent run-tier knobs

A windowed query slices the cube's ``overall``/``included``/``excluded``
matrices along the time axis (:meth:`ExplanationCube.slice_time` — views,
no copy), then applies the per-query smoothing, support filter and
difference metric.  Derived scorers are memoized in a per-session LRU keyed
by the window and the run-tier configuration, so repeating an interactive
query costs a dictionary lookup instead of a relation scan.

:class:`~repro.core.engine.TSExplain` remains as a thin facade delegating
to one lazily-created session, so existing call sites keep working
unchanged.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Hashable, Sequence

import numpy as np

from repro.core.config import ExplainConfig
from repro.core.pipeline import ExplainPipeline, prepare_cube
from repro.core.recommend import AttributeScore, recommend_explain_by
from repro.core.result import ExplainResult
from repro.core.smoothing import smooth_cube
from repro.cube.datacube import ExplanationCube
from repro.cube.delta import AppendInfo
from repro.cube.filters import apply_support_filter
from repro.diff.scorer import ScoredExplanation, SegmentScorer
from repro.exceptions import QueryError
from repro.obs.trace import span
from repro.relation.groupby import aggregate_over_time
from repro.relation.table import Relation
from repro.relation.timeseries import TimeSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.lattice.router import LatticeRouter, RouteInfo
    from repro.store.base import DataSource
    from repro.store.ingest import IngestReport

#: Derived (sliced/smoothed/filtered) scorers kept per session by default.
DEFAULT_SCORER_CACHE_SIZE = 32

#: :class:`ExplainConfig` fields that determine the raw cube's *bytes*.
#: A per-call config that changes one of these cannot be served from the
#: session's prepared cube at all.
CUBE_FIELDS = ("max_order", "deduplicate")

#: All prepare-tier fields: the cube-shaping ones plus the prepare
#: *mechanics* (cache persistence, build strategy).  A per-call config
#: that changes any of these makes :meth:`ExplainSession.pipeline` fall
#: back to a fresh legacy build, preserving the pre-session semantics —
#: e.g. a one-off ``cache_dir`` override still builds and stores on disk.
PREPARE_FIELDS = CUBE_FIELDS + ("cache_dir", "cache_max_entries", "columnar")

#: :class:`ExplainConfig` fields that select a derived scorer.  Together
#: with the window they form the session's LRU key; everything else
#: (``m``, ``k``, variance variant, O1/O2 flags) binds at solve time and
#: shares the scorer.
SCORER_FIELDS = ("smoothing_window", "use_filter", "filter_ratio", "metric")


def window_relation(
    relation: Relation,
    time_attr: str | None,
    start: Hashable | None,
    stop: Hashable | None,
) -> Relation:
    """Rows whose time label lies in ``[start, stop]`` (both inclusive).

    Vectorized: the time column is factorized once and rows are selected
    with a single positional range mask — O(n) with no per-label Python
    membership test.  This is the legacy restriction path, needed only
    when a relation (not a cube) must be windowed, e.g. for a per-call
    prepare-tier override.
    """
    if start is None and stop is None:
        return relation
    positions, labels = relation.time_positions(time_attr)
    series = TimeSeries(np.zeros(len(labels)), labels)
    start_pos = series.position_of(start) if start is not None else 0
    stop_pos = series.position_of(stop) if stop is not None else len(labels) - 1
    if start_pos >= stop_pos:
        raise QueryError("window must contain at least two time points")
    return relation.take((positions >= start_pos) & (positions <= stop_pos))


class ExplainSession:
    """A prepared TSExplain query serving unlimited run-tier requests.

    Sessions are **thread-safe**: the prepare tier, the scorer LRU and
    streaming appends are serialized on an internal reentrant lock, while
    the solve/segment tiers run lock-free on immutable derived scorers —
    so the serving tier (:mod:`repro.serve`) shares one session across a
    whole query thread pool, and concurrent first queries coalesce into a
    single cube build.

    Parameters
    ----------
    relation:
        The base relation ``R``; the session binds to it (and its cube)
        for its whole lifetime.  A zero-argument callable returning the
        relation is also accepted: the session then materializes it
        lazily, on the first operation that actually needs rows —
        :meth:`from_source` uses this so a cache-served or out-of-core
        prepared session never ingests the relation at all.  Lazy
        sessions must name ``explain_by`` and ``time_attr`` explicitly
        (there is no schema to default from without materializing).
    measure:
        Measure attribute ``M`` of the aggregate query.
    explain_by:
        Explain-by attribute names ``A`` (defaults to every dimension).
    aggregate:
        Aggregate function name (default ``sum``).
    time_attr:
        Time attribute ``T``; defaults to the schema's time attribute.
    config:
        Default configuration for every query; keyword overrides may be
        passed instead, as with :class:`~repro.core.engine.TSExplain`.
        ``cache_dir`` makes :meth:`prepare` load the cube from the
        persistent rollup cache when possible.
    scorer_cache_size:
        Derived scorers kept in the per-session LRU (default
        ``DEFAULT_SCORER_CACHE_SIZE``).  Each entry holds the smoothed/
        filtered series arrays of one ``(window, run-config)`` pair —
        a bare (unsmoothed, unfiltered) window slice is a view into the
        prepared cube, but smoothing and the support filter each copy,
        so a derived entry then costs about ``2 * epsilon * window * 8``
        bytes.  For very large cubes (paper scale: epsilon in the
        hundreds of thousands) size this down — one entry is usually
        enough for a stable interactive dashboard query.
    """

    def __init__(
        self,
        relation: "Relation | Callable[[], Relation]",
        measure: str,
        explain_by: Sequence[str] | None = None,
        aggregate: str = "sum",
        time_attr: str | None = None,
        config: ExplainConfig | None = None,
        scorer_cache_size: int = DEFAULT_SCORER_CACHE_SIZE,
        **config_overrides,
    ):
        if config is not None and config_overrides:
            config = config.updated(**config_overrides)
        elif config is None:
            config = ExplainConfig(**config_overrides)
        if scorer_cache_size < 1:
            raise QueryError(
                f"scorer_cache_size must be >= 1, got {scorer_cache_size}"
            )
        if callable(relation):
            self._relation_thunk: Callable[[], Relation] | None = relation
            self._relation: Relation | None = None
            if explain_by is None or time_attr is None:
                raise QueryError(
                    "a lazily-materialized relation needs explicit "
                    "explain_by and time_attr (no schema to default from)"
                )
        else:
            self._relation_thunk = None
            self._relation = relation
            if explain_by is None:
                explain_by = relation.schema.dimension_names()
        self._measure = measure
        self._explain_by = tuple(explain_by)
        self._aggregate = aggregate
        assert self._relation is not None or time_attr is not None
        self._time_attr = time_attr or self._relation.schema.require_time()
        self._config = config
        self._cube: ExplanationCube | None = None
        self._series: TimeSeries | None = None
        self._cache_hit: bool | None = None
        self._prepare_seconds = 0.0
        self._scorer_cache_size = scorer_cache_size
        self._scorers: OrderedDict[tuple, SegmentScorer] = OrderedDict()
        self._last_result: ExplainResult | None = None
        # Sessions are shared across threads by the serving tier
        # (repro.serve): one reentrant lock serializes every mutation of
        # the prepared cube, the scorer LRU and the timing bookkeeping.
        # Only the *derivation* steps hold it — the heavy solve/segment
        # tiers run on immutable scorers outside the lock, so concurrent
        # queries still overlap.  It also gives per-session single-flight
        # semantics: N threads racing the first query trigger exactly one
        # cube build.
        self._lock = threading.RLock()
        self._ingest_report: "IngestReport | None" = None
        self._route_info: "RouteInfo | None" = None

    # ------------------------------------------------------------------
    # Construction from data sources (repro.store)
    # ------------------------------------------------------------------
    @classmethod
    def from_source(
        cls,
        source: "DataSource | str",
        measure: str | None = None,
        explain_by: Sequence[str] | None = None,
        aggregate: str | None = None,
        time_attr: str | None = None,
        config: ExplainConfig | None = None,
        chunk_rows: int | None = None,
        out_of_core: bool = True,
        scorer_cache_size: int = DEFAULT_SCORER_CACHE_SIZE,
        **config_overrides,
    ) -> "ExplainSession":
        """A prepared session over a :mod:`repro.store` data source.

        ``source`` is a :class:`~repro.store.DataSource` or a source URI
        (``csv:…`` / ``npz:…`` / ``sqlite:…``); query defaults come from
        its binding (first measure, all dimensions, the URI's aggregate).
        The prepare tier runs immediately, source-shaped:

        * with a ``cache_dir`` configured, the rollup cache is checked
          under the **source fingerprint** first — a hit installs the
          stored cube without ingesting a single row;
        * on a miss the cube is built **out-of-core**: chunks of
          ``chunk_rows`` rows stream through the append ledger, so peak
          relation residency stays bounded by the chunk size while the
          result is bit-identical to an in-memory build (sources whose
          chunk order violates the append contract degrade to one-shot).

        The relation itself stays lazy: operations that need rows
        (:meth:`recommend`, :meth:`append`, prepare-tier config
        overrides) materialize it via ``source.read()`` on first use —
        check :attr:`relation_loaded`, and :attr:`ingest_report` for what
        the prepare actually did.
        """
        from repro.cube.cache import RollupCache
        from repro.store.base import DEFAULT_CHUNK_ROWS
        from repro.store.ingest import load_or_build_from_source
        from repro.store.uri import resolve_source

        source = resolve_source(source)
        schema = source.schema
        if measure is None:
            measures = schema.measure_names()
            if not measures:
                raise QueryError(f"source {source.uri} binds no measure column")
            measure = measures[0]
        explain_by = tuple(explain_by) if explain_by else schema.dimension_names()
        aggregate = aggregate or source.default_aggregate
        time_attr = time_attr or schema.require_time()
        session = cls(
            source.read,
            measure=measure,
            explain_by=explain_by,
            aggregate=aggregate,
            time_attr=time_attr,
            config=config,
            scorer_cache_size=scorer_cache_size,
            **config_overrides,
        )
        config = session.config
        cache = (
            RollupCache(config.cache_dir, max_entries=config.cache_max_entries)
            if config.cache_dir
            else None
        )
        started = time.perf_counter()
        cube, report = load_or_build_from_source(
            cache,
            source,
            explain_by,
            measure,
            aggregate=aggregate,
            time_attr=time_attr,
            max_order=config.max_order,
            deduplicate=config.deduplicate,
            columnar=config.columnar,
            chunk_rows=chunk_rows or DEFAULT_CHUNK_ROWS,
            out_of_core=out_of_core,
        )
        session.adopt_snapshot(
            # The one-shot fallback already paid for the full relation;
            # adopt it rather than re-ingesting on the first recommend()/
            # append().  Out-of-core and cache-hit prepares pass None and
            # stay lazy.
            report.relation,
            cube,
            cache_hit=report.cache_hit if cache is not None else None,
            prepare_seconds=time.perf_counter() - started,
        )
        session._ingest_report = report
        return session

    @classmethod
    def from_lattice(
        cls,
        router: "LatticeRouter",
        relation: Relation | None = None,
        source: "DataSource | str | None" = None,
        measure: str | None = None,
        explain_by: Sequence[str] | None = None,
        aggregate: str | None = None,
        time_attr: str | None = None,
        config: ExplainConfig | None = None,
        chunk_rows: int | None = None,
        out_of_core: bool = True,
        scorer_cache_size: int = DEFAULT_SCORER_CACHE_SIZE,
        **config_overrides,
    ) -> "ExplainSession":
        """A session prepared through a lattice router instead of a build.

        Exactly one of ``relation``/``source`` binds the data (the router
        must be keyed by that data's fingerprint —
        :meth:`~repro.lattice.router.LatticeRouter.for_relation` /
        :meth:`~repro.lattice.router.LatticeRouter.for_source`).  The
        session's cube request — ``(dims, measure, aggregate)`` plus the
        config's cube-shaping knobs — is routed first: an exact or
        derived rollup installs without touching the data.  Windows need
        no routing at all: a rollup covers the full time axis and every
        windowed query is an O(window) slice of it.  On a lattice miss
        the classic build path runs (out-of-core for sources) and the
        built cube is reported back to the router, which promotes shapes
        that keep missing.  :attr:`route_info` records the decision.
        """
        from repro.cube.cache import RollupCache
        from repro.lattice.spec import RollupSpec
        from repro.store.base import DEFAULT_CHUNK_ROWS
        from repro.store.ingest import load_or_build_from_source
        from repro.store.uri import resolve_source

        if (relation is None) == (source is None):
            raise QueryError(
                "from_lattice needs exactly one of relation= or source="
            )
        if source is not None:
            source = resolve_source(source)
            schema = source.schema
            aggregate = aggregate or source.default_aggregate
        else:
            schema = relation.schema
            aggregate = aggregate or "sum"
        if measure is None:
            measures = schema.measure_names()
            if not measures:
                raise QueryError("the bound data has no measure column")
            measure = measures[0]
        explain_by = tuple(explain_by) if explain_by else schema.dimension_names()
        time_attr = time_attr or schema.require_time()
        session = cls(
            relation if relation is not None else source.read,
            measure=measure,
            explain_by=explain_by,
            aggregate=aggregate,
            time_attr=time_attr,
            config=config,
            scorer_cache_size=scorer_cache_size,
            **config_overrides,
        )
        config = session.config
        spec = RollupSpec(
            dims=explain_by,
            measure=measure,
            aggregate=aggregate,
            max_order=config.max_order,
            deduplicate=config.deduplicate,
        )
        started = time.perf_counter()
        cube, info = router.route(spec)
        if cube is not None:
            session.adopt_snapshot(
                None,
                cube,
                cache_hit=True,
                prepare_seconds=time.perf_counter() - started,
            )
        elif source is not None:
            cache = (
                RollupCache(config.cache_dir, max_entries=config.cache_max_entries)
                if config.cache_dir
                else None
            )
            cube, report = load_or_build_from_source(
                cache,
                source,
                explain_by,
                measure,
                aggregate=aggregate,
                time_attr=time_attr,
                max_order=config.max_order,
                deduplicate=config.deduplicate,
                columnar=config.columnar,
                chunk_rows=chunk_rows or DEFAULT_CHUNK_ROWS,
                out_of_core=out_of_core,
            )
            session.adopt_snapshot(
                report.relation,
                cube,
                cache_hit=report.cache_hit if cache is not None else None,
                prepare_seconds=time.perf_counter() - started,
            )
            session._ingest_report = report
            router.record_build(spec, cube)
        else:
            session.prepare()
            router.record_build(spec, session.cube)
        session._route_info = info
        return session

    @property
    def route_info(self) -> "RouteInfo | None":
        """How :meth:`from_lattice` routed this session (else ``None``)."""
        return self._route_info

    @property
    def ingest_report(self) -> "IngestReport | None":
        """How :meth:`from_source` prepared this session (else ``None``)."""
        return self._ingest_report

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> ExplainConfig:
        return self._config

    @property
    def relation(self) -> Relation:
        """The base relation, materializing a lazy one on first access."""
        with self._lock:
            if self._relation is None:
                if self._relation_thunk is None:
                    raise QueryError("session has no relation bound")
                self._relation = self._relation_thunk()
            return self._relation

    @property
    def relation_loaded(self) -> bool:
        """Whether the base relation is materialized (never triggers IO).

        ``False`` only for :meth:`from_source` sessions whose cube came
        from the rollup cache or the out-of-core build and that have not
        yet needed rows; consumers that merely *report* (the serving
        tier's ``/datasets``) check this instead of forcing an ingest.
        """
        with self._lock:
            return self._relation is not None

    @property
    def measure(self) -> str:
        return self._measure

    @property
    def explain_by(self) -> tuple[str, ...]:
        return self._explain_by

    @property
    def aggregate(self) -> str:
        return self._aggregate

    @property
    def time_attr(self) -> str:
        return self._time_attr

    @property
    def prepared(self) -> bool:
        """Whether the raw cube has been built or cache-loaded yet."""
        return self._cube is not None

    @property
    def cache_hit(self) -> bool | None:
        """Whether :meth:`prepare` served the cube from the rollup cache.

        ``None`` until :meth:`prepare` has run or when no ``cache_dir`` is
        configured; otherwise ``True`` (loaded from disk) or ``False``
        (built from the relation).
        """
        return self._cache_hit

    @property
    def last_result(self) -> ExplainResult | None:
        """The most recent :meth:`explain` result, if any."""
        return self._last_result

    # ------------------------------------------------------------------
    # Prepare tier
    # ------------------------------------------------------------------
    def prepare(self) -> "ExplainSession":
        """Build or cache-load the raw explanation cube (idempotent).

        Called implicitly by the first query; call it explicitly to pay
        the expensive tier up front (e.g. before handing the session to an
        interactive loop).  Returns ``self`` for chaining.
        """
        with self._lock:
            if self._cube is not None:
                return self
            started = time.perf_counter()
            cube, hit = prepare_cube(
                self.relation,
                self._measure,
                self._explain_by,
                self._aggregate,
                self._time_attr,
                self._config,
            )
            self._prepare_seconds = time.perf_counter() - started
            if hit is not None:
                self._cache_hit = hit
            self._cube = cube
        return self

    @property
    def cube(self) -> ExplanationCube:
        """The raw (unsmoothed, unfiltered) prepared cube."""
        self.prepare()
        assert self._cube is not None
        return self._cube

    def series(self) -> TimeSeries:
        """The aggregated time series being explained (unsmoothed).

        Served from the prepared cube when it exists; otherwise computed
        with a cheap group-by so inspecting the series never forces the
        expensive prepare tier.
        """
        with self._lock:
            if self._cube is not None:
                if self._series is None:
                    self._series = self._cube.overall_series()
                return self._series
            relation = self.relation
        return aggregate_over_time(
            relation, self._measure, self._aggregate, self._time_attr
        )

    # ------------------------------------------------------------------
    # Streaming appends
    # ------------------------------------------------------------------
    def append(self, delta: Relation) -> AppendInfo | None:
        """Absorb newly arrived rows without re-preparing the session.

        When the session's cube is prepared and appendable, the delta is
        scattered into it in O(delta)
        (:meth:`~repro.cube.datacube.ExplanationCube.append`) and only the
        scorer-LRU entries the append actually invalidates are dropped:

        * every entry whose window's right edge reaches into the changed
          region (``stop_pos >= first_changed_position``) — smoothing and
          the support filter are applied *after* slicing, so a window that
          ends strictly before the first changed position is bitwise
          unaffected regardless of those knobs;
        * every entry whose scorer is bound to the live cube object
          (defensive: cached scorers are detached snapshots of the cube's
          buffers, so the in-place append can tear none of them — see
          :meth:`ExplanationCube.detach`);
        * everything, when the append grew the candidate set.

        An unprepared session just grows its relation (the first query
        builds over the full data), and a session whose cube cannot absorb
        deltas (cache-loaded without its ledger) falls back to dropping
        the cube so the next query rebuilds.  Returns the
        :class:`~repro.cube.delta.AppendInfo` when an in-place append
        happened, ``None`` otherwise.
        """
        with self._lock:
            return self._append_locked(delta)

    def _append_locked(self, delta: Relation) -> AppendInfo | None:
        if delta.n_rows == 0:
            # A poll tick with no new rows: touch nothing — no relation
            # concat (O(n) array copies), no cube drop, no scorer-LRU
            # invalidation, and a lazy (source-backed) relation is not
            # forced.  The prepared path still reports a no-op
            # AppendInfo (and validates the delta schema) through the
            # ledger's own empty-delta shortcut.
            if self._cube is not None and self._cube.appendable:
                return self._cube.append(delta)
            return None
        new_relation = self.relation.concat(delta)
        info: AppendInfo | None = None
        if self._cube is not None and self._cube.appendable:
            started = time.perf_counter()
            info = self._cube.append(delta)
            self._prepare_seconds += time.perf_counter() - started
            if not info.is_noop:
                self._series = None
                if info.candidates_changed:
                    self._scorers.clear()
                else:
                    first_changed = info.first_changed_position
                    stale = [
                        key
                        for key, scorer in self._scorers.items()
                        if key[1] >= first_changed or scorer.cube is self._cube
                    ]
                    for key in stale:
                        del self._scorers[key]
        elif self._cube is not None:
            self._cube = None
            self._scorers.clear()
            self._series = None
            self._cache_hit = None
        self._relation = new_relation
        return info

    def adopt_snapshot(
        self,
        relation: Relation | None,
        cube: ExplanationCube,
        cache_hit: bool | None = True,
        prepare_seconds: float = 0.0,
    ) -> None:
        """Replace the session's relation and prepared cube wholesale.

        The streaming fast-forward path uses this when a later snapshot of
        the stream is already in the rollup cache (base fingerprint +
        append log): instead of re-scattering every delta, the session
        jumps straight to the cached cube.  All derived scorers are
        dropped.  ``cache_hit`` defaults to ``True`` (the fast-forward
        semantics); the serving tier's sharded cold build passes its real
        outcome instead, together with the ``prepare_seconds`` it spent,
        so latency reporting stays truthful.  ``relation=None`` keeps the
        current binding — :meth:`from_source` installs an out-of-core or
        cache-served cube this way without materializing the (lazy)
        relation.
        """
        if (
            cube.measure != self._measure
            or cube.explain_by != tuple(sorted(self._explain_by))
            or cube.aggregate.name != self._aggregate
        ):
            raise QueryError(
                "adopted cube was built for a different query than this session"
            )
        with self._lock:
            if relation is not None:
                self._relation = relation
            self._cube = cube
            self._scorers.clear()
            self._series = None
            self._cache_hit = cache_hit
            self._prepare_seconds = prepare_seconds

    # ------------------------------------------------------------------
    # Run tier
    # ------------------------------------------------------------------
    def _window_positions(
        self, start: Hashable | None, stop: Hashable | None
    ) -> tuple[int, int]:
        """Resolve window labels to inclusive cube positions."""
        cube = self.cube
        n_times = cube.n_times
        if start is None and stop is None:
            return 0, n_times - 1
        series = self.series()
        start_pos = series.position_of(start) if start is not None else 0
        stop_pos = series.position_of(stop) if stop is not None else n_times - 1
        if start_pos >= stop_pos:
            raise QueryError("window must contain at least two time points")
        return start_pos, stop_pos

    def scorer(
        self,
        start: Hashable | None = None,
        stop: Hashable | None = None,
        config: ExplainConfig | None = None,
    ) -> SegmentScorer:
        """The derived run-tier scorer for a label window.

        Slices the prepared cube to ``[start, stop]`` and applies the
        config's smoothing, support filter and difference metric.  Results
        are memoized in the per-session LRU keyed by the window positions
        and the run-tier fields (``SCORER_FIELDS``), so repeated
        interactive queries share one derivation.  A config whose
        cube-shaping fields (``CUBE_FIELDS``) differ from the session's
        is rejected — the prepared cube cannot represent it; open a new
        session (or go through :meth:`explain`, which falls back to a
        fresh build) instead.
        """
        config = config or self._config
        mismatched = [
            field
            for field in CUBE_FIELDS
            if getattr(config, field) != getattr(self._config, field)
        ]
        if mismatched:
            raise QueryError(
                f"config changes cube-shaping field(s) {mismatched}; this "
                "session's prepared cube cannot serve it — create a new "
                "ExplainSession with that configuration"
            )
        with self._lock:
            start_pos, stop_pos = self._window_positions(start, stop)
            return self._scorer_for(start_pos, stop_pos, config)

    def _scorer_for(
        self, start_pos: int, stop_pos: int, config: ExplainConfig
    ) -> SegmentScorer:
        with self._lock:
            key = (start_pos, stop_pos) + tuple(
                getattr(config, field) for field in SCORER_FIELDS
            )
            cached = self._scorers.get(key)
            if cached is not None:
                self._scorers.move_to_end(key)
                return cached
            with span("derive-scorer"):
                cube = self.cube
                if (start_pos, stop_pos) != (0, cube.n_times - 1):
                    cube = cube.slice_time(start_pos, stop_pos)
                if config.smoothing_window is not None:
                    cube = smooth_cube(cube, config.smoothing_window)
                if config.use_filter:
                    cube = apply_support_filter(cube, config.filter_ratio)
                if self._cube is not None and self._cube.appendable:
                    # The derived cube may view/alias the live cube's
                    # buffers, which append() re-finalizes in place.
                    # Snapshot it so a solve running outside the lock can
                    # never observe an append's partial writes (append
                    # still drops the LRU entries the delta invalidates).
                    cube = cube.detach(self._cube)
                scorer = SegmentScorer(cube, config.metric)
            self._scorers[key] = scorer
            while len(self._scorers) > self._scorer_cache_size:
                self._scorers.popitem(last=False)
            return scorer

    def pipeline(
        self,
        start: Hashable | None = None,
        stop: Hashable | None = None,
        config: ExplainConfig | None = None,
    ) -> ExplainPipeline:
        """An :class:`ExplainPipeline` seeded with this session's scorer.

        The returned pipeline's prepare phase is already done — its
        :meth:`~ExplainPipeline.prepare` hands back the derived scorer —
        so callers pay only the solve/segment tiers.  A per-call ``config``
        that changes any prepare-tier field (``PREPARE_FIELDS``) falls
        back to a fresh legacy pipeline over the windowed relation: a
        different ``max_order``/``deduplicate`` cannot be served from the
        session's cube at all, and a one-off ``cache_dir``/``columnar``
        must keep its pre-session side effects (build strategy, on-disk
        store) rather than being silently ignored.
        """
        config = config or self._config
        if any(
            getattr(config, field) != getattr(self._config, field)
            for field in PREPARE_FIELDS
        ):
            relation = window_relation(self.relation, self._time_attr, start, stop)
            return ExplainPipeline(
                relation,
                self._measure,
                self._explain_by,
                aggregate=self._aggregate,
                time_attr=self._time_attr,
                config=config,
            )
        with self._lock:
            started = time.perf_counter()
            scorer = self.scorer(start, stop, config)
            derive_seconds = time.perf_counter() - started
            # The cube build is charged to the first query that triggered
            # it; later queries report only their own (slice/smooth/filter)
            # cost.
            build_seconds, self._prepare_seconds = self._prepare_seconds, 0.0
            return ExplainPipeline.from_scorer(
                scorer,
                config,
                epsilon=self.cube.n_explanations,
                cache_hit=self._cache_hit,
                prepare_seconds=build_seconds + derive_seconds,
            )

    def explain(
        self,
        start: Hashable | None = None,
        stop: Hashable | None = None,
        config: ExplainConfig | None = None,
    ) -> ExplainResult:
        """Segment and explain the series, optionally over a label window.

        Parameters
        ----------
        start / stop:
            Timestamp labels delimiting the period of interest (both
            inclusive); defaults to the whole series.  Windowed queries
            are O(window) slices of the prepared cube.
        config:
            One-off configuration override for this call (replaces, not
            merges with, the session config — the
            :class:`~repro.core.engine.TSExplain` contract).
        """
        # The heavy solve/segment tiers run outside the session lock, on
        # the immutable scorer the pipeline was seeded with.
        result = self.pipeline(start, stop, config).run()
        with self._lock:
            self._last_result = result
        return result

    def top_explanations(
        self,
        start: Hashable,
        stop: Hashable,
        m: int | None = None,
        config: ExplainConfig | None = None,
    ) -> list[ScoredExplanation]:
        """Classic two-relations diff between two timestamps.

        The control relation is the data at ``start`` and the test
        relation the data at ``stop`` (Example 3.1); returns the top-m
        non-overlapping explanations of their difference — a single
        O(epsilon) gather against the prepared cube.  ``config`` is a
        one-off override for this call (the builder's
        :meth:`ExplainQuery.top_explanations` routes through it); ``m``
        overrides the explanation quota on top of it.
        """
        config = config or self._config
        if m is not None:
            config = config.updated(m=m)
        # A diff reports no timings, so keep the cube-build cost charged
        # to the next explain() instead of letting pipeline() consume it.
        with self._lock:
            self.prepare()
            build_seconds = self._prepare_seconds
            pipeline = self.pipeline(config=config)
            self._prepare_seconds = build_seconds
        scorer = pipeline.prepare()
        solver = pipeline.solver(scorer)
        series = scorer.cube.overall_series()
        start_pos = series.position_of(start)
        stop_pos = series.position_of(stop)
        if start_pos >= stop_pos:
            raise QueryError(f"start {start!r} must precede stop {stop!r}")
        gammas, taus = scorer.gamma_tau(start_pos, stop_pos)
        result = solver.solve_batch(gammas[None, :])[0]
        return [
            ScoredExplanation(
                explanation=scorer.cube.explanations[index],
                gamma=float(gammas[index]),
                tau=int(taus[index]),
            )
            for index in result.indices
        ]

    def diff(
        self,
        start: Hashable,
        stop: Hashable,
        m: int | None = None,
        config: ExplainConfig | None = None,
    ) -> list[ScoredExplanation]:
        """Alias of :meth:`top_explanations` under its OLAP name."""
        return self.top_explanations(start, stop, m=m, config=config)

    def recommend(
        self,
        candidates: Sequence[str] | None = None,
        m: int = 3,
        n_probes: int = 16,
    ) -> list[AttributeScore]:
        """Rank candidate explain-by attributes for this session's query.

        Delegates to :func:`~repro.core.recommend.recommend_explain_by`
        with the session's relation, measure and aggregate; probing builds
        small single-attribute cubes and never touches (or forces) the
        session's own prepared cube.
        """
        return recommend_explain_by(
            self.relation,
            self._measure,
            candidates=candidates,
            aggregate=self._aggregate,
            time_attr=self._time_attr,
            m=m,
            n_probes=n_probes,
        )

    def query(self) -> "ExplainQuery":
        """Start a fluent run-tier query bound to this session."""
        return ExplainQuery(self)

    def __repr__(self) -> str:
        state = "prepared" if self.prepared else "unprepared"
        rows = (
            f"{self._relation.n_rows} rows"
            if self._relation is not None
            else "relation unmaterialized"
        )
        return (
            f"ExplainSession({self._measure} by {list(self._explain_by)}, "
            f"{rows}, {state}, "
            f"{len(self._scorers)} cached scorer(s))"
        )


class ExplainQuery:
    """Fluent builder for one run-tier query against a session.

    Every setter returns the builder, so run-tier knobs chain without
    touching the prepare tier::

        result = (session.query()
                  .window("2020-03-01", "2020-07-01")
                  .metric("absolute-change")
                  .smoothing(7)
                  .top(5)
                  .run())

    :meth:`run` executes :meth:`ExplainSession.explain` with the collected
    overrides; :meth:`top_explanations` runs the two-point diff over the
    window endpoints instead.  Overrides are validated when the config is
    assembled, so a typo'd metric or variant fails before any work runs.
    """

    def __init__(self, session: ExplainSession):
        self._session = session
        self._start: Hashable | None = None
        self._stop: Hashable | None = None
        self._overrides: dict = {}

    # ------------------------------------------------------------------
    # Window and run-tier knobs
    # ------------------------------------------------------------------
    def window(
        self, start: Hashable | None = None, stop: Hashable | None = None
    ) -> "ExplainQuery":
        """Restrict the query to ``[start, stop]`` (inclusive labels)."""
        self._start = start
        self._stop = stop
        return self

    def metric(self, name: str) -> "ExplainQuery":
        """Difference metric for this query (e.g. ``absolute-change``)."""
        self._overrides["metric"] = name
        return self

    def top(self, m: int) -> "ExplainQuery":
        """Number of explanations returned per segment."""
        self._overrides["m"] = m
        return self

    def segments(self, k: int | None) -> "ExplainQuery":
        """Fix the segment count; ``None`` restores the elbow selection."""
        self._overrides["k"] = k
        return self

    def smoothing(self, window: int | None) -> "ExplainQuery":
        """Moving-average window applied before explaining (``None`` off)."""
        self._overrides["smoothing_window"] = window
        return self

    def variant(self, name: str) -> "ExplainQuery":
        """Within-segment variance design (default ``tse``)."""
        self._overrides["variant"] = name
        return self

    def filtered(self, enabled: bool = True, ratio: float | None = None) -> "ExplainQuery":
        """Toggle the support filter, optionally with a custom ratio."""
        self._overrides["use_filter"] = enabled
        if ratio is not None:
            self._overrides["filter_ratio"] = ratio
        return self

    def configured(self, **overrides) -> "ExplainQuery":
        """Arbitrary :class:`ExplainConfig` field overrides."""
        self._overrides.update(overrides)
        return self

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def build_config(self) -> ExplainConfig:
        """The session config with this query's overrides applied."""
        if not self._overrides:
            return self._session.config
        return self._session.config.updated(**self._overrides)

    def run(self) -> ExplainResult:
        """Execute the query and return the evolving explanations."""
        return self._session.explain(self._start, self._stop, config=self.build_config())

    def top_explanations(self) -> list[ScoredExplanation]:
        """Two-point diff between the window's endpoint labels.

        Every collected override (metric, smoothing, filter, ``m``, ...)
        applies, exactly as it would in :meth:`run`.
        """
        if self._start is None or self._stop is None:
            raise QueryError(
                "top_explanations requires an explicit window(start, stop)"
            )
        return self._session.top_explanations(
            self._start, self._stop, config=self.build_config()
        )

    def __repr__(self) -> str:
        knobs = ", ".join(f"{k}={v!r}" for k, v in self._overrides.items())
        return (
            f"ExplainQuery(window=[{self._start!r}, {self._stop!r}]"
            f"{', ' + knobs if knobs else ''})"
        )
