"""Real-time / incremental explanation (paper section 8).

"TSExplain first gives users the segmentation results of existing time
series and meanwhile caches all unit segments' top explanations.  When new
data arrives, it incrementally computes the top explanations for the new
time series, runs the segmentation algorithm based on the existing time
series' cutting points and newly arrived data points, and updates the
segmentation results."

:class:`StreamingExplainer` implements exactly that schedule: after the
first full run, each :meth:`update` re-segments only over the previously
chosen cutting positions plus every point in the newly appended region, so
old regions can merge with new data but are not re-searched at full
resolution.  A full re-run can be forced at any time with :meth:`refresh`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.config import ExplainConfig
from repro.core.result import ExplainResult
from repro.core.session import ExplainSession
from repro.exceptions import QueryError
from repro.relation.table import Relation
from repro.segmentation.dp import solve_k_segmentation
from repro.segmentation.kselect import elbow_point
from repro.segmentation.variance import SegmentationCosts


class StreamingExplainer:
    """Incrementally maintained evolving explanations over growing data.

    Parameters
    ----------
    relation:
        Initial rows (may be empty of *later* timestamps; new rows arrive
        via :meth:`update`).
    measure / explain_by / aggregate / time_attr / config:
        As in :class:`~repro.core.engine.TSExplain`.  A config with
        ``cache_dir`` set makes every :meth:`update` store its rebuilt
        cube in the rollup cache, so a restarted (or concurrently
        replayed) stream re-serves already-seen snapshots from disk
        instead of rescanning them.  Because every snapshot has a fresh
        fingerprint, pair ``cache_dir`` with ``cache_max_entries`` on
        long-running streams to keep the directory bounded — and note
        that each update then pays a whole-relation fingerprint plus a
        compressed cube write that only pays off on replay, so leave
        ``cache_dir`` unset for high-frequency streams that are never
        replayed.
    """

    def __init__(
        self,
        relation: Relation,
        measure: str,
        explain_by: Sequence[str],
        aggregate: str = "sum",
        time_attr: str | None = None,
        config: ExplainConfig | None = None,
    ):
        self._relation = relation
        self._measure = measure
        self._explain_by = tuple(explain_by)
        self._aggregate = aggregate
        self._time_attr = time_attr
        self._config = config or ExplainConfig()
        self._result: ExplainResult | None = None
        self._session: ExplainSession | None = None

    @property
    def result(self) -> ExplainResult | None:
        """The latest explanation, or ``None`` before the first run."""
        return self._result

    @property
    def relation(self) -> Relation:
        return self._relation

    def session(self) -> ExplainSession:
        """The session bound to the *current* snapshot of the stream.

        A session's unit of reuse is one relation + cube parameters, so a
        new session is created whenever :meth:`update` has grown the
        relation; between updates, every query (refresh, incremental
        re-segmentation, ad-hoc windows) shares the snapshot's prepared
        cube.  With ``cache_dir`` configured the new session still
        re-serves already-seen snapshots from the rollup cache on disk.
        """
        if self._session is None or self._session.relation is not self._relation:
            self._session = ExplainSession(
                self._relation,
                self._measure,
                self._explain_by,
                aggregate=self._aggregate,
                time_attr=self._time_attr,
                config=self._config,
            )
        return self._session

    def refresh(self) -> ExplainResult:
        """Full (non-incremental) re-run over the current relation."""
        self._result = self.session().explain()
        return self._result

    def update(self, new_rows: Relation) -> ExplainResult:
        """Append rows and incrementally update the explanation.

        New timestamps must not precede existing ones; rows *at* existing
        timestamps are allowed (late-arriving records for the latest day).
        """
        old_n = self._n_times()
        self._relation = self._relation.concat(new_rows)
        if self._result is None:
            return self.refresh()
        new_n = self._n_times()
        if new_n < old_n:
            raise QueryError("relation shrank after update")  # pragma: no cover

        # Candidate cut positions: previous boundaries + all new points.
        previous = set(self._result.boundaries)
        previous.discard(max(previous))  # the old right endpoint may shift
        positions = sorted(previous | set(range(max(old_n - 1, 1) - 1, new_n)))
        if positions[0] != 0:
            positions.insert(0, 0)

        pipeline = self.session().pipeline()
        scorer = pipeline.prepare()
        solver = pipeline.solver(scorer)
        costs = SegmentationCosts(
            scorer,
            solver,
            m=self._config.m,
            variant=self._config.variant,
            cut_positions=np.asarray(positions, dtype=np.intp),
        )
        k_cap = min(self._config.k_max, costs.n_points - 1)
        schemes = solve_k_segmentation(costs.cost_matrix, k_max=k_cap)
        by_k = {scheme.k: scheme for scheme in schemes}
        if self._config.k is not None and self._config.k in by_k:
            chosen = by_k[self._config.k]
            k_was_auto = False
        else:
            ks = sorted(by_k)
            chosen = by_k[elbow_point(ks, [by_k[k].total_cost for k in ks])]
            k_was_auto = True
        self._result = pipeline._assemble(
            scorer,
            costs,
            chosen,
            k_was_auto,
            by_k,
            timings={"precomputation": 0.0, "cascading": 0.0, "segmentation": 0.0},
        )
        return self._result

    # ------------------------------------------------------------------
    def _n_times(self) -> int:
        schema = self._relation.schema
        name = self._time_attr or schema.require_time()
        return len(self._relation.distinct_values(name))
