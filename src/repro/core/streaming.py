"""Real-time / incremental explanation (paper section 8).

"TSExplain first gives users the segmentation results of existing time
series and meanwhile caches all unit segments' top explanations.  When new
data arrives, it incrementally computes the top explanations for the new
time series, runs the segmentation algorithm based on the existing time
series' cutting points and newly arrived data points, and updates the
segmentation results."

:class:`StreamingExplainer` implements that schedule **incrementally end to
end**.  Each :meth:`update`:

1. scatters only the delta's rows into the session's prepared cube
   (:meth:`~repro.core.session.ExplainSession.append` →
   :meth:`~repro.cube.datacube.ExplanationCube.append`) — O(delta), never
   a whole-relation rescan, and bit-identical to a full rebuild.  (The
   *derived* scorer is still re-applied per update, so a config with the
   support filter or smoothing enabled additionally pays that tier's
   O(epsilon x n) array pass — disable both for the leanest updates);
2. extends the previous update's segment-cost structures over the appended
   suffix (:meth:`~repro.segmentation.variance.SegmentationCosts.extend`):
   unit objects and segment costs strictly before the changed region are
   reused, only the new region is solved;
3. re-runs the K-segmentation DP and elbow selection through the same
   :func:`~repro.core.pipeline.select_scheme` the batch pipeline uses.

Two re-segmentation schedules are available via ``resegment``:

``"pinned"`` (default, the paper's section 8 schedule)
    Cut candidates are the previous boundaries plus every point in the
    newly appended region — old regions may merge with new data but are
    not re-searched at full resolution.
``"full"``
    Cut candidates are every point, exactly like a batch run.  Because
    the appended cube, the extended costs and the shared scheme selection
    are all bit-identical to their from-scratch counterparts, a ``full``
    update returns **byte-identical results to** :meth:`refresh` **at a
    fraction of the cost** (``benchmarks/bench_streaming_append.py``
    asserts ≥ 10x on a warm stream).

:meth:`refresh` remains the executable specification: it discards the
session and re-runs the full batch pipeline over the current relation.
Call it to double-check the incremental state, or after events the
incremental path refuses (it raises
:class:`~repro.exceptions.QueryError` when a delta would back-fill new
timestamps before the stream's end).

With :attr:`~repro.core.config.ExplainConfig.cache_dir` configured, the
stream persists every snapshot under a **chained key**: the base
relation is fingerprinted once (at :meth:`refresh`), and each update
folds only its delta's fingerprint into the previous key
(:func:`~repro.cube.cache.chain_fingerprint`) — so per-update *hashing*
is O(delta), never a whole-relation hash.  The snapshot **write** itself
is still proportional to the cube (a compressed dump of the series
arrays and the append ledger) and only pays off on replay: leave
``cache_dir`` unset for high-frequency streams that are never replayed,
and pair it with ``cache_max_entries`` on long-running ones to bound the
directory.  The base key and delta sequence are persisted in an
:class:`~repro.cube.cache.AppendLog`; a restarted stream that replays
the same base and deltas *fast-forwards* through the cached snapshots
instead of re-appending.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.config import ExplainConfig
from repro.core.pipeline import select_scheme
from repro.core.result import ExplainResult
from repro.core.session import ExplainSession
from repro.cube.cache import (
    AppendLog,
    CubeKey,
    RollupCache,
    chain_fingerprint,
    chained_key,
    cube_key,
)
from repro.cube.datacube import ExplanationCube
from repro.cube.delta import AppendInfo
from repro.diff.scorer import SegmentScorer
from repro.exceptions import QueryError, SegmentationError
from repro.relation.table import Relation
from repro.segmentation.variance import SegmentationCosts

#: Valid ``resegment`` schedules.
RESEGMENT_MODES = ("pinned", "full")


class StreamingExplainer:
    """Incrementally maintained evolving explanations over growing data.

    Parameters
    ----------
    relation:
        Initial rows (new rows arrive via :meth:`update`).
    measure / explain_by / aggregate / time_attr / config:
        As in :class:`~repro.core.engine.TSExplain`.  ``config.cache_dir``
        enables the chained snapshot cache described in the module
        docstring.
    resegment:
        ``"pinned"`` (paper schedule: previous cuts + new points) or
        ``"full"`` (all points; byte-identical to :meth:`refresh`).
    """

    def __init__(
        self,
        relation: Relation,
        measure: str,
        explain_by: Sequence[str],
        aggregate: str = "sum",
        time_attr: str | None = None,
        config: ExplainConfig | None = None,
        resegment: str = "pinned",
    ):
        if resegment not in RESEGMENT_MODES:
            raise QueryError(
                f"unknown resegment mode {resegment!r}; use one of {RESEGMENT_MODES}"
            )
        self._relation = relation
        self._measure = measure
        self._explain_by = tuple(explain_by)
        self._aggregate = aggregate
        self._time_attr = time_attr
        self._config = config or ExplainConfig()
        self._resegment = resegment
        self._result: ExplainResult | None = None
        self._session: ExplainSession | None = None
        self._costs: SegmentationCosts | None = None
        self._cache = (
            RollupCache(self._config.cache_dir, max_entries=self._config.cache_max_entries)
            if self._config.cache_dir
            else None
        )
        self._base_key: CubeKey | None = None
        self._chain_fp: str | None = None
        self._log: AppendLog | None = None
        self._updates = 0

    @property
    def result(self) -> ExplainResult | None:
        """The latest explanation, or ``None`` before the first run."""
        return self._result

    @property
    def relation(self) -> Relation:
        return self._relation

    @property
    def resegment(self) -> str:
        """The re-segmentation schedule (``pinned`` or ``full``)."""
        return self._resegment

    def session(self) -> ExplainSession:
        """The long-lived session holding the stream's prepared cube.

        Unlike the batch engines, the streaming session survives updates:
        :meth:`update` appends into its cube in place and invalidates only
        the derived scorers the append touched, so ad-hoc interactive
        queries between updates reuse the incrementally maintained cube.
        :meth:`refresh` replaces the session wholesale (full rebuild).
        """
        if self._session is None or self._session.relation is not self._relation:
            self._session = ExplainSession(
                self._relation,
                self._measure,
                self._explain_by,
                aggregate=self._aggregate,
                time_attr=self._time_attr,
                config=self._config,
            )
        return self._session

    # ------------------------------------------------------------------
    def refresh(self) -> ExplainResult:
        """Full (non-incremental) re-run over the current relation.

        The executable specification of :meth:`update`: the session, its
        cube and the incremental cost structures are discarded and rebuilt
        from the relation by the batch pipeline.  With a cache configured
        this is also the one place the stream pays a whole-relation
        fingerprint — it anchors the chained snapshot keys and resets the
        append log position.
        """
        self._session = None
        self._costs = None
        session = self.session()
        self._result = session.explain()
        if self._cache is not None:
            config = session.config
            self._base_key = cube_key(
                self._relation,
                self._measure,
                self._explain_by,
                aggregate=self._aggregate,
                time_attr=self._time_attr,
                max_order=config.max_order,
                deduplicate=config.deduplicate,
            )
            self._chain_fp = self._base_key.fingerprint
            self._log = AppendLog(self._cache.directory, self._base_key)
            self._updates = 0
        return self._result

    # ------------------------------------------------------------------
    def update(self, new_rows: Relation) -> ExplainResult:
        """Append rows and incrementally update the explanation.

        Delta timestamps must be existing ones (late-arriving records) or
        sort strictly after the stream's last timestamp; a delta that
        would back-fill *new* timestamps into the past raises
        :class:`~repro.exceptions.QueryError` before any state changes.
        Rows within the delta may arrive in any order.
        """
        if self._result is None:
            self._relation = self._relation.concat(new_rows)
            return self.refresh()
        if new_rows.n_rows == 0:
            # A poll tick with no new rows is a cheap no-op: the cached
            # result stands, the session's scorer LRU and the chained
            # snapshot key are untouched (an empty delta folded into the
            # chain would fork the fingerprint away from a replay that
            # never saw the empty tick), and no pipeline re-run is paid.
            return self._result
        session = self.session()
        info = self._apply_delta(session, new_rows)
        self._relation = session.relation

        pipeline = session.pipeline()
        scorer = pipeline.prepare()
        solver = pipeline.solver(scorer)
        costs = self._grow_costs(scorer, solver, info)
        scheme, k_was_auto, by_k = select_scheme(costs, self._config)
        timings = {
            # The session charged the cube append + scorer derivation to
            # the pipeline's prepare tier; keep the breakdown truthful.
            "precomputation": pipeline._prepare_seconds + costs.timings["precompute"],
            "cascading": costs.timings["cascading"],
            "segmentation": costs.timings["segmentation"],
        }
        self._result = pipeline._assemble(
            scorer, costs, scheme, k_was_auto, by_k, timings, trust_costs=True
        )
        self._costs = costs
        return self._result

    # ------------------------------------------------------------------
    def _apply_delta(self, session: ExplainSession, delta: Relation) -> AppendInfo | None:
        """Append the delta to the session, via the chained cache if set."""
        if self._cache is None or self._base_key is None or self._chain_fp is None:
            return session.append(delta)
        position = self._updates
        delta_fp = delta.fingerprint()
        matched = self._log.align(position, delta_fp) if self._log is not None else False
        next_fp = chain_fingerprint(self._chain_fp, delta_fp)
        key = chained_key(self._base_key, next_fp)
        info: AppendInfo | None = None
        if matched:
            cached = self._cache.load(key)
            if cached is not None and cached.appendable and session.prepared:
                # Fast-forward: this snapshot was already built by an
                # earlier run of the same stream.
                info = _adopt_info(session.cube, cached, delta)
                session.adopt_snapshot(session.relation.concat(delta), cached)
        if info is None:
            info = session.append(delta)
            if info is not None:
                try:
                    self._cache.store(key, session.cube)
                except (TypeError, OSError):
                    # An unpersistable snapshot never fails the stream.
                    pass
        self._chain_fp = next_fp
        self._updates += 1
        return info

    def _grow_costs(
        self,
        scorer: SegmentScorer,
        solver,
        info: AppendInfo | None,
    ) -> SegmentationCosts:
        """Segment costs for the grown series, incrementally when possible."""
        config = self._config
        n_times = scorer.cube.n_times
        positions: np.ndarray | None = None
        if self._resegment == "pinned" and self._result is not None:
            old_n = info.old_n_times if info is not None else n_times
            previous = set(self._result.boundaries)
            previous.discard(max(previous))  # the old right endpoint may shift
            grid = sorted(previous | set(range(max(old_n - 1, 1) - 1, n_times)))
            if grid[0] != 0:
                grid.insert(0, 0)
            positions = np.asarray(grid, dtype=np.intp)
        if info is not None and self._costs is not None and not info.candidates_changed:
            first_changed = info.first_changed_position
            if config.smoothing_window is not None:
                # Smoothing bleeds changed values half a window backwards.
                first_changed = max(first_changed - config.smoothing_window // 2, 0)
            try:
                return self._costs.extend(
                    scorer,
                    solver,
                    cut_positions=positions,
                    first_changed_position=first_changed,
                )
            except SegmentationError:
                # Candidate set or shape mismatch (e.g. the support filter
                # re-selected candidates): fall through to a fresh build.
                pass
        return SegmentationCosts(
            scorer,
            solver,
            m=config.m,
            variant=config.variant,
            cut_positions=positions,
        )


def _adopt_info(
    old_cube: ExplanationCube, cached: ExplanationCube, delta: Relation
) -> AppendInfo:
    """Reconstruct what an in-memory append *would* have reported.

    Used on the fast-forward path, where the appended snapshot comes from
    the cache instead of scattering the delta — the re-segmentation still
    needs to know which positions changed and whether candidates did.
    """
    state = cached.append_state
    time_attr = state.time_attr if state is not None else None
    old_positions = {label: pos for pos, label in enumerate(old_cube.labels)}
    touched = sorted(
        {
            old_positions[label]
            for label in (
                _as_python(value)
                for value in np.unique(delta.column(time_attr))
            )
            if label in old_positions
        }
    )
    old_n = old_cube.n_times
    return AppendInfo(
        n_rows=delta.n_rows,
        old_n_times=old_n,
        n_times=cached.n_times,
        new_labels=tuple(cached.labels[old_n:]),
        touched_positions=tuple(touched),
        first_changed_position=touched[0] if touched else old_n,
        candidates_changed=old_cube.explanations != cached.explanations,
    )


def _as_python(value):
    return value.item() if hasattr(value, "item") else value
