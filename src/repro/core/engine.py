"""The :class:`TSExplain` facade — the library's main entry point.

Typical use::

    from repro import TSExplain
    from repro.datasets import covid

    relation = covid.load_covid().relation
    engine = TSExplain(relation, measure="total_confirmed_cases",
                       explain_by=["state"])
    result = engine.explain()
    print(result.describe())
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.core.config import ExplainConfig
from repro.core.pipeline import ExplainPipeline
from repro.core.result import ExplainResult
from repro.diff.scorer import ScoredExplanation
from repro.exceptions import QueryError
from repro.relation.groupby import aggregate_over_time
from repro.relation.predicates import In
from repro.relation.table import Relation
from repro.relation.timeseries import TimeSeries


class TSExplain:
    """Explain an aggregated time series by its evolving top contributors.

    Parameters
    ----------
    relation:
        The base relation ``R``.
    measure:
        Measure attribute ``M`` of the aggregate query.
    explain_by:
        Explain-by attribute names ``A`` (user domain knowledge; defaults
        to every dimension attribute when omitted).
    aggregate:
        Aggregate function name (default ``sum``).
    time_attr:
        Time attribute ``T``; defaults to the schema's time attribute.
    config:
        Pipeline configuration; keyword overrides may be passed instead,
        e.g. ``TSExplain(..., k=6, use_sketch=True)``.  Notably,
        ``TSExplain(..., cache_dir="~/.repro-cache")`` enables the
        persistent rollup cache: the first :meth:`explain` builds and
        stores the explanation cube, later calls (including from other
        processes) load it from disk and skip the prepare phase, as long
        as the relation and the cube parameters are unchanged (see
        :mod:`repro.cube.cache` for the invalidation contract).
    """

    def __init__(
        self,
        relation: Relation,
        measure: str,
        explain_by: Sequence[str] | None = None,
        aggregate: str = "sum",
        time_attr: str | None = None,
        config: ExplainConfig | None = None,
        **config_overrides,
    ):
        if config is not None and config_overrides:
            config = config.updated(**config_overrides)
        elif config is None:
            config = ExplainConfig(**config_overrides)
        if explain_by is None:
            explain_by = relation.schema.dimension_names()
        self._relation = relation
        self._measure = measure
        self._explain_by = tuple(explain_by)
        self._aggregate = aggregate
        self._time_attr = time_attr or relation.schema.require_time()
        self._config = config
        self._last_result: ExplainResult | None = None

    @property
    def config(self) -> ExplainConfig:
        return self._config

    @property
    def relation(self) -> Relation:
        return self._relation

    # ------------------------------------------------------------------
    def series(self) -> TimeSeries:
        """The aggregated time series being explained (unsmoothed)."""
        return aggregate_over_time(
            self._relation, self._measure, self._aggregate, self._time_attr
        )

    def explain(
        self,
        start: Hashable | None = None,
        stop: Hashable | None = None,
        config: ExplainConfig | None = None,
    ) -> ExplainResult:
        """Run TSExplain, optionally restricted to a label window.

        Parameters
        ----------
        start / stop:
            Timestamp labels delimiting the period of interest (both
            inclusive); defaults to the whole series.
        config:
            One-off configuration override for this call.
        """
        relation = self._window(start, stop)
        pipeline = ExplainPipeline(
            relation,
            self._measure,
            self._explain_by,
            aggregate=self._aggregate,
            time_attr=self._time_attr,
            config=config or self._config,
        )
        result = pipeline.run()
        self._last_result = result
        return result

    def top_explanations(
        self,
        start: Hashable,
        stop: Hashable,
        m: int | None = None,
    ) -> list[ScoredExplanation]:
        """Classic two-relations diff between two timestamps.

        The control relation is the data at ``start`` and the test relation
        the data at ``stop`` (Example 3.1); returns the top-m
        non-overlapping explanations of their difference, using the
        pipeline's public :meth:`~repro.core.pipeline.ExplainPipeline.solver`.
        """
        pipeline = ExplainPipeline(
            self._window(None, None),
            self._measure,
            self._explain_by,
            aggregate=self._aggregate,
            time_attr=self._time_attr,
            config=self._config if m is None else self._config.updated(m=m),
        )
        scorer = pipeline.prepare()
        solver = pipeline.solver(scorer)
        series = scorer.cube.overall_series()
        start_pos = series.position_of(start)
        stop_pos = series.position_of(stop)
        if start_pos >= stop_pos:
            raise QueryError(f"start {start!r} must precede stop {stop!r}")
        gammas, taus = scorer.gamma_tau(start_pos, stop_pos)
        result = solver.solve_batch(gammas[None, :])[0]
        return [
            ScoredExplanation(
                explanation=scorer.cube.explanations[index],
                gamma=float(gammas[index]),
                tau=int(taus[index]),
            )
            for index in result.indices
        ]

    @property
    def last_result(self) -> ExplainResult | None:
        """The most recent :meth:`explain` result, if any."""
        return self._last_result

    # ------------------------------------------------------------------
    def _window(self, start: Hashable | None, stop: Hashable | None) -> Relation:
        """Restrict the relation to rows whose time label lies in a window."""
        if start is None and stop is None:
            return self._relation
        series = self.series()
        labels = list(series.labels)
        start_pos = series.position_of(start) if start is not None else 0
        stop_pos = series.position_of(stop) if stop is not None else len(labels) - 1
        if start_pos >= stop_pos:
            raise QueryError("window must contain at least two time points")
        wanted = labels[start_pos : stop_pos + 1]
        return self._relation.filter(In(self._time_attr, wanted))
