"""The :class:`TSExplain` facade — the library's classic entry point.

Typical use::

    from repro import TSExplain
    from repro.datasets import covid

    relation = covid.load_covid().relation
    engine = TSExplain(relation, measure="total_confirmed_cases",
                       explain_by=["state"])
    result = engine.explain()
    print(result.describe())

Since the session redesign, ``TSExplain`` is a thin backwards-compatible
facade over one lazily-created :class:`~repro.core.session.ExplainSession`:
the first query builds (or cache-loads) the explanation cube, and every
later call — including windowed ``explain(start, stop)`` and
``top_explanations`` — is served as an O(window) slice of the prepared
cube arrays.  New code should use :class:`ExplainSession` directly; it
exposes the same queries plus the fluent :meth:`ExplainSession.query`
builder.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.core.config import ExplainConfig
from repro.core.result import ExplainResult
from repro.core.session import ExplainSession, window_relation
from repro.diff.scorer import ScoredExplanation
from repro.relation.table import Relation
from repro.relation.timeseries import TimeSeries


class TSExplain:
    """Explain an aggregated time series by its evolving top contributors.

    Parameters
    ----------
    relation:
        The base relation ``R``.
    measure:
        Measure attribute ``M`` of the aggregate query.
    explain_by:
        Explain-by attribute names ``A`` (user domain knowledge; defaults
        to every dimension attribute when omitted).
    aggregate:
        Aggregate function name (default ``sum``).
    time_attr:
        Time attribute ``T``; defaults to the schema's time attribute.
    config:
        Pipeline configuration; keyword overrides may be passed instead,
        e.g. ``TSExplain(..., k=6, use_sketch=True)``.  Notably,
        ``TSExplain(..., cache_dir="~/.repro-cache")`` enables the
        persistent rollup cache: the first :meth:`explain` builds and
        stores the explanation cube, later calls (including from other
        processes) load it from disk and skip the prepare phase, as long
        as the relation and the cube parameters are unchanged (see
        :mod:`repro.cube.cache` for the invalidation contract).
    """

    def __init__(
        self,
        relation: Relation,
        measure: str,
        explain_by: Sequence[str] | None = None,
        aggregate: str = "sum",
        time_attr: str | None = None,
        config: ExplainConfig | None = None,
        **config_overrides,
    ):
        if config is not None and config_overrides:
            config = config.updated(**config_overrides)
        elif config is None:
            config = ExplainConfig(**config_overrides)
        if explain_by is None:
            explain_by = relation.schema.dimension_names()
        self._relation = relation
        self._measure = measure
        self._explain_by = tuple(explain_by)
        self._aggregate = aggregate
        self._time_attr = time_attr or relation.schema.require_time()
        self._config = config
        self._session: ExplainSession | None = None
        self._last_result: ExplainResult | None = None

    @property
    def config(self) -> ExplainConfig:
        return self._config

    @property
    def relation(self) -> Relation:
        return self._relation

    def session(self) -> ExplainSession:
        """The underlying :class:`ExplainSession` (created on first use).

        All facade queries delegate to it, so the cube prepared by one
        call is reused by every later call on this engine.
        """
        if self._session is None:
            self._session = ExplainSession(
                self._relation,
                self._measure,
                self._explain_by,
                aggregate=self._aggregate,
                time_attr=self._time_attr,
                config=self._config,
            )
        return self._session

    # ------------------------------------------------------------------
    def series(self) -> TimeSeries:
        """The aggregated time series being explained (unsmoothed)."""
        return self.session().series()

    def explain(
        self,
        start: Hashable | None = None,
        stop: Hashable | None = None,
        config: ExplainConfig | None = None,
    ) -> ExplainResult:
        """Run TSExplain, optionally restricted to a label window.

        Parameters
        ----------
        start / stop:
            Timestamp labels delimiting the period of interest (both
            inclusive); defaults to the whole series.  Windowed calls are
            O(window) slices of the session's prepared cube — the
            relation is not rescanned.
        config:
            One-off configuration override for this call.
        """
        result = self.session().explain(start, stop, config=config)
        self._last_result = result
        return result

    def top_explanations(
        self,
        start: Hashable,
        stop: Hashable,
        m: int | None = None,
    ) -> list[ScoredExplanation]:
        """Classic two-relations diff between two timestamps.

        The control relation is the data at ``start`` and the test relation
        the data at ``stop`` (Example 3.1); returns the top-m
        non-overlapping explanations of their difference, served from the
        session's prepared cube.
        """
        return self.session().top_explanations(start, stop, m=m)

    @property
    def last_result(self) -> ExplainResult | None:
        """The most recent :meth:`explain` result, if any."""
        return self._last_result

    # ------------------------------------------------------------------
    def _window(self, start: Hashable | None, stop: Hashable | None) -> Relation:
        """Restrict the relation to rows whose time label lies in a window.

        Kept for backwards compatibility; windowed queries no longer
        filter the relation (they slice the session's cube), but callers
        that need a restricted *relation* get the vectorized positional
        mask instead of the old per-label membership scan.
        """
        return window_relation(self._relation, self._time_attr, start, stop)
