"""Result types returned by the TSExplain engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

from repro.core.config import ExplainConfig
from repro.diff.scorer import ScoredExplanation
from repro.relation.timeseries import TimeSeries


@dataclass(frozen=True)
class SegmentExplanation:
    """One segment of the final scheme with its top explanations.

    Attributes
    ----------
    start / stop:
        Positions of the segment endpoints in the explained series.
    start_label / stop_label:
        The corresponding timestamp labels.
    explanations:
        Ranked top-m non-overlapping explanations with scores and change
        effects (the rows of the paper's Tables 3–5).
    variance:
        Within-segment variance ``var(P)`` of this segment.
    """

    start: int
    stop: int
    start_label: Hashable
    stop_label: Hashable
    explanations: tuple[ScoredExplanation, ...]
    variance: float

    @property
    def length(self) -> int:
        """Segment length in objects (``stop - start``)."""
        return self.stop - self.start

    def describe(self) -> str:
        """One-line rendering, e.g. ``3-14 ~ 5-4: state=NY(+), ...``."""
        body = ", ".join(
            f"{scored.explanation!r}({scored.effect_symbol})"
            for scored in self.explanations
        ) or "(no contributing explanation)"
        return f"{self.start_label} ~ {self.stop_label}: {body}"


@dataclass(frozen=True)
class ExplainResult:
    """The full output of one TSExplain query.

    Attributes
    ----------
    series:
        The aggregated (possibly smoothed) time series that was explained.
    segments:
        The K segments with their evolving top explanations.
    k:
        Selected segment count.
    k_was_auto:
        Whether ``k`` came from the elbow method rather than the user.
    k_variance_curve:
        ``{K: total within-segment variance}`` for every K the DP solved —
        the curve the elbow method inspects (left panes of Figures 11–14).
    total_variance:
        Objective value of the chosen scheme (Table 7's quality measure).
    timings:
        Wall-clock seconds per pipeline module: ``precomputation``,
        ``cascading``, ``segmentation``, and ``total`` (Figure 15).
    epsilon:
        Candidate-explanation count before filtering (Table 6).  For
        windowed session queries this is the *full cube's* candidate
        universe (the OLAP slice semantics — see docs/ARCHITECTURE.md):
        a candidate whose rows all fall outside the window still counts,
        whereas the legacy filter-and-rebuild path would never enumerate
        it.  Top-k explanations are unaffected (zero-contribution
        candidates never win a slot).
    filtered_epsilon:
        Candidate count actually used after the support filter (Table 6);
        for windowed queries the filter runs on the sliced series, so
        per-window insignificance is reflected here.
    config:
        The configuration that produced this result.
    """

    series: TimeSeries
    segments: tuple[SegmentExplanation, ...]
    k: int
    k_was_auto: bool
    k_variance_curve: Mapping[int, float]
    total_variance: float
    timings: Mapping[str, float]
    epsilon: int
    filtered_epsilon: int
    config: ExplainConfig = field(repr=False)

    @property
    def boundaries(self) -> tuple[int, ...]:
        """Positions of all segment boundaries, endpoints included."""
        if not self.segments:
            return ()
        return tuple(s.start for s in self.segments) + (self.segments[-1].stop,)

    @property
    def cuts(self) -> tuple[int, ...]:
        """Interior cutting positions (``c_2 .. c_K``)."""
        return self.boundaries[1:-1]

    @property
    def cut_labels(self) -> tuple[Hashable, ...]:
        """Timestamp labels of all boundaries (the x-ticks of Figure 2)."""
        return tuple(self.series.label_at(b) for b in self.boundaries)

    def segment_at(self, position: int) -> SegmentExplanation:
        """The segment containing a series position."""
        for segment in self.segments:
            if segment.start <= position < segment.stop:
                return segment
        if self.segments and position == self.segments[-1].stop:
            return self.segments[-1]
        raise IndexError(f"position {position} outside the explained range")

    def describe(self) -> str:
        """Multi-line human-readable summary of the evolving explanations."""
        lines = [
            f"K = {self.k}{' (auto)' if self.k_was_auto else ''}, "
            f"total variance = {self.total_variance:.4f}",
        ]
        lines.extend(segment.describe() for segment in self.segments)
        return "\n".join(lines)
