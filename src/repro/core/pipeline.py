"""The three-module TSExplain pipeline (paper Figure 7).

(a) *Precomputation*: build the explanation cube columnar-ly (difference
scores become O(1) lookups) — or load it from the persistent rollup cache
when :attr:`~repro.core.config.ExplainConfig.cache_dir` is set — then
apply smoothing and the support filter.
(b) *Cascading Analysts*: top-m non-overlapping explanations per segment,
optionally through guess-and-verify (O1).
(c) *K-Segmentation*: NDCG-based segment costs, the Eq. 11 dynamic program,
and the elbow selection of K — optionally on a sketch (O2).

Wall-clock seconds of each module are recorded for the latency-breakdown
experiment (Figure 15).
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.ca.cascade import CascadingAnalysts, DrillDownTree
from repro.ca.guess_verify import GuessAndVerify
from repro.core.config import ExplainConfig
from repro.core.result import ExplainResult, SegmentExplanation
from repro.core.smoothing import smooth_cube
from repro.cube.cache import RollupCache, load_or_build
from repro.cube.datacube import ExplanationCube
from repro.cube.filters import apply_support_filter
from repro.diff.scorer import ScoredExplanation, SegmentScorer
from repro.exceptions import SegmentationError
from repro.obs.trace import span
from repro.relation.table import Relation
from repro.segmentation.dp import SegmentationScheme, solve_k_segmentation
from repro.segmentation.kselect import elbow_point
from repro.segmentation.sketch import select_sketch
from repro.segmentation.variance import SegmentationCosts, scheme_total_variance


def prepare_cube(
    relation: Relation,
    measure: str,
    explain_by: Sequence[str],
    aggregate: str,
    time_attr: str | None,
    config: ExplainConfig,
) -> tuple[ExplanationCube, bool | None]:
    """Build or cache-load the raw cube a query's prepare tier needs.

    The one place the cache construction and build arguments live —
    :meth:`ExplainPipeline.prepare` and
    :meth:`~repro.core.session.ExplainSession.prepare` both call it, so
    session-served and pipeline-served cubes can never diverge.  Returns
    ``(cube, cache_hit)`` with ``cache_hit=None`` when the config names no
    ``cache_dir``.
    """
    cache = (
        RollupCache(config.cache_dir, max_entries=config.cache_max_entries)
        if config.cache_dir
        else None
    )
    with span("cube-build"):
        cube, hit = load_or_build(
            cache,
            relation,
            explain_by,
            measure,
            aggregate=aggregate,
            time_attr=time_attr,
            max_order=config.max_order,
            deduplicate=config.deduplicate,
            columnar=config.columnar,
        )
    return cube, (hit if cache is not None else None)


def select_scheme(
    costs: SegmentationCosts, config: ExplainConfig
) -> tuple[SegmentationScheme, bool, dict[int, SegmentationScheme]]:
    """Solve the K-segmentation DP and pick K (fixed or elbow).

    Returns ``(scheme, k_was_auto, by_k)``.  The one implementation both
    :meth:`ExplainPipeline.run` and the streaming incremental path use, so
    an incremental update can never pick a different K than a full re-run
    over the same cost matrix.
    """
    k_cap = min(config.k_max, costs.n_points - 1)
    requested_k = config.k
    if requested_k is not None and requested_k > costs.n_points - 1:
        raise SegmentationError(
            f"k={requested_k} infeasible for {costs.n_points} candidate points"
        )
    schemes = solve_k_segmentation(
        costs.cost_matrix, k_max=max(k_cap, requested_k or 1)
    )
    by_k = {scheme.k: scheme for scheme in schemes}
    if requested_k is None:
        ks = sorted(by_k)
        chosen_k = elbow_point(ks, [by_k[k].total_cost for k in ks])
        k_was_auto = True
    else:
        if requested_k not in by_k:
            raise SegmentationError(f"no feasible scheme with k={requested_k}")
        chosen_k = requested_k
        k_was_auto = False
    return by_k[chosen_k], k_was_auto, by_k


class ExplainPipeline:
    """One end-to-end TSExplain run over a relation.

    Parameters
    ----------
    relation:
        Source rows.
    measure:
        Measure attribute ``M``.
    explain_by:
        Explain-by attribute names ``A``.
    aggregate:
        Aggregate function name (default ``sum``).
    time_attr:
        Time attribute ``T``; defaults to the schema's time attribute.
    config:
        Pipeline configuration (default: paper defaults with the support
        filter on).
    """

    def __init__(
        self,
        relation: Relation,
        measure: str,
        explain_by: Sequence[str],
        aggregate: str = "sum",
        time_attr: str | None = None,
        config: ExplainConfig | None = None,
    ):
        self._relation = relation
        self._measure = measure
        self._explain_by = tuple(explain_by)
        self._aggregate = aggregate
        self._time_attr = time_attr
        self._config = config or ExplainConfig()
        self._cube: ExplanationCube | None = None
        self._scorer: SegmentScorer | None = None
        self._epsilon = 0
        self._filtered_epsilon = 0
        self._cache_hit: bool | None = None
        self._prepare_seconds = 0.0

    @classmethod
    def from_scorer(
        cls,
        scorer: SegmentScorer,
        config: ExplainConfig | None = None,
        epsilon: int | None = None,
        cache_hit: bool | None = None,
        prepare_seconds: float = 0.0,
    ) -> "ExplainPipeline":
        """A pipeline whose prepare phase is an already-derived scorer.

        This is how :class:`~repro.core.session.ExplainSession` serves
        run-tier queries: the session slices/smooths/filters its prepared
        cube into ``scorer`` once, and every pipeline seeded from it skips
        module (a) entirely — :meth:`prepare` returns ``scorer`` as-is.

        Parameters
        ----------
        scorer:
            The derived run-tier scorer (already sliced, smoothed and
            support-filtered as the query requires).
        config:
            Run configuration; its prepare-tier fields are ignored because
            the cube already exists.
        epsilon:
            Raw (pre-filter) candidate count to report in the result;
            defaults to the scorer's cube size.
        cache_hit:
            Value for :attr:`cache_hit` (the session's rollup-cache
            outcome), ``None`` when no cache was involved.
        prepare_seconds:
            Wall-clock seconds the caller already spent building/deriving
            the scorer; seeds the result's ``precomputation`` timing so
            latency breakdowns stay truthful.
        """
        cube = scorer.cube
        pipeline = cls.__new__(cls)
        pipeline._relation = None
        pipeline._measure = cube.measure
        pipeline._explain_by = cube.explain_by
        pipeline._aggregate = cube.aggregate.name
        pipeline._time_attr = None
        pipeline._config = config or ExplainConfig()
        pipeline._cube = cube
        pipeline._scorer = scorer
        pipeline._epsilon = cube.n_explanations if epsilon is None else epsilon
        pipeline._filtered_epsilon = cube.n_explanations
        pipeline._cache_hit = cache_hit
        pipeline._prepare_seconds = prepare_seconds
        return pipeline

    @property
    def config(self) -> ExplainConfig:
        return self._config

    @property
    def cache_hit(self) -> bool | None:
        """Whether :meth:`prepare` served the cube from the rollup cache.

        ``None`` until :meth:`prepare` has run or when no ``cache_dir`` is
        configured; otherwise ``True`` (loaded from disk, build skipped)
        or ``False`` (built from the relation, and stored when the entry
        could be persisted — store failures degrade to an uncached build).
        """
        return self._cache_hit

    # ------------------------------------------------------------------
    # Module (a): precomputation
    # ------------------------------------------------------------------
    def prepare(self) -> SegmentScorer:
        """Build or cache-load the cube, then smooth, filter and wrap it.

        Idempotent: repeated calls return the same scorer.  When the
        config names a ``cache_dir``, the raw cube is looked up in the
        :class:`~repro.cube.cache.RollupCache` first (see that module for
        the invalidation contract) and stored there after a fresh build;
        smoothing and the support filter always run on the loaded/built
        cube because they depend on per-query configuration.
        """
        if self._scorer is not None:
            return self._scorer
        config = self._config
        cube, hit = prepare_cube(
            self._relation,
            self._measure,
            self._explain_by,
            self._aggregate,
            self._time_attr,
            config,
        )
        if hit is not None:
            self._cache_hit = hit
        self._epsilon = cube.n_explanations
        if config.smoothing_window is not None:
            cube = smooth_cube(cube, config.smoothing_window)
        if config.use_filter:
            cube = apply_support_filter(cube, config.filter_ratio)
        self._filtered_epsilon = cube.n_explanations
        self._cube = cube
        self._scorer = SegmentScorer(cube, config.metric)
        return self._scorer

    # ------------------------------------------------------------------
    def solver(self, scorer: SegmentScorer | None = None):
        """Module (b) top-m solver bound to this pipeline's configuration.

        Returns plain :class:`~repro.ca.cascade.CascadingAnalysts`, or
        :class:`~repro.ca.guess_verify.GuessAndVerify` when optimization
        O1 is enabled and the candidate set is hierarchical.  ``scorer``
        defaults to :meth:`prepare`'s result; pass one explicitly to bind
        the solver to a restricted or smoothed cube.  This is the public
        entry point callers (engine, streaming, evaluation) should use.
        """
        if scorer is None:
            scorer = self.prepare()
        tree = DrillDownTree(scorer.cube.explanations)
        if self._config.use_guess_verify and not tree.is_flat:
            return GuessAndVerify(
                scorer.cube.explanations,
                m=self._config.m,
                initial_guess=max(self._config.initial_guess, self._config.m),
            )
        return CascadingAnalysts(tree, m=self._config.m)

    # Backwards-compatible alias for the pre-1.1 private name.
    _build_solver = solver

    # ------------------------------------------------------------------
    # Full run
    # ------------------------------------------------------------------
    def run(self) -> ExplainResult:
        """Execute the pipeline and return the evolving explanations."""
        config = self._config
        timings = {
            "precomputation": self._prepare_seconds,
            "cascading": 0.0,
            "segmentation": 0.0,
        }

        started = time.perf_counter()
        with span("precompute"):
            scorer = self.prepare()
            solver = self.solver(scorer)
        timings["precomputation"] += time.perf_counter() - started

        n_times = scorer.cube.n_times
        if n_times < 2:
            raise SegmentationError("cannot explain a series with fewer than 2 points")

        with span("score"):
            positions: np.ndarray | None = None
            if config.use_sketch and n_times >= 8:
                sketch_timings: dict[str, float] = {}
                positions = select_sketch(
                    scorer,
                    solver,
                    m=config.m,
                    variant=config.variant,
                    length_cap=config.sketch_length,
                    size=config.sketch_size,
                    timings=sketch_timings,
                )
                timings["precomputation"] += sketch_timings.get("precompute", 0.0)
                timings["cascading"] += sketch_timings.get("cascading", 0.0)
                timings["segmentation"] += sketch_timings.get("segmentation", 0.0)

            costs = SegmentationCosts(
                scorer,
                solver,
                m=config.m,
                variant=config.variant,
                cut_positions=positions,
            )
        timings["precomputation"] += costs.timings["precompute"]
        timings["cascading"] += costs.timings["cascading"]
        timings["segmentation"] += costs.timings["segmentation"]

        dp_started = time.perf_counter()
        with span("segment"):
            scheme, k_was_auto, by_k = select_scheme(costs, config)
        timings["segmentation"] += time.perf_counter() - dp_started

        with span("finalize"):
            result = self._assemble(scorer, costs, scheme, k_was_auto, by_k, timings)
        return result

    # ------------------------------------------------------------------
    def _assemble(
        self,
        scorer: SegmentScorer,
        costs: SegmentationCosts,
        scheme: SegmentationScheme,
        k_was_auto: bool,
        by_k: dict[int, SegmentationScheme],
        timings: dict[str, float],
        trust_costs: bool = False,
    ) -> ExplainResult:
        series = scorer.cube.overall_series()
        # When the scheme was found on a sketch, re-evaluate its variance at
        # full resolution so quality numbers are comparable with vanilla
        # runs (the Table 7 protocol).  ``trust_costs`` short-circuits that
        # re-evaluation: a restricted *cut grid* (the streaming schedule)
        # still measures every segment's variance over full-resolution unit
        # objects, so its cost entries are already the Table 7 numbers.
        full_resolution = trust_costs or costs.n_points == scorer.cube.n_times
        original_boundaries = [int(costs.positions[b]) for b in scheme.boundaries]
        if full_resolution:
            total_variance = scheme.total_cost
            per_segment = [
                costs.variance(left, right) for left, right in scheme.segments()
            ]
        else:
            evaluation_started = time.perf_counter()
            solver = self.solver(scorer)
            total_variance, per_segment = scheme_total_variance(
                scorer,
                solver,
                original_boundaries,
                m=self._config.m,
                variant=self._config.variant,
            )
            timings["segmentation"] += time.perf_counter() - evaluation_started
        segments = []
        for (left, right), segment_variance in zip(scheme.segments(), per_segment):
            top = costs.segment_result(left, right)
            explanations = tuple(
                ScoredExplanation(
                    explanation=scorer.cube.explanations[index],
                    gamma=gamma,
                    tau=tau,
                )
                for index, gamma, tau in zip(top.indices, top.gammas, top.taus)
            )
            start_pos = int(costs.positions[left])
            stop_pos = int(costs.positions[right])
            segments.append(
                SegmentExplanation(
                    start=start_pos,
                    stop=stop_pos,
                    start_label=series.label_at(start_pos),
                    stop_label=series.label_at(stop_pos),
                    explanations=explanations,
                    variance=segment_variance,
                )
            )
        timings["total"] = (
            timings["precomputation"] + timings["cascading"] + timings["segmentation"]
        )
        return ExplainResult(
            series=series,
            segments=tuple(segments),
            k=scheme.k,
            k_was_auto=k_was_auto,
            k_variance_curve={k: s.total_cost for k, s in sorted(by_k.items())},
            total_variance=total_variance,
            timings=timings,
            epsilon=self._epsilon,
            filtered_epsilon=self._filtered_epsilon,
            config=self._config,
        )
