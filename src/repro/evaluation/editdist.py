"""The ``distance percent`` accuracy metric (paper section 7.3).

"We calculate the edit distance between outputs and ground truth.  Since
different datasets have different segment number K and time series lengths
n, we normalize our edit distance by K and n."

Concretely: interior cuts of the prediction and of the ground truth are
matched in sorted order (for equal-length sorted sequences this pairing
minimizes the total displacement); each matched pair contributes its
absolute position difference, and every unmatched cut (when a method
returns fewer or more cuts) contributes the penalty ``n / K``.  The final
score is ``100 * total / (K * n)`` — 0 means a perfect match, and lower is
better.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import SegmentationError


def _interior(boundaries: Sequence[int]) -> list[int]:
    ordered = sorted(int(b) for b in boundaries)
    if len(ordered) < 2:
        raise SegmentationError(f"boundaries too short: {boundaries}")
    return ordered[1:-1]


def cut_displacement(
    predicted: Sequence[int], truth: Sequence[int], n_points: int
) -> float:
    """Total displacement between two boundary lists (un-normalized).

    Both lists include the endpoints; only interior cuts are compared.
    """
    predicted_cuts = _interior(predicted)
    truth_cuts = _interior(truth)
    k = len(truth_cuts) + 1
    penalty = n_points / max(k, 1)
    shared = min(len(predicted_cuts), len(truth_cuts))
    # Order-preserving matching of the two sorted lists; the longer list's
    # overhang is charged the insertion/deletion penalty.
    total = float(
        sum(
            abs(p - t)
            for p, t in zip(predicted_cuts[:shared], truth_cuts[:shared])
        )
    )
    total += penalty * (len(predicted_cuts) + len(truth_cuts) - 2 * shared)
    return total


def distance_percent(
    predicted: Sequence[int], truth: Sequence[int], n_points: int
) -> float:
    """Normalized cut displacement in percent (Figure 10's y-axis)."""
    truth_cuts = _interior(truth)
    k = len(truth_cuts) + 1
    total = cut_displacement(predicted, truth, n_points)
    return 100.0 * total / (k * n_points)
