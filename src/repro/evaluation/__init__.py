"""Evaluation protocols: accuracy metric, ground-truth ranks, latency."""

from repro.evaluation.editdist import cut_displacement, distance_percent
from repro.evaluation.latency import (
    BaselineLatency,
    LatencyReport,
    time_baseline,
    time_tsexplain,
)
from repro.evaluation.rank import (
    DEFAULT_SAMPLES,
    ground_truth_rank,
    relative_metric_ranks,
    scheme_cost,
    variance_design_ranks,
)

__all__ = [
    "BaselineLatency",
    "DEFAULT_SAMPLES",
    "LatencyReport",
    "cut_displacement",
    "distance_percent",
    "ground_truth_rank",
    "relative_metric_ranks",
    "scheme_cost",
    "time_baseline",
    "time_tsexplain",
    "variance_design_ranks",
]
