"""The ground-truth-rank protocol for comparing variance designs (§4.2.2).

For a dataset with known ground-truth segmentation and a candidate
variance metric: sample many random K-segmentation schemes, score each
with the metric's objective ``sum |P_i| var(P_i)``, and report the rank of
the ground truth among the samples (rank 1 = no sample scores lower).  A
good metric puts the ground truth at or near rank 1 even under noise.

The eight metrics are then ranked *against each other* per dataset by
their ground-truth rank (1 = best), and Figure 6 plots the average of
those ranks per SNR level.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ca.cascade import CascadingAnalysts, DrillDownTree
from repro.datasets.synthetic import SyntheticDataset
from repro.diff.scorer import SegmentScorer
from repro.segmentation.bruteforce import random_schemes
from repro.segmentation.variance import SegmentationCosts

#: Paper sample size for the P_K space.
DEFAULT_SAMPLES = 10_000


def scheme_cost(costs: SegmentationCosts, boundaries: Sequence[int]) -> float:
    """Objective value of one scheme under a precomputed cost matrix."""
    return costs.total_cost(boundaries)


def ground_truth_rank(
    costs: SegmentationCosts,
    truth_boundaries: Sequence[int],
    n_samples: int = DEFAULT_SAMPLES,
    seed: int = 0,
) -> int:
    """Rank of the ground truth among sampled same-K schemes (1 = best)."""
    truth_boundaries = tuple(int(b) for b in truth_boundaries)
    k = len(truth_boundaries) - 1
    rng = np.random.default_rng(seed)
    samples = random_schemes(costs.n_points, k, n_samples, rng)
    truth_cost = costs.total_cost(truth_boundaries)
    better = sum(
        1 for scheme in samples if costs.total_cost(scheme) < truth_cost - 1e-12
    )
    return better + 1


def variance_design_ranks(
    dataset: SyntheticDataset,
    variants: Sequence[str],
    n_samples: int = DEFAULT_SAMPLES,
    m: int = 3,
    seed: int = 0,
) -> dict[str, int]:
    """Ground-truth rank of each variance design on one synthetic dataset.

    All designs share the same CA solver and scorer; only the cost matrix
    changes.
    """
    from repro.cube.datacube import ExplanationCube

    data = dataset.dataset
    cube = ExplanationCube(
        data.relation, data.explain_by, data.measure, aggregate=data.aggregate
    )
    scorer = SegmentScorer(cube)
    solver = CascadingAnalysts(DrillDownTree(cube.explanations), m=m)
    ranks: dict[str, int] = {}
    for variant in variants:
        costs = SegmentationCosts(scorer, solver, m=m, variant=variant)
        ranks[variant] = ground_truth_rank(
            costs, dataset.boundaries, n_samples=n_samples, seed=seed
        )
    return ranks


def relative_metric_ranks(ranks: dict[str, int]) -> dict[str, float]:
    """Rank the metrics against each other (1 = best), averaging ties.

    This is the "rank across all the eight metrics from rank 1 to rank 8
    ascendingly based on their own ground truth rank" step of the paper.
    """
    items = sorted(ranks.items(), key=lambda item: item[1])
    out: dict[str, float] = {}
    position = 0
    while position < len(items):
        tie_end = position
        while (
            tie_end + 1 < len(items)
            and items[tie_end + 1][1] == items[position][1]
        ):
            tie_end += 1
        average_rank = (position + tie_end) / 2.0 + 1.0
        for index in range(position, tie_end + 1):
            out[items[index][0]] = average_rank
        position = tie_end + 1
    return out
