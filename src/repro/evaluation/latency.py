"""Latency measurement helpers for the efficiency experiments (§7.5)."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

from repro.baselines.base import Segmenter, attach_explanations
from repro.core.config import ExplainConfig
from repro.core.session import ExplainSession
from repro.datasets.base import Dataset


@dataclass(frozen=True)
class LatencyReport:
    """Module-level latencies (seconds) of one configuration run."""

    label: str
    precomputation: float
    cascading: float
    segmentation: float
    total: float
    total_variance: float
    k: int

    def row(self) -> str:
        """Fixed-width report row for benchmark output."""
        return (
            f"{self.label:<14s} pre={self.precomputation:7.3f}s "
            f"ca={self.cascading:7.3f}s seg={self.segmentation:7.3f}s "
            f"total={self.total:7.3f}s  K={self.k} var={self.total_variance:.4f}"
        )


def time_tsexplain(
    dataset: Dataset, config: ExplainConfig, label: str
) -> LatencyReport:
    """Run TSExplain once and capture its per-module latency breakdown.

    A fresh session per call keeps the measurement cold: the cube build is
    charged to this run's ``precomputation``, exactly as the paper's
    Figure 15 protocol requires.
    """
    session = ExplainSession(
        dataset.relation,
        dataset.measure,
        dataset.explain_by,
        aggregate=dataset.aggregate,
        config=config,
    )
    result = session.explain()
    timings: Mapping[str, float] = result.timings
    return LatencyReport(
        label=label,
        precomputation=timings["precomputation"],
        cascading=timings["cascading"],
        segmentation=timings["segmentation"],
        total=timings["total"],
        total_variance=result.total_variance,
        k=result.k,
    )


@dataclass(frozen=True)
class BaselineLatency:
    """End-to-end latency of a baseline + explanation module (Figure 16)."""

    label: str
    segmentation: float
    explanation: float

    @property
    def total(self) -> float:
        return self.segmentation + self.explanation

    def row(self) -> str:
        return (
            f"{self.label:<14s} seg={self.segmentation:7.3f}s "
            f"expl={self.explanation:7.3f}s total={self.total:7.3f}s"
        )


def time_baseline(
    dataset: Dataset, segmenter: Segmenter, k: int, config: ExplainConfig | None = None
) -> BaselineLatency:
    """Time a baseline segmentation plus the CA explanation step."""
    config = config or ExplainConfig()
    session = ExplainSession(
        dataset.relation,
        dataset.measure,
        dataset.explain_by,
        aggregate=dataset.aggregate,
        config=config,
    )
    pipeline = session.pipeline()
    scorer = pipeline.prepare()
    series = scorer.cube.overall_series()

    started = time.perf_counter()
    boundaries = segmenter.segment(series.values, k)
    segmentation_seconds = time.perf_counter() - started

    solver = pipeline.solver(scorer)
    started = time.perf_counter()
    attach_explanations(scorer, solver, boundaries)
    explanation_seconds = time.perf_counter() - started
    return BaselineLatency(
        label=segmenter.name,
        segmentation=segmentation_seconds,
        explanation=explanation_seconds,
    )
