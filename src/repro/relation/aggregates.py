"""Decomposable aggregate functions with mergeable / subtractable state.

The precomputation module of TSExplain (paper section 5.2) relies on the
aggregate ``f`` being *decomposable*: the aggregate of ``R - sigma_E R`` is
derived from the states of ``R`` and ``sigma_E R`` instead of rescanning
rows.  ``SUM``, ``COUNT``, ``AVG`` and ``VAR`` support full subtraction;
``MIN``/``MAX`` are mergeable but not subtractable and raise
:class:`~repro.exceptions.AggregateError` when the cube needs exclusion.

State layout
------------
Every aggregate represents its state as a float64 array whose first axis has
:attr:`AggregateFunction.n_components` entries, so a *vector* of states over
``n_groups`` group buckets is a ``(n_components, n_groups)`` array.  All
subtractable aggregates here have purely additive states (count, sum, sum of
squares), which is what makes group accumulation a single ``np.add.at``.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import AggregateError


class AggregateFunction(abc.ABC):
    """A named aggregate ``f(M, R)`` with decomposable state."""

    #: registry key, e.g. ``"sum"``
    name: str = ""
    #: number of rows in the state array
    n_components: int = 1
    #: whether ``subtract`` is supported (needed by the explanation cube)
    subtractable: bool = True

    def empty_state(self, n_groups: int = 1) -> np.ndarray:
        """State of an empty input for ``n_groups`` buckets."""
        return np.zeros((self.n_components, n_groups), dtype=np.float64)

    @abc.abstractmethod
    def accumulate(
        self, values: np.ndarray, group_ids: np.ndarray, n_groups: int
    ) -> np.ndarray:
        """Partition ``values`` by ``group_ids`` and return per-group states.

        ``group_ids`` must be integer bucket ids in ``[0, n_groups)``; the
        result has shape ``(n_components, n_groups)``.
        """

    def scatter_into(
        self,
        state: np.ndarray,
        values: np.ndarray,
        index: np.ndarray | tuple[np.ndarray, ...],
    ) -> None:
        """Scatter per-row contributions into an *existing* state, in place.

        ``state`` has shape ``(n_components, ...buckets)`` and ``index``
        addresses the bucket axes (a bare array, or a tuple of index arrays
        for multi-axis buckets).  Rows are applied strictly in order with
        unbuffered ``np.add.at``-style updates — exactly the sequence
        :meth:`accumulate` would produce for the same rows — which is what
        lets :meth:`repro.cube.datacube.ExplanationCube.append` stay
        bit-identical to a one-shot build over the concatenated relation.
        """
        raise AggregateError(  # pragma: no cover - all registry aggregates override
            f"aggregate {self.name!r} does not support in-place scatter"
        )

    def merge(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Combine two state arrays (default: additive)."""
        return left + right

    def subtract(self, total: np.ndarray, part: np.ndarray) -> np.ndarray:
        """State of ``R - sigma_E R`` from the states of ``R`` and ``sigma_E R``."""
        if not self.subtractable:
            raise AggregateError(
                f"aggregate {self.name!r} is not subtractable; the explanation "
                "cube requires SUM/COUNT/AVG/VAR-style decomposable aggregates"
            )
        return total - part

    @abc.abstractmethod
    def finalize(self, state: np.ndarray) -> np.ndarray:
        """Aggregate values (shape ``(n_groups,)``) from a state array."""

    def compute(self, values: np.ndarray) -> float:
        """Convenience: aggregate a flat value array in one call."""
        values = np.asarray(values, dtype=np.float64)
        group_ids = np.zeros(values.shape[0], dtype=np.intp)
        state = self.accumulate(values, group_ids, 1)
        return float(self.finalize(state)[0])

    def __repr__(self) -> str:
        return f"<aggregate {self.name}>"


class _AdditiveAggregate(AggregateFunction):
    """Base for aggregates whose state rows are plain per-group sums."""

    def _components(self, values: np.ndarray) -> tuple[np.ndarray, ...]:
        """Per-row contributions to each state component."""
        raise NotImplementedError

    def accumulate(
        self, values: np.ndarray, group_ids: np.ndarray, n_groups: int
    ) -> np.ndarray:
        state = self.empty_state(n_groups)
        self.scatter_into(state, values, np.asarray(group_ids, dtype=np.intp))
        return state

    def scatter_into(
        self,
        state: np.ndarray,
        values: np.ndarray,
        index: np.ndarray | tuple[np.ndarray, ...],
    ) -> None:
        values = np.asarray(values, dtype=np.float64)
        for row, contribution in enumerate(self._components(values)):
            np.add.at(state[row], index, contribution)


class Sum(_AdditiveAggregate):
    """``SUM(M)``; state = (sum,)."""

    name = "sum"
    n_components = 1

    def _components(self, values: np.ndarray) -> tuple[np.ndarray, ...]:
        return (values,)

    def finalize(self, state: np.ndarray) -> np.ndarray:
        return state[0].copy()


class Count(_AdditiveAggregate):
    """``COUNT(M)``; state = (count,).  Values are ignored."""

    name = "count"
    n_components = 1

    def _components(self, values: np.ndarray) -> tuple[np.ndarray, ...]:
        return (np.ones_like(values),)

    def finalize(self, state: np.ndarray) -> np.ndarray:
        return state[0].copy()


class Avg(_AdditiveAggregate):
    """``AVG(M)``; state = (count, sum).  Empty groups finalize to 0."""

    name = "avg"
    n_components = 2

    def _components(self, values: np.ndarray) -> tuple[np.ndarray, ...]:
        return (np.ones_like(values), values)

    def finalize(self, state: np.ndarray) -> np.ndarray:
        count, total = state[0], state[1]
        out = np.zeros_like(total)
        np.divide(total, count, out=out, where=count > 0)
        return out


class Var(_AdditiveAggregate):
    """Population variance of ``M``; state = (count, sum, sum of squares)."""

    name = "var"
    n_components = 3

    def _components(self, values: np.ndarray) -> tuple[np.ndarray, ...]:
        return (np.ones_like(values), values, values * values)

    def finalize(self, state: np.ndarray) -> np.ndarray:
        count, total, total_sq = state[0], state[1], state[2]
        out = np.zeros_like(total)
        mask = count > 0
        mean = np.zeros_like(total)
        np.divide(total, count, out=mean, where=mask)
        np.divide(total_sq, count, out=out, where=mask)
        out -= mean * mean
        # Numerical noise can push a zero variance slightly negative.
        np.maximum(out, 0.0, out=out)
        out[~mask] = 0.0
        return out


class _ExtremeAggregate(AggregateFunction):
    """Base for MIN/MAX: mergeable but not subtractable."""

    subtractable = False
    _ufunc: np.ufunc
    _identity: float

    def empty_state(self, n_groups: int = 1) -> np.ndarray:
        return np.full((1, n_groups), self._identity, dtype=np.float64)

    def accumulate(
        self, values: np.ndarray, group_ids: np.ndarray, n_groups: int
    ) -> np.ndarray:
        state = self.empty_state(n_groups)
        self.scatter_into(state, values, np.asarray(group_ids, dtype=np.intp))
        return state

    def scatter_into(
        self,
        state: np.ndarray,
        values: np.ndarray,
        index: np.ndarray | tuple[np.ndarray, ...],
    ) -> None:
        values = np.asarray(values, dtype=np.float64)
        self._ufunc.at(state[0], index, values)

    def merge(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        return self._ufunc(left, right)

    def finalize(self, state: np.ndarray) -> np.ndarray:
        out = state[0].copy()
        out[~np.isfinite(out)] = 0.0
        return out


class Min(_ExtremeAggregate):
    """``MIN(M)``; empty groups finalize to 0."""

    name = "min"
    _ufunc = np.minimum
    _identity = np.inf


class Max(_ExtremeAggregate):
    """``MAX(M)``; empty groups finalize to 0."""

    name = "max"
    _ufunc = np.maximum
    _identity = -np.inf


_REGISTRY: dict[str, AggregateFunction] = {
    agg.name: agg for agg in (Sum(), Count(), Avg(), Var(), Min(), Max())
}


def get_aggregate(name: str) -> AggregateFunction:
    """Look up an aggregate function by name (``sum``/``count``/``avg``/...)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise AggregateError(
            f"unknown aggregate {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_aggregates() -> tuple[str, ...]:
    """Names of all registered aggregate functions."""
    return tuple(sorted(_REGISTRY))
