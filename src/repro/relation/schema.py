"""Relation schemas: attribute names, kinds, and validation.

The paper (section 3.1.2) models a relation ``R`` with dimension attributes
``{D_i}`` and measure attributes ``{M_j}``, one of which is a time-related
ordinal dimension ``T``.  :class:`Schema` captures exactly that three-way
split and is attached to every :class:`repro.relation.table.Relation`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.exceptions import SchemaError


class AttributeKind(enum.Enum):
    """Role of an attribute inside a relation."""

    DIMENSION = "dimension"
    MEASURE = "measure"
    TIME = "time"


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation.

    Parameters
    ----------
    name:
        Column name, unique within a schema.
    kind:
        Whether the column is a grouping dimension, a numeric measure, or
        the time dimension ``T``.
    """

    name: str
    kind: AttributeKind

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")

    @property
    def is_dimension(self) -> bool:
        """True for plain dimensions (the time attribute is not included)."""
        return self.kind is AttributeKind.DIMENSION

    @property
    def is_measure(self) -> bool:
        return self.kind is AttributeKind.MEASURE

    @property
    def is_time(self) -> bool:
        return self.kind is AttributeKind.TIME


class Schema:
    """An ordered collection of :class:`Attribute` with unique names.

    A valid schema for TSExplain queries has exactly one time attribute and
    at least one measure, but schemas used for intermediate results (e.g.
    group-by outputs) may relax that, so the constructor only enforces name
    uniqueness; :meth:`require_time` and :meth:`require_measure` perform the
    stricter checks at query time.
    """

    def __init__(self, attributes: Iterable[Attribute]):
        self._attributes: tuple[Attribute, ...] = tuple(attributes)
        names = [attribute.name for attribute in self._attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        self._by_name = {attribute.name: attribute for attribute in self._attributes}

    @classmethod
    def build(
        cls,
        dimensions: Iterable[str] = (),
        measures: Iterable[str] = (),
        time: str | None = None,
    ) -> "Schema":
        """Convenience constructor from plain attribute-name lists."""
        attributes = []
        if time is not None:
            attributes.append(Attribute(time, AttributeKind.TIME))
        attributes.extend(Attribute(name, AttributeKind.DIMENSION) for name in dimensions)
        attributes.extend(Attribute(name, AttributeKind.MEASURE) for name in measures)
        return cls(attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __repr__(self) -> str:
        parts = ", ".join(f"{a.name}:{a.kind.value}" for a in self._attributes)
        return f"Schema({parts})"

    @property
    def names(self) -> tuple[str, ...]:
        """All attribute names in schema order."""
        return tuple(attribute.name for attribute in self._attributes)

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name, raising :class:`SchemaError` if absent."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"unknown attribute {name!r}; schema has {sorted(self._by_name)}"
            ) from None

    def dimension_names(self) -> tuple[str, ...]:
        """Names of plain (non-time) dimension attributes."""
        return tuple(a.name for a in self._attributes if a.is_dimension)

    def measure_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes if a.is_measure)

    def time_name(self) -> str | None:
        """Name of the time attribute, or ``None`` if the schema has none."""
        for attribute in self._attributes:
            if attribute.is_time:
                return attribute.name
        return None

    def require_time(self) -> str:
        """Name of the time attribute; raises if the schema has none."""
        name = self.time_name()
        if name is None:
            raise SchemaError("schema has no time attribute")
        return name

    def require_measure(self, name: str) -> str:
        """Validate that ``name`` refers to a measure attribute."""
        if self.attribute(name).kind is not AttributeKind.MEASURE:
            raise SchemaError(f"attribute {name!r} is not a measure")
        return name

    def require_dimension(self, name: str) -> str:
        """Validate that ``name`` refers to a plain dimension attribute."""
        if not self.attribute(name).is_dimension:
            raise SchemaError(f"attribute {name!r} is not a dimension")
        return name

    def project(self, names: Iterable[str]) -> "Schema":
        """Sub-schema containing only ``names``, in the given order."""
        return Schema(self.attribute(name) for name in names)
