"""Group-by execution: the ``SELECT T, f(M) FROM R GROUP BY T`` engine.

Two entry points:

* :func:`group_by` — general grouped aggregation returning a new relation,
  used for OLAP drill-down/roll-up in examples and tests.
* :func:`aggregate_over_time` — the specialization producing an
  :class:`~repro.relation.timeseries.TimeSeries`, which is the input of
  every TSExplain query (Definition 3.6).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import QueryError
from repro.relation.aggregates import AggregateFunction, get_aggregate
from repro.relation.schema import Schema
from repro.relation.table import Relation
from repro.relation.timeseries import TimeSeries


def _resolve(aggregate: str | AggregateFunction) -> AggregateFunction:
    if isinstance(aggregate, AggregateFunction):
        return aggregate
    return get_aggregate(aggregate)


def _group_codes(relation: Relation, keys: Sequence[str]) -> tuple[np.ndarray, list[tuple]]:
    """Dense group ids plus the distinct key tuples, sorted lexicographically."""
    if not keys:
        raise QueryError("group_by requires at least one key")
    per_key = [relation.encode(key) for key in keys]
    cardinalities = [len(values) for _, values in per_key]
    combined = np.zeros(relation.n_rows, dtype=np.intp)
    for (codes, _), cardinality in zip(per_key, cardinalities):
        combined = combined * cardinality + codes
    unique_combined, group_ids = np.unique(combined, return_inverse=True)
    # Decode each observed combined code back into one value per key.
    group_keys: list[tuple] = []
    for code in unique_combined:
        parts = []
        remainder = int(code)
        for cardinality in reversed(cardinalities):
            remainder, idx = divmod(remainder, cardinality)
            parts.append(idx)
        parts.reverse()
        key_tuple = tuple(
            per_key[i][1][parts[i]].item()
            if hasattr(per_key[i][1][parts[i]], "item")
            else per_key[i][1][parts[i]]
            for i in range(len(keys))
        )
        group_keys.append(key_tuple)
    return group_ids.astype(np.intp), group_keys


def group_by(
    relation: Relation,
    keys: Sequence[str],
    aggregations: Mapping[str, tuple[str | AggregateFunction, str]],
) -> Relation:
    """Grouped aggregation.

    Parameters
    ----------
    relation:
        Input rows.
    keys:
        Grouping attribute names (dimension or time attributes).
    aggregations:
        Mapping of output column name to ``(aggregate, measure)`` pairs,
        e.g. ``{"total": ("sum", "sales")}``.  ``COUNT`` may use any column
        as its measure.

    Returns
    -------
    Relation
        One row per distinct key combination, sorted by key, with the key
        columns (as dimensions) followed by the aggregate outputs (as
        measures).
    """
    group_ids, group_keys = _group_codes(relation, keys)
    n_groups = len(group_keys)
    columns: dict[str, np.ndarray] = {}
    for position, key in enumerate(keys):
        columns[key] = np.asarray([group_key[position] for group_key in group_keys])
    out_names = []
    for out_name, (aggregate, measure) in aggregations.items():
        function = _resolve(aggregate)
        state = function.accumulate(
            relation.column(measure).astype(np.float64), group_ids, n_groups
        )
        columns[out_name] = function.finalize(state)
        out_names.append(out_name)
    schema = Schema.build(dimensions=keys, measures=out_names)
    return Relation(columns, schema)


def aggregate_over_time(
    relation: Relation,
    measure: str,
    aggregate: str | AggregateFunction = "sum",
    time_attr: str | None = None,
) -> TimeSeries:
    """The aggregated time series of a relation (Definition 3.6).

    Equivalent to ``SELECT T, f(M) FROM R GROUP BY T ORDER BY T``; every
    distinct timestamp becomes one point, ordered ascending.
    """
    if relation.n_rows == 0:
        raise QueryError("cannot aggregate an empty relation over time")
    relation.schema.require_measure(measure)
    function = _resolve(aggregate)
    positions, labels = relation.time_positions(time_attr)
    state = function.accumulate(
        relation.column(measure).astype(np.float64), positions, len(labels)
    )
    return TimeSeries(function.finalize(state), labels)
