"""In-memory relational substrate: schemas, tables, predicates, aggregation.

This package implements the group-by/aggregate machinery the paper assumes
as infrastructure ("data cube is typically maintained in memory", section
5.2) — TSExplain itself sits on top of it.
"""

from repro.relation.aggregates import (
    AggregateFunction,
    available_aggregates,
    get_aggregate,
)
from repro.relation.csvio import read_csv, write_csv
from repro.relation.groupby import aggregate_over_time, group_by
from repro.relation.predicates import (
    And,
    Between,
    Conjunction,
    Eq,
    Ge,
    Gt,
    In,
    Le,
    Lt,
    Not,
    Or,
    Predicate,
)
from repro.relation.schema import Attribute, AttributeKind, Schema
from repro.relation.table import Relation
from repro.relation.timeseries import TimeSeries

__all__ = [
    "AggregateFunction",
    "And",
    "Attribute",
    "AttributeKind",
    "Between",
    "Conjunction",
    "Eq",
    "Ge",
    "Gt",
    "In",
    "Le",
    "Lt",
    "Not",
    "Or",
    "Predicate",
    "Relation",
    "Schema",
    "TimeSeries",
    "aggregate_over_time",
    "available_aggregates",
    "get_aggregate",
    "group_by",
    "read_csv",
    "write_csv",
]
