"""CSV input/output for relations.

Datasets in the paper are plain tables (Covid, S&P 500, Liquor); this module
lets users load their own CSVs into a :class:`~repro.relation.table.Relation`
and round-trip results back out, without any third-party dependency.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.exceptions import SchemaError
from repro.relation.schema import Schema
from repro.relation.table import Relation


def coerce_csv_columns(raw: dict[str, list[str]], schema: Schema) -> dict[str, np.ndarray]:
    """Apply the CSV dtype policy to parsed string cells.

    Measure columns become float64; dimension and time columns stay
    strings (object dtype).  The one place this policy lives — both
    :func:`read_csv` and the CLI's ``--follow`` tail parser go through
    it, so a followed file can never coerce differently from a one-shot
    load of the same bytes.
    """
    columns: dict[str, np.ndarray] = {}
    for name in schema.names:
        if schema.attribute(name).is_measure:
            columns[name] = np.asarray([float(v) for v in raw[name]], dtype=np.float64)
        else:
            columns[name] = np.asarray(raw[name], dtype=object)
    return columns


def read_csv(
    path: str | Path,
    dimensions: Sequence[str] = (),
    measures: Sequence[str] = (),
    time: str | None = None,
) -> Relation:
    """Load a CSV file into a relation.

    Dimension and time columns are kept as strings; measure columns are
    parsed as float64.  All named columns must exist in the header; any
    unnamed CSV columns are dropped.
    """
    schema = Schema.build(dimensions=dimensions, measures=measures, time=time)
    wanted = set(schema.names)
    raw: dict[str, list[str]] = {name: [] for name in schema.names}
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        header = set(reader.fieldnames or ())
        missing = wanted - header
        if missing:
            raise SchemaError(f"CSV {path} lacks columns {sorted(missing)}")
        for row in reader:
            for name in schema.names:
                raw[name].append(row[name])
    return Relation(coerce_csv_columns(raw, schema), schema)


def write_csv(relation: Relation, path: str | Path) -> None:
    """Write a relation to a CSV file with a header row."""
    names = relation.schema.names
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        columns = [relation.column(name) for name in names]
        for i in range(relation.n_rows):
            writer.writerow([columns[j][i] for j in range(len(names))])
