"""CSV input/output for relations.

Datasets in the paper are plain tables (Covid, S&P 500, Liquor); this module
lets users load their own CSVs into a :class:`~repro.relation.table.Relation`
and round-trip results back out, without any third-party dependency.

Parsing is column-batched, never a per-cell Python loop:

* **fast path** (files without quoted fields, the overwhelmingly common
  machine-written case): the whole text is split into a flat cell list
  with two C-level ``str`` operations, poured into one 2-D object array,
  and sliced per column — after a vectorized per-line field-count check,
  so a ragged row still fails loudly;
* **general path** (quoting, embedded newlines, blank lines): the stdlib
  ``csv.reader`` C loop collects the rows and one 2-D object-array
  assignment transposes them.

Measure columns convert to float64 in a single numpy pass per column.
The same batched machinery backs :class:`repro.store.CsvSource`, chunked
ingestion included.
"""

from __future__ import annotations

import csv
import io
from itertools import repeat
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.exceptions import SchemaError
from repro.relation.schema import Schema
from repro.relation.table import Relation


def _first_bad_measure_cell(values) -> object:
    """The first cell of a measure column that does not parse as a float."""
    for value in values:
        try:
            float(value)
        except (TypeError, ValueError):
            return value
    return None


def coerce_csv_columns(raw: dict[str, Sequence], schema: Schema) -> dict[str, np.ndarray]:
    """Apply the CSV dtype policy to parsed string cells.

    Measure columns become float64 (one vectorized numpy conversion per
    column); dimension and time columns stay strings (object dtype).  The
    one place this policy lives — :func:`read_csv`, the chunked
    :class:`repro.store.CsvSource` and the CLI's ``--follow`` tail parser
    all go through it, so a followed file can never coerce differently
    from a one-shot load of the same bytes.  A non-numeric measure cell
    raises :class:`~repro.exceptions.SchemaError` naming the column and
    the offending value.
    """
    columns: dict[str, np.ndarray] = {}
    for name in schema.names:
        if schema.attribute(name).is_measure:
            try:
                columns[name] = np.asarray(raw[name], dtype=np.float64)
            except (TypeError, ValueError):
                bad = _first_bad_measure_cell(raw[name])
                raise SchemaError(
                    f"measure column {name!r} has non-numeric cell {bad!r}"
                ) from None
        else:
            columns[name] = np.asarray(raw[name], dtype=object)
    return columns


def _columns_from_grid(
    grid: np.ndarray, header: Sequence[str], schema: Schema
) -> dict[str, np.ndarray]:
    """Slice the schema's columns out of an ``(n_rows, width)`` cell grid."""
    missing = set(schema.names) - set(header)
    if missing:
        raise SchemaError(f"CSV lacks columns {sorted(missing)}")
    duplicated = [name for name in schema.names if header.count(name) > 1]
    if duplicated:
        # Loud beats either silent pick (DictReader took the last copy,
        # header.index would take the first — both load wrong data).
        raise SchemaError(
            f"CSV header repeats needed column(s) {duplicated}; rename the "
            "duplicates"
        )
    index = {name: header.index(name) for name in schema.names}
    # .copy() detaches each kept column from the full grid, so dropped
    # CSV columns do not stay pinned in memory through the relation.
    raw = {name: grid[:, index[name]].copy() for name in schema.names}
    return coerce_csv_columns(raw, schema)


def columns_from_csv_rows(
    rows: Sequence[Sequence[str]],
    header: Sequence[str],
    schema: Schema,
    row_offset: int = 0,
) -> dict[str, np.ndarray]:
    """Transpose parsed CSV rows into the schema's columns.

    ``rows`` is what ``csv.reader`` produced (header excluded); unnamed
    CSV columns are dropped and blank rows are skipped (the DictReader
    behavior this replaced).  A row whose field count differs from the
    header's raises :class:`~repro.exceptions.SchemaError` — numpy would
    otherwise *broadcast* a ragged row list into every cell, so the
    length check comes first.  ``row_offset`` is how many data rows
    preceded this batch in the file, so chunked ingestion reports
    file-accurate row numbers.
    """
    width = len(header)
    kept = []
    for number, row in enumerate(rows):
        if not row:
            continue
        if len(row) != width:
            raise SchemaError(
                f"CSV row {row_offset + number + 2} has {len(row)} fields "
                f"(header has {width})"
            )
        kept.append(row)
    if not kept:
        return coerce_csv_columns({name: () for name in schema.names}, schema)
    grid = np.empty((len(kept), width), dtype=object)
    grid[:] = kept
    return _columns_from_grid(grid, header, schema)


def _fast_columns(text: str, schema: Schema) -> dict[str, np.ndarray] | None:
    """Quote-free vectorized parse; ``None`` when the text needs ``csv``.

    Without quoting, every newline is a row boundary and every comma a
    field boundary, so the whole file splits into a flat cell list with
    two C-level string operations.  Field counts are validated per line
    (vectorized) before the reshape, so a ragged row raises exactly like
    the general path; blank lines, lone carriage returns, or a
    single-column header (where a blank line is ambiguous) defer to the
    general path instead.
    """
    if '"' in text:
        return None
    text = text.replace("\r\n", "\n")
    if "\r" in text:
        return None  # classic-Mac line endings: let csv decide
    if text.endswith("\n"):
        text = text[:-1]
    if not text:
        return None
    lines = text.split("\n")
    width = lines[0].count(",") + 1
    if width < 2:
        return None
    counts = np.fromiter(
        map(str.count, lines, repeat(",")), dtype=np.intp, count=len(lines)
    )
    bad = np.flatnonzero(counts != width - 1)
    if bad.size:
        first = int(bad[0])
        if not lines[first]:
            return None  # blank line: the general path skips it
        raise SchemaError(
            f"CSV row {first + 1} has {counts[first] + 1} fields "
            f"(header has {width})"
        )
    header = lines[0].split(",")
    flat = text.replace("\n", ",").split(",")
    grid = np.empty(len(flat), dtype=object)
    grid[:] = flat
    grid = grid.reshape(len(lines), width)
    return _columns_from_grid(grid[1:], header, schema)


def parse_csv_text(text: str, schema: Schema, origin: str | Path = "<text>") -> Relation:
    """Parse CSV text into a relation under the CSV dtype policy.

    Tries the vectorized quote-free fast path first, then the stdlib
    ``csv.reader`` general path; both validate that every schema column
    exists in the header and that no row is ragged.  ``origin`` names the
    input in error messages.
    """
    try:
        columns = _fast_columns(text, schema)
        if columns is None:
            reader = csv.reader(io.StringIO(text))
            header = next(reader, None)
            missing = set(schema.names) - set(header or ())
            if missing:
                raise SchemaError(f"CSV lacks columns {sorted(missing)}")
            columns = columns_from_csv_rows(list(reader), header or [], schema)
    except SchemaError as error:
        raise SchemaError(f"{origin}: {error}") from None
    return Relation(columns, schema)


def read_csv(
    path: str | Path,
    dimensions: Sequence[str] = (),
    measures: Sequence[str] = (),
    time: str | None = None,
) -> Relation:
    """Load a CSV file into a relation.

    Dimension and time columns are kept as strings; measure columns are
    parsed as float64.  All named columns must exist in the header; any
    unnamed CSV columns are dropped.
    """
    schema = Schema.build(dimensions=dimensions, measures=measures, time=time)
    with open(path, newline="", encoding="utf-8") as handle:
        text = handle.read()
    return parse_csv_text(text, schema, origin=path)


def write_csv(relation: Relation, path: str | Path) -> None:
    """Write a relation to a CSV file with a header row.

    Column-batched: each column is converted to Python scalars once
    (``tolist``), one ``zip`` transposes them into row tuples, and
    ``writer.writerows`` emits everything in a single C loop.
    """
    names = relation.schema.names
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        writer.writerows(zip(*(relation.column(name).tolist() for name in names)))
