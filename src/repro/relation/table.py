"""The in-memory columnar :class:`Relation`.

This is the substrate every other subsystem is built on: datasets load into
relations, OLAP slicing happens through predicates, and the explanation cube
is built from a single pass over a relation's dimension columns.  Columns
are numpy arrays; dimension columns typically hold strings or small ints,
measure columns hold float64.
"""

from __future__ import annotations

import hashlib
from typing import Any, Hashable, Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import QueryError, SchemaError
from repro.relation.predicates import Predicate
from repro.relation.schema import Attribute, AttributeKind, Schema


def _as_column(values: Sequence[Any] | np.ndarray) -> np.ndarray:
    """Normalize input values to a 1-D numpy array (floats stay float64).

    An array already in float64 is adopted as-is (no defensive copy) —
    that keeps memory-mapped source columns (:mod:`repro.store`) paged
    lazily instead of being materialized on relation construction.
    Columns are treated as immutable by convention throughout.
    """
    array = np.asarray(values)
    if array.ndim != 1:
        raise QueryError(f"columns must be 1-D, got shape {array.shape}")
    if array.dtype.kind == "f" and array.dtype != np.float64:
        array = array.astype(np.float64)
    return array


class Relation:
    """An immutable bag of rows stored column-wise.

    Parameters
    ----------
    columns:
        Mapping of attribute name to a 1-D array-like.  All columns must
        have identical length and exactly cover the schema's attributes.
    schema:
        The :class:`~repro.relation.schema.Schema` describing the columns.
    """

    def __init__(self, columns: Mapping[str, Sequence[Any] | np.ndarray], schema: Schema):
        self._schema = schema
        converted: dict[str, np.ndarray] = {}
        lengths = set()
        for name in schema.names:
            if name not in columns:
                raise SchemaError(f"missing column {name!r} for schema {schema!r}")
            column = _as_column(columns[name])
            converted[name] = column
            lengths.add(column.shape[0])
        extra = set(columns) - set(schema.names)
        if extra:
            raise SchemaError(f"columns {sorted(extra)} are not in the schema")
        if len(lengths) > 1:
            raise QueryError(f"ragged columns: lengths {sorted(lengths)}")
        self._columns = converted
        self._n_rows = lengths.pop() if lengths else 0
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, rows: Iterable[Mapping[str, Any]], schema: Schema) -> "Relation":
        """Build a relation from an iterable of row dicts."""
        rows = list(rows)
        columns = {
            name: np.asarray([row[name] for row in rows]) if rows else np.asarray([])
            for name in schema.names
        }
        return cls(columns, schema)

    @classmethod
    def empty(cls, schema: Schema) -> "Relation":
        """A relation with zero rows."""
        return cls({name: np.asarray([]) for name in schema.names}, schema)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def n_rows(self) -> int:
        return self._n_rows

    def __len__(self) -> int:
        return self._n_rows

    def column(self, name: str) -> np.ndarray:
        """The raw column array for ``name`` (do not mutate)."""
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; available: {sorted(self._columns)}"
            ) from None

    def columns(self, names: Sequence[str] | None = None) -> dict[str, np.ndarray]:
        """Bulk columnar access: ``{name: array}`` for the requested columns.

        One call hands out several attribute arrays without materializing
        rows — candidate enumeration uses it to fetch each explain-by
        subset at once.  ``names`` defaults to every schema attribute in
        schema order; the returned arrays are the relation's own storage
        (do not mutate).
        """
        if names is None:
            names = self._schema.names
        return {name: self.column(name) for name in names}

    def fingerprint(self) -> str:
        """Stable SHA-256 content hash of the relation (schema + cells).

        Two relations with equal schemas and identical column contents (in
        row order) share a fingerprint; any cell, row, or schema change
        produces a different one.  The rollup cache
        (:mod:`repro.cube.cache`) uses this as the data component of its
        keys, so a cached cube can never be served for modified data.
        The hash is computed once per instance and memoized (relations are
        immutable).
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(repr(self._schema).encode("utf-8"))
            # Row count frames the fixed-width column payloads, so no
            # crafted cell contents can splice one column into the next.
            digest.update(self._n_rows.to_bytes(8, "little"))
            for name in self._schema.names:
                column = self._columns[name]
                digest.update(name.encode("utf-8"))
                # The dtype kind tag keeps e.g. str and bytes columns with
                # identical text from colliding.
                digest.update(column.dtype.kind.encode("ascii"))
                if column.dtype.kind == "O":
                    # Object columns may mix cell types (1 vs "1"), so each
                    # cell's rendering carries its type; length-prefix
                    # framing (not separators, which user data could
                    # contain) keeps cell boundaries unambiguous.
                    parts: list[bytes] = []
                    for value in column:
                        cell = f"{type(value).__name__}:{value}".encode(
                            "utf-8", errors="backslashreplace"
                        )
                        parts.append(len(cell).to_bytes(4, "little"))
                        parts.append(cell)
                    digest.update(b"".join(parts))
                else:
                    # Fixed-width dtypes (numeric, U, S): the dtype header
                    # plus NUL padding keeps ("ab","c") != ("a","bc") with
                    # no per-row Python loop.  S columns hash their raw
                    # bytes — never decoded, so arbitrary byte values are
                    # fine.
                    digest.update(column.dtype.str.encode("utf-8"))
                    digest.update(np.ascontiguousarray(column).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def to_rows(self) -> list[dict[str, Any]]:
        """Materialize all rows as dicts (tests and small outputs only)."""
        names = self._schema.names
        return [
            {name: self._columns[name][i].item() if hasattr(self._columns[name][i], "item") else self._columns[name][i] for name in names}
            for i in range(self._n_rows)
        ]

    def __repr__(self) -> str:
        return f"Relation({self._n_rows} rows, schema={self._schema!r})"

    def equals(self, other: "Relation") -> bool:
        """Exact equality of schema and cell contents (order-sensitive)."""
        if self._schema != other._schema or self._n_rows != other._n_rows:
            return False
        return all(
            np.array_equal(self._columns[name], other._columns[name])
            for name in self._schema.names
        )

    # ------------------------------------------------------------------
    # Relational operations
    # ------------------------------------------------------------------
    def filter(self, predicate: Predicate) -> "Relation":
        """Rows satisfying ``predicate`` (paper: ``sigma_E R``)."""
        return self.take(predicate.mask(self))

    def exclude(self, predicate: Predicate) -> "Relation":
        """Rows *not* satisfying ``predicate`` (paper: ``R - sigma_E R``)."""
        return self.take(~predicate.mask(self))

    def take(self, selector: np.ndarray) -> "Relation":
        """Rows selected by a boolean mask or an index array."""
        selector = np.asarray(selector)
        columns = {name: column[selector] for name, column in self._columns.items()}
        return Relation(columns, self._schema)

    def project(self, names: Sequence[str]) -> "Relation":
        """Keep only the named columns, in the given order."""
        schema = self._schema.project(names)
        return Relation({name: self._columns[name] for name in names}, schema)

    def with_column(
        self, name: str, values: Sequence[Any] | np.ndarray, kind: AttributeKind
    ) -> "Relation":
        """A new relation with one extra column appended to the schema."""
        if name in self._schema:
            raise SchemaError(f"column {name!r} already exists")
        schema = Schema(list(self._schema) + [Attribute(name, kind)])
        columns = dict(self._columns)
        columns[name] = values
        return Relation(columns, schema)

    def concat(self, other: "Relation") -> "Relation":
        """Rows of ``self`` followed by rows of ``other`` (schemas must match)."""
        if self._schema != other._schema:
            raise SchemaError("cannot concat relations with different schemas")
        columns = {
            name: np.concatenate([self._columns[name], other._columns[name]])
            for name in self._schema.names
        }
        return Relation(columns, self._schema)

    def sort_by(self, name: str) -> "Relation":
        """Rows sorted ascending by the named column (stable)."""
        order = np.argsort(self.column(name), kind="stable")
        return self.take(order)

    def head(self, k: int) -> "Relation":
        """The first ``k`` rows."""
        return self.take(np.arange(min(k, self._n_rows)))

    def distinct_values(self, name: str) -> np.ndarray:
        """Sorted unique values of the named column."""
        return np.unique(self.column(name))

    # ------------------------------------------------------------------
    # Encoding helpers used by group-by and the cube
    # ------------------------------------------------------------------
    def encode(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """Factorize a column into ``(codes, unique_values)``.

        ``codes[i]`` indexes into ``unique_values`` (sorted ascending), so
        downstream group accumulation can use dense integer buckets.
        """
        values, codes = np.unique(self.column(name), return_inverse=True)
        return codes.astype(np.intp), values

    def time_positions(self, time_attr: str | None = None) -> tuple[np.ndarray, tuple[Hashable, ...]]:
        """Factorize the time column into positions along the sorted time axis."""
        name = time_attr or self._schema.require_time()
        codes, values = self.encode(name)
        labels = tuple(v.item() if hasattr(v, "item") else v for v in values)
        return codes, labels
