"""Predicates over relations: equality slices, comparisons, conjunctions.

An *explanation* in the paper (Definition 3.1) is a conjunction of equality
predicates over explain-by attributes.  :class:`Conjunction` of :class:`Eq`
terms is the canonical representation used by the rest of the library; the
other predicate types support general OLAP slicing and dicing on relations
(paper section 1: "users can freely perform OLAP operations").
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Hashable, Iterable, Sequence

import numpy as np

from repro.exceptions import QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.relation.table import Relation


class Predicate(abc.ABC):
    """A boolean condition on the rows of a relation."""

    @abc.abstractmethod
    def mask(self, relation: "Relation") -> np.ndarray:
        """Boolean numpy array selecting the rows that satisfy the predicate."""

    @abc.abstractmethod
    def attributes(self) -> tuple[str, ...]:
        """Attribute names referenced by the predicate."""

    def __and__(self, other: "Predicate") -> "And":
        return And([self, other])

    def __or__(self, other: "Predicate") -> "Or":
        return Or([self, other])

    def __invert__(self) -> "Not":
        return Not(self)


class Eq(Predicate):
    """``attribute == value`` equality slice."""

    __slots__ = ("attribute_name", "value")

    def __init__(self, attribute_name: str, value: Hashable):
        self.attribute_name = attribute_name
        self.value = value

    def mask(self, relation: "Relation") -> np.ndarray:
        return relation.column(self.attribute_name) == self.value

    def attributes(self) -> tuple[str, ...]:
        return (self.attribute_name,)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Eq):
            return NotImplemented
        return (self.attribute_name, self.value) == (other.attribute_name, other.value)

    def __hash__(self) -> int:
        return hash((Eq, self.attribute_name, self.value))

    def __repr__(self) -> str:
        return f"{self.attribute_name}={self.value}"


class In(Predicate):
    """``attribute IN values`` membership slice."""

    __slots__ = ("attribute_name", "values")

    def __init__(self, attribute_name: str, values: Iterable[Hashable]):
        self.attribute_name = attribute_name
        self.values = frozenset(values)

    def mask(self, relation: "Relation") -> np.ndarray:
        column = relation.column(self.attribute_name)
        return np.isin(column, list(self.values))

    def attributes(self) -> tuple[str, ...]:
        return (self.attribute_name,)

    def __repr__(self) -> str:
        return f"{self.attribute_name} IN {sorted(map(repr, self.values))}"


class _Comparison(Predicate):
    """Shared implementation for scalar comparison predicates."""

    __slots__ = ("attribute_name", "value")
    _op_name = "?"

    def __init__(self, attribute_name: str, value: float):
        self.attribute_name = attribute_name
        self.value = value

    def _compare(self, column: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def mask(self, relation: "Relation") -> np.ndarray:
        return self._compare(relation.column(self.attribute_name))

    def attributes(self) -> tuple[str, ...]:
        return (self.attribute_name,)

    def __repr__(self) -> str:
        return f"{self.attribute_name}{self._op_name}{self.value}"


class Gt(_Comparison):
    _op_name = ">"

    def _compare(self, column: np.ndarray) -> np.ndarray:
        return column > self.value


class Ge(_Comparison):
    _op_name = ">="

    def _compare(self, column: np.ndarray) -> np.ndarray:
        return column >= self.value


class Lt(_Comparison):
    _op_name = "<"

    def _compare(self, column: np.ndarray) -> np.ndarray:
        return column < self.value


class Le(_Comparison):
    _op_name = "<="

    def _compare(self, column: np.ndarray) -> np.ndarray:
        return column <= self.value


class Between(Predicate):
    """``low <= attribute <= high`` range slice (both bounds inclusive)."""

    __slots__ = ("attribute_name", "low", "high")

    def __init__(self, attribute_name: str, low: float, high: float):
        if low > high:
            raise QueryError(f"Between bounds reversed: {low} > {high}")
        self.attribute_name = attribute_name
        self.low = low
        self.high = high

    def mask(self, relation: "Relation") -> np.ndarray:
        column = relation.column(self.attribute_name)
        return (column >= self.low) & (column <= self.high)

    def attributes(self) -> tuple[str, ...]:
        return (self.attribute_name,)

    def __repr__(self) -> str:
        return f"{self.low}<={self.attribute_name}<={self.high}"


class And(Predicate):
    """Conjunction of arbitrary predicates."""

    __slots__ = ("terms",)

    def __init__(self, terms: Sequence[Predicate]):
        if not terms:
            raise QueryError("And requires at least one term")
        self.terms = tuple(terms)

    def mask(self, relation: "Relation") -> np.ndarray:
        result = self.terms[0].mask(relation)
        for term in self.terms[1:]:
            result = result & term.mask(relation)
        return result

    def attributes(self) -> tuple[str, ...]:
        names: list[str] = []
        for term in self.terms:
            names.extend(term.attributes())
        return tuple(names)

    def __repr__(self) -> str:
        return " & ".join(map(repr, self.terms))


class Or(Predicate):
    """Disjunction of arbitrary predicates."""

    __slots__ = ("terms",)

    def __init__(self, terms: Sequence[Predicate]):
        if not terms:
            raise QueryError("Or requires at least one term")
        self.terms = tuple(terms)

    def mask(self, relation: "Relation") -> np.ndarray:
        result = self.terms[0].mask(relation)
        for term in self.terms[1:]:
            result = result | term.mask(relation)
        return result

    def attributes(self) -> tuple[str, ...]:
        names: list[str] = []
        for term in self.terms:
            names.extend(term.attributes())
        return tuple(names)

    def __repr__(self) -> str:
        return " | ".join(map(repr, self.terms))


class Not(Predicate):
    """Negation of a predicate."""

    __slots__ = ("term",)

    def __init__(self, term: Predicate):
        self.term = term

    def mask(self, relation: "Relation") -> np.ndarray:
        return ~self.term.mask(relation)

    def attributes(self) -> tuple[str, ...]:
        return self.term.attributes()

    def __repr__(self) -> str:
        return f"NOT({self.term!r})"


class Conjunction(Predicate):
    """A canonical conjunction of equality predicates (Definition 3.1).

    Terms are stored sorted by attribute name, which makes two conjunctions
    over the same slices compare and hash equal regardless of construction
    order.  Each attribute may appear at most once (repeating an attribute
    with two different values would select no rows, and with the same value
    would be redundant).
    """

    __slots__ = ("_items",)

    def __init__(self, terms: Iterable[Eq]):
        items = sorted((term.attribute_name, term.value) for term in terms)
        names = [name for name, _ in items]
        if len(set(names)) != len(names):
            raise QueryError(f"conjunction repeats an attribute: {names}")
        self._items: tuple[tuple[str, Hashable], ...] = tuple(items)

    @classmethod
    def from_items(cls, items: Iterable[tuple[str, Hashable]]) -> "Conjunction":
        """Build from ``(attribute, value)`` pairs."""
        return cls(Eq(name, value) for name, value in items)

    @property
    def items(self) -> tuple[tuple[str, Hashable], ...]:
        """Sorted ``(attribute, value)`` pairs."""
        return self._items

    @property
    def order(self) -> int:
        """Number of predicates, the explanation order ``beta``."""
        return len(self._items)

    def mask(self, relation: "Relation") -> np.ndarray:
        if not self._items:
            return np.ones(relation.n_rows, dtype=bool)
        name, value = self._items[0]
        result = relation.column(name) == value
        for name, value in self._items[1:]:
            result = result & (relation.column(name) == value)
        return result

    def attributes(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self._items)

    def value_of(self, attribute_name: str) -> Hashable:
        """Value fixed for ``attribute_name``; raises if not constrained."""
        for name, value in self._items:
            if name == attribute_name:
                return value
        raise QueryError(f"conjunction does not constrain {attribute_name!r}")

    def extend(self, attribute_name: str, value: Hashable) -> "Conjunction":
        """A new conjunction with one additional equality term."""
        return Conjunction.from_items(self._items + ((attribute_name, value),))

    def contains(self, other: "Conjunction") -> bool:
        """True when ``other``'s terms are a subset of this conjunction's.

        If ``self.contains(other)`` then every row satisfying ``self`` also
        satisfies ``other`` (self is the more specific slice).
        """
        return set(other._items).issubset(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Conjunction):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __repr__(self) -> str:
        if not self._items:
            return "TRUE"
        return " & ".join(f"{name}={value}" for name, value in self._items)
