"""Aggregated time series (Definition 3.6).

A :class:`TimeSeries` is the result of ``SELECT T, f(M) FROM R GROUP BY T``:
an ordered sequence of points ``p_i`` with timestamp label ``p_i.t`` and
aggregated value ``p_i.v``.  Points are addressed by *position* throughout
the segmentation code; labels are carried along for reporting.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.exceptions import QueryError


class TimeSeries:
    """An ordered series of ``(label, value)`` points."""

    __slots__ = ("_values", "_labels", "_label_to_pos")

    def __init__(self, values: Sequence[float] | np.ndarray, labels: Sequence[Hashable] | None = None):
        self._values = np.asarray(values, dtype=np.float64)
        if self._values.ndim != 1:
            raise QueryError(f"time series values must be 1-D, got {self._values.shape}")
        n = self._values.shape[0]
        if labels is None:
            labels = range(n)
        self._labels: tuple[Hashable, ...] = tuple(labels)
        if len(self._labels) != n:
            raise QueryError(
                f"labels ({len(self._labels)}) and values ({n}) length mismatch"
            )
        self._label_to_pos = {label: pos for pos, label in enumerate(self._labels)}
        if len(self._label_to_pos) != n:
            raise QueryError("time series labels must be unique")

    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[Hashable, float]]) -> "TimeSeries":
        """Build from ``(label, value)`` tuples."""
        pairs = list(pairs)
        return cls([v for _, v in pairs], [t for t, _ in pairs])

    @property
    def values(self) -> np.ndarray:
        """The value array (do not mutate)."""
        return self._values

    @property
    def labels(self) -> tuple[Hashable, ...]:
        return self._labels

    def __len__(self) -> int:
        return self._values.shape[0]

    def __getitem__(self, position: int) -> float:
        return float(self._values[position])

    def label_at(self, position: int) -> Hashable:
        """Timestamp label of the point at ``position``."""
        return self._labels[position]

    def position_of(self, label: Hashable) -> int:
        """Position of the point with the given timestamp label."""
        try:
            return self._label_to_pos[label]
        except KeyError:
            raise QueryError(f"label {label!r} not in time series") from None

    def window(self, start: int, stop: int) -> "TimeSeries":
        """Sub-series for positions ``[start, stop]`` (both inclusive)."""
        if not 0 <= start <= stop < len(self):
            raise QueryError(f"invalid window [{start}, {stop}] for length {len(self)}")
        return TimeSeries(self._values[start : stop + 1], self._labels[start : stop + 1])

    def change(self, start: int, stop: int) -> float:
        """``p_stop.v - p_start.v`` (the endpoint change over a segment)."""
        return float(self._values[stop] - self._values[start])

    def __add__(self, other: "TimeSeries") -> "TimeSeries":
        self._check_aligned(other)
        return TimeSeries(self._values + other._values, self._labels)

    def __sub__(self, other: "TimeSeries") -> "TimeSeries":
        self._check_aligned(other)
        return TimeSeries(self._values - other._values, self._labels)

    def scale(self, factor: float) -> "TimeSeries":
        """Pointwise multiplication by a scalar."""
        return TimeSeries(self._values * factor, self._labels)

    def cumulative(self) -> "TimeSeries":
        """Running sum of the series (e.g. daily -> total confirmed cases)."""
        return TimeSeries(np.cumsum(self._values), self._labels)

    def diff(self) -> "TimeSeries":
        """First difference, keeping length by prepending the first value."""
        values = np.empty_like(self._values)
        values[0] = self._values[0]
        values[1:] = np.diff(self._values)
        return TimeSeries(values, self._labels)

    def _check_aligned(self, other: "TimeSeries") -> None:
        if self._labels != other._labels:
            raise QueryError("time series are not aligned (different labels)")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return self._labels == other._labels and np.array_equal(self._values, other._values)

    def __hash__(self) -> int:  # pragma: no cover - TimeSeries is not hashable
        raise TypeError("TimeSeries is mutable-array backed and unhashable")

    def __repr__(self) -> str:
        n = len(self)
        if n <= 4:
            body = ", ".join(f"{t}:{v:g}" for t, v in zip(self._labels, self._values))
        else:
            body = (
                f"{self._labels[0]}:{self._values[0]:g}, ... , "
                f"{self._labels[-1]}:{self._values[-1]:g}"
            )
        return f"TimeSeries[{n}]({body})"
