"""The finalized-cube artifact: one mmap-able file N serve workers share.

The rollup cache (:mod:`repro.cube.cache`) optimizes for *disk* — entries
are ``np.savez_compressed`` archives that must be decompressed into fresh
private arrays on every load.  That is the wrong trade for a multi-process
serving tier: N workers each holding a private copy of every resident cube
multiplies memory by N.  The artifact is the same payload written the
other way around — an **uncompressed** npz-style archive whose members are
contiguous byte ranges of the file — so each worker opens it with the
zip-offset ``np.memmap`` technique proven in
:mod:`repro.store.npz_source` and the series matrices live once in the
page cache, shared read-only by every process on the machine.

One file holds everything the serve tier needs to adopt a prepared
session without touching the relation:

* the four finalized series arrays (``overall``, ``supports``,
  ``included``, ``excluded``) — memory-mapped on open;
* the candidate metadata (labels, explanation conjunctions, key) as a
  JSON header encoded into a ``uint8`` member — deliberately no pickle,
  exactly like the cache format;
* the delta-maintenance ledger states of an appendable cube, so an
  ingest process can revive the artifact appendable
  (``open_artifact(..., appendable=True)``) while serve workers keep
  mapping it as a fixed snapshot.

Artifacts are written atomically (unique temp file + ``os.replace``)
under the :class:`~repro.cube.cache.CubeKey` digest — for source-backed
datasets that key carries the *source fingerprint*, so a warm multi-
process start costs one header read per dataset and zero builds.  A
missing, truncated or foreign file reads as a miss (``None``), never an
error: the caller rebuilds and overwrites, the same contract as the
cache.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.cube.cache import (
    CubeKey,
    _key_dict,
    _load_append_state,
    _python_value,
    _read_header,
)
from repro.cube.datacube import ExplanationCube
from repro.relation.aggregates import get_aggregate
from repro.relation.predicates import Conjunction

#: Bump when the artifact layout changes; older files then read as misses.
ARTIFACT_FORMAT = 1

#: Sanity tag distinguishing artifacts from cache entries and snapshots.
ARTIFACT_KIND = "repro.cube/artifact"

#: Filename suffix of finalized-cube artifacts.
ARTIFACT_SUFFIX = ".cube.art.npz"


def artifact_path_for(directory: str | Path, key: CubeKey) -> Path:
    """Where the artifact of ``key`` lives under ``directory``."""
    return Path(directory).expanduser() / f"{key.digest()}{ARTIFACT_SUFFIX}"


def write_artifact(
    directory: str | Path, key: CubeKey, cube: ExplanationCube
) -> Path:
    """Atomically persist a built cube as a mmap-able artifact.

    The payload mirrors the cache's format-2 layout (header JSON as a
    ``uint8`` member, series arrays, ledger states for appendable cubes)
    but is stored **uncompressed** so every member can be memory-mapped
    in place.  Raises ``TypeError`` for non-JSON labels/values, exactly
    like :meth:`~repro.cube.cache.RollupCache.store`.
    """
    directory = Path(directory).expanduser()
    header: dict = {
        "format": ARTIFACT_FORMAT,
        "kind": ARTIFACT_KIND,
        "key": _key_dict(key),
        "aggregate": cube.aggregate.name,
        "measure": cube.measure,
        "explain_by": list(cube.explain_by),
        "labels": list(cube.labels),
        "explanations": [
            [[name, value] for name, value in conj.items]
            for conj in cube.explanations
        ],
        "n_explanations": cube.n_explanations,
        "n_times": cube.n_times,
    }
    arrays: dict[str, np.ndarray] = {
        "overall": np.ascontiguousarray(cube.overall_values, dtype=np.float64),
        "supports": np.ascontiguousarray(cube.supports, dtype=np.int64),
        "included": np.ascontiguousarray(cube.included_values, dtype=np.float64),
        "excluded": np.ascontiguousarray(cube.excluded_values, dtype=np.float64),
    }
    state = cube.append_state
    if state is not None:
        n = state.n_times
        header["appendable"] = True
        header["state"] = {
            "time_attr": state.time_attr,
            "max_order": state.max_order,
            "deduplicate": state.deduplicate,
            "schema": [
                [attribute.name, attribute.kind.value] for attribute in state.schema
            ],
            "subsets": [list(ledger.attrs) for ledger in state.ledgers],
            "values": [
                [[_python_value(value) for value in column] for column in ledger.values]
                for ledger in state.ledgers
            ],
        }
        arrays["overall_state"] = state.overall[:, :n]
        for i, ledger in enumerate(state.ledgers):
            arrays[f"state{i}"] = ledger.state[:, :, :n]
            arrays[f"counts{i}"] = ledger.counts
            arrays[f"parents{i}"] = (
                np.stack(ledger.parents)
                if ledger.parents
                else np.empty((0, ledger.n_slots), dtype=np.intp)
            )
    header_bytes = json.dumps(header, allow_nan=True).encode("utf-8")
    path = artifact_path_for(directory, key)
    # The same crash- and racer-safe discipline as the rollup cache: the
    # payload lands in a unique temp file and is published with one
    # atomic rename; a concurrent clear() removing the directory between
    # mkdir and rename surfaces as FileNotFoundError, so retry the whole
    # write once before giving up.
    last_error: FileNotFoundError | None = None
    for _ in range(2):
        directory.mkdir(parents=True, exist_ok=True)
        try:
            handle, tmp_name = tempfile.mkstemp(
                dir=directory, suffix=f"{ARTIFACT_SUFFIX}.tmp"
            )
        except FileNotFoundError as error:
            last_error = error
            continue
        try:
            with os.fdopen(handle, "wb") as tmp:
                np.savez(
                    tmp,
                    header=np.frombuffer(header_bytes, dtype=np.uint8),
                    **arrays,
                )
            os.replace(tmp_name, path)
        except FileNotFoundError as error:
            last_error = error
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            continue
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path
    assert last_error is not None
    raise last_error


def open_artifact(
    directory: str | Path,
    key: CubeKey,
    mmap: bool = True,
    appendable: bool = False,
) -> ExplanationCube | None:
    """The artifact cube for ``key``, or ``None`` on miss/corruption.

    The default open is the serve-worker path: the series arrays are
    memory-mapped read-only (one shared page-cache copy per machine,
    however many workers open it) and the cube is a *fixed* snapshot —
    queries slice and score it, nothing appends.  ``appendable=True`` is
    the ingest path: the ledger states are materialized into private
    arrays and the cube revives appendable, exactly like a format-2
    cache load.  ``mmap=False`` forces private copies of the series
    arrays (tests, or filesystems where mapping misbehaves).
    """
    path = artifact_path_for(directory, key)
    try:
        with np.load(path, allow_pickle=False) as data:
            header = _read_header(data)
            if (
                header.get("kind") != ARTIFACT_KIND
                or header.get("format") != ARTIFACT_FORMAT
                or header.get("key") != _key_dict(key)
            ):
                return None
            if appendable:
                if not header.get("appendable"):
                    return None
                return ExplanationCube.from_append_state(
                    _load_append_state(header, data)
                )
        # Only the header left the np.load above; the series arrays are
        # mapped member by member so a warm open touches no array bytes
        # until a query actually reads them.
        from repro.store.npz_source import _mmap_member

        loaded: dict[str, np.ndarray] = {}
        fallback: "np.lib.npyio.NpzFile | None" = None
        try:
            for name in ("overall", "supports", "included", "excluded"):
                if mmap:
                    try:
                        loaded[name] = _mmap_member(path, name)
                        continue
                    except (ValueError, KeyError, OSError):
                        pass
                if fallback is None:
                    fallback = np.load(path, allow_pickle=False)
                loaded[name] = np.asarray(fallback[name])
        finally:
            if fallback is not None:
                fallback.close()
        explanations = tuple(
            Conjunction.from_items((name, value) for name, value in items)
            for items in header["explanations"]
        )
        return ExplanationCube.from_arrays(
            aggregate=get_aggregate(header["aggregate"]),
            measure=header["measure"],
            explain_by=tuple(header["explain_by"]),
            labels=tuple(header["labels"]),
            overall=loaded["overall"],
            explanations=explanations,
            supports=loaded["supports"],
            included=loaded["included"],
            excluded=loaded["excluded"],
        )
    except FileNotFoundError:
        return None
    except Exception:
        # Unreadable artifacts (truncated writes, foreign files, format
        # drift) are misses, not errors: the caller rebuilds and the next
        # write_artifact overwrites the bad file.
        return None
