"""Candidate-explanation enumeration (Definition 3.1).

Given explain-by attributes ``A`` and an order threshold ``beta_max``, the
candidates are all conjunctions ``A_1=a_1 & ... & A_beta=a_beta`` with
``beta <= beta_max`` that select at least one row of the relation.

Containment deduplication
-------------------------
Hierarchical attributes (e.g. S&P 500's ``category -> subcategory -> stock``)
make many conjunctions redundant: ``category=tech & subcategory=software``
selects exactly the rows of ``subcategory=software``.  Keeping both would
bias the cascading-analysts search and inflate ``epsilon``.  We drop any
candidate whose support equals the support of one of its order-(beta-1)
sub-conjunctions; this reproduces the paper's candidate counts (e.g.
``epsilon = 610 = 11 + 96 + 503`` for S&P 500, Table 6).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ExplanationError
from repro.relation.predicates import Conjunction
from repro.relation.table import Relation


@dataclass(frozen=True)
class CandidateSet:
    """The enumerated candidates and their bookkeeping arrays.

    Attributes
    ----------
    explanations:
        Candidate conjunctions, deterministically ordered (by order, then by
        attribute tuple, then by values).
    group_ids:
        For each candidate position, the dense row-bucket array mapping every
        relation row to either the candidate-local group it belongs to or -1.
        Stored per *attribute subset* (see ``subset_of``) to stay compact.
    supports:
        Total number of rows selected by each candidate.
    group_counts / group_values / redundant / parent_groups:
        Per-subset bookkeeping over *all* value groups, including the
        containment-redundant ones the candidate list drops:  row counts,
        the group's value per subset attribute, the redundancy mask, and —
        for subsets of order > 1 — the group id each group maps to in the
        parent subset obtained by dropping attribute ``d``.  This is the
        ledger :meth:`repro.cube.datacube.ExplanationCube.append` scatters
        new rows into; redundancy can only be *destroyed* by appends
        (supports grow monotonically, a child never outgrows its parent),
        so groups are append-only.
    """

    explanations: tuple[Conjunction, ...]
    supports: np.ndarray
    row_groups: tuple[np.ndarray, ...]
    subset_index: tuple[int, ...]
    subsets: tuple[tuple[str, ...], ...]
    local_ids: tuple[int, ...]
    group_counts: tuple[np.ndarray, ...] = ()
    group_values: tuple[tuple[np.ndarray, ...], ...] = ()
    redundant: tuple[np.ndarray, ...] = ()
    parent_groups: tuple[tuple[np.ndarray, ...], ...] = ()

    def __len__(self) -> int:
        return len(self.explanations)


def _python_value(value: object) -> object:
    return value.item() if hasattr(value, "item") else value


def enumerate_candidates(
    relation: Relation,
    explain_by: Sequence[str],
    max_order: int = 3,
    deduplicate: bool = True,
) -> CandidateSet:
    """Enumerate candidate explanations present in ``relation``.

    Parameters
    ----------
    relation:
        Source rows.
    explain_by:
        Explain-by attribute names ``A`` (paper: user-specified or all
        dimensions).
    max_order:
        Order threshold ``beta_max`` (paper default 3).
    deduplicate:
        Drop conjunctions whose row set equals a sub-conjunction's (see
        module docstring).  The paper's candidate counts assume this.
    """
    if not explain_by:
        raise ExplanationError("explain_by must name at least one attribute")
    if len(set(explain_by)) != len(explain_by):
        raise ExplanationError(f"explain_by repeats attributes: {explain_by}")
    for name in explain_by:
        relation.schema.require_dimension(name)
    if max_order < 1:
        raise ExplanationError(f"max_order must be >= 1, got {max_order}")
    max_order = min(max_order, len(explain_by))

    explanations: list[Conjunction] = []
    supports: list[int] = []
    row_groups: list[np.ndarray] = []
    subsets: list[tuple[str, ...]] = []
    subset_index: list[int] = []
    local_ids: list[int] = []
    group_counts: list[np.ndarray] = []
    group_values: list[tuple[np.ndarray, ...]] = []
    redundant_masks: list[np.ndarray] = []
    parent_group_maps: list[tuple[np.ndarray, ...]] = []
    # Per processed subset: (row -> group id, per-group support).  Kept for
    # every lower-order subset (including groups later dropped as
    # redundant) so that higher-order conjunctions can still detect
    # redundancy through a chain of redundant intermediates.
    group_info: dict[tuple[str, ...], tuple[np.ndarray, np.ndarray]] = {}

    ordered_attrs = sorted(explain_by)
    for order in range(1, max_order + 1):
        for subset in itertools.combinations(ordered_attrs, order):
            group_ids, representatives = _group_rows(relation, subset)
            n_groups = representatives.shape[0]
            counts = np.bincount(group_ids, minlength=n_groups)
            # A group is redundant when dropping one attribute lands its
            # representative row in a parent group with identical support:
            # the parent then selects exactly the same rows.  This is the
            # columnar form of the seed's per-conjunction dict lookup.
            redundant = np.zeros(n_groups, dtype=bool)
            parents: list[np.ndarray] = []
            if order > 1:
                for drop in range(order):
                    parent = subset[:drop] + subset[drop + 1 :]
                    parent_rows, parent_counts = group_info[parent]
                    parent_of_group = parent_rows[representatives]
                    parents.append(parent_of_group.astype(np.intp))
                    if deduplicate:
                        redundant |= parent_counts[parent_of_group] == counts
            group_info[subset] = (group_ids, counts)

            subset_pos = len(subsets)
            subsets.append(subset)
            row_groups.append(group_ids)
            group_counts.append(counts.astype(np.int64))
            redundant_masks.append(redundant)
            parent_group_maps.append(tuple(parents))
            columns = relation.columns(subset)
            values_by_attr = tuple(columns[name][representatives] for name in subset)
            group_values.append(values_by_attr)
            for local_id in np.flatnonzero(~redundant):
                conjunction = Conjunction.from_items(
                    (name, _python_value(values_by_attr[k][local_id]))
                    for k, name in enumerate(subset)
                )
                explanations.append(conjunction)
                supports.append(int(counts[local_id]))
                subset_index.append(subset_pos)
                local_ids.append(int(local_id))

    return CandidateSet(
        explanations=tuple(explanations),
        supports=np.asarray(supports, dtype=np.int64),
        row_groups=tuple(row_groups),
        subset_index=tuple(subset_index),
        subsets=tuple(subsets),
        local_ids=tuple(local_ids),
        group_counts=tuple(group_counts),
        group_values=tuple(group_values),
        redundant=tuple(redundant_masks),
        parent_groups=tuple(parent_group_maps),
    )


def _group_rows(
    relation: Relation, subset: tuple[str, ...]
) -> tuple[np.ndarray, np.ndarray]:
    """Dense group ids over the distinct value combinations of ``subset``.

    Returns ``(group_ids, representatives)`` where ``group_ids[i]`` is the
    bucket of row ``i`` and ``representatives[g]`` is the first row index
    belonging to bucket ``g``.  Works for any column dtype (including
    Python objects) by factorizing one column at a time and re-densifying
    the combined key, so intermediate keys never overflow.
    """
    n_rows = relation.n_rows
    combined = np.zeros(n_rows, dtype=np.int64)
    for name in subset:
        values, codes = np.unique(relation.column(name), return_inverse=True)
        key = combined * np.int64(len(values)) + codes.astype(np.int64).ravel()
        _, combined = np.unique(key, return_inverse=True)
        combined = combined.astype(np.int64).ravel()
    _, representatives = np.unique(combined, return_index=True)
    return combined.astype(np.intp), representatives.astype(np.intp)
