"""Delta maintenance state for :class:`~repro.cube.datacube.ExplanationCube`.

The paper's real-time section (section 8) needs the cube to absorb newly
arrived rows in O(delta) instead of rebuilding from the full relation.
The finalized ``included``/``excluded`` matrices alone cannot do that for
AVG/VAR — finalization is lossy — so an *appendable* cube also retains the
pre-finalize aggregate **states** it was built from:

* one ``(n_components, n_groups, n_times)`` state array per explain-by
  attribute subset (the same arrays the columnar build scattered into),
* per-group row counts, group values, redundancy flags and parent-group
  maps (the candidate ledger), and
* the overall query's state.

:meth:`CubeAppendState.apply_delta` scatters a delta relation's rows into
those arrays **in row order with unbuffered** ``np.add.at`` **updates** —
the exact sequence a one-shot build over ``base.concat(delta)`` would have
produced — so build-then-append is *bit-identical* to one-shot building.
Appends can create candidates (a new value combination, or a formerly
containment-redundant group whose parent outgrew it) but never destroy
them: supports grow monotonically and a child can never outgrow its
parent, so group slots are append-only.

Time-axis contract
------------------
A delta row's timestamp must be either an existing label (late-arriving
records are scattered into that column) or strictly greater than the
cube's last label (the axis is extended).  A *new* label that sorts before
the current last label would shift every later time position and silently
re-index history, so it raises :class:`~repro.exceptions.QueryError`.
Rows inside the delta may arrive in any order.

Buffers grow geometrically along the time axis, so a long-running stream
pays an amortized O(delta) per update rather than an O(n) reallocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence, TYPE_CHECKING

import numpy as np

from repro.cube.explanations import CandidateSet, _group_rows, _python_value
from repro.exceptions import BackfillError, QueryError, SchemaError
from repro.relation.aggregates import AggregateFunction
from repro.relation.predicates import Conjunction
from repro.relation.schema import Schema

if TYPE_CHECKING:  # pragma: no cover
    from repro.relation.table import Relation


@dataclass(frozen=True)
class AppendInfo:
    """What one :meth:`ExplanationCube.append` actually changed.

    Consumers use this to invalidate exactly the derived artifacts the
    append touched: :meth:`repro.core.session.ExplainSession.append` drops
    only the scorer-LRU entries whose window overlaps
    ``first_changed_position``, and the streaming re-segmentation reuses
    every unit object strictly before it.

    Attributes
    ----------
    n_rows:
        Rows scattered (0 for an empty delta — a no-op append).
    old_n_times / n_times:
        Time-axis length before and after the append.
    new_labels:
        Appended time labels, in axis order.
    touched_positions:
        *Existing* time positions that received delta rows (late-arriving
        records), ascending.
    first_changed_position:
        Smallest time position whose series values may differ from before
        the append; ``old_n_times`` when the delta only extended the axis.
        Everything strictly before it is bitwise unchanged.
    candidates_changed:
        Whether the candidate set grew (new value combination, or a
        redundancy broken by new parent rows).  When true, candidate
        positions may have shifted and every derived scorer is stale.
    """

    n_rows: int
    old_n_times: int
    n_times: int
    new_labels: tuple[Hashable, ...]
    touched_positions: tuple[int, ...]
    first_changed_position: int
    candidates_changed: bool

    @property
    def is_noop(self) -> bool:
        return self.n_rows == 0


def _grow_time(buffer: np.ndarray, capacity: int) -> np.ndarray:
    """Reallocate ``buffer`` with a larger (zero-padded) last axis."""
    if buffer.shape[-1] >= capacity:
        return buffer
    new_cap = max(capacity, 2 * buffer.shape[-1], 8)
    grown = np.zeros(buffer.shape[:-1] + (new_cap,), dtype=buffer.dtype)
    grown[..., : buffer.shape[-1]] = buffer
    return grown


class SubsetLedger:
    """The append-only group ledger of one explain-by attribute subset."""

    __slots__ = (
        "attrs",
        "state",
        "counts",
        "values",
        "parents",
        "redundant",
        "conjunctions",
        "sorted_order",
        "_slot_of",
    )

    def __init__(
        self,
        attrs: tuple[str, ...],
        state: np.ndarray,
        counts: np.ndarray,
        values: Sequence[Sequence],
        parents: Sequence[np.ndarray],
        redundant: np.ndarray,
    ):
        self.attrs = attrs
        #: (n_components, n_slots, time_capacity) aggregate states.
        self.state = state
        self.counts = np.asarray(counts, dtype=np.int64)
        #: Per attribute, the group's value at each slot.
        self.values: list[list] = [list(column) for column in values]
        #: Per dropped attribute, the parent subset's slot of each group.
        self.parents: list[np.ndarray] = [
            np.asarray(p, dtype=np.intp) for p in parents
        ]
        self.redundant = np.asarray(redundant, dtype=bool)
        self.conjunctions: list[Conjunction | None] = [None] * self.n_slots
        #: Slot ids in candidate-emission order (sorted by group values);
        #: the build emits slots pre-sorted, appends re-sort on new slots.
        self.sorted_order = np.arange(self.n_slots, dtype=np.intp)
        self._slot_of: dict[tuple, int] | None = None

    @property
    def n_slots(self) -> int:
        return len(self.values[0]) if self.values else 0

    @property
    def order(self) -> int:
        return len(self.attrs)

    def combo(self, slot: int) -> tuple:
        return tuple(_python_value(column[slot]) for column in self.values)

    def conjunction(self, slot: int) -> Conjunction:
        existing = self.conjunctions[slot]
        if existing is None:
            existing = Conjunction.from_items(zip(self.attrs, self.combo(slot)))
            self.conjunctions[slot] = existing
        return existing

    def slot_index(self) -> dict[tuple, int]:
        """The combo -> slot map, materialized on first use."""
        if self._slot_of is None:
            self._slot_of = {self.combo(slot): slot for slot in range(self.n_slots)}
        return self._slot_of

    def layout(self) -> np.ndarray:
        """Non-redundant slots in candidate-emission order."""
        return self.sorted_order[~self.redundant[self.sorted_order]]

    def add_slots(self, combos: Sequence[tuple], parent_slots: Sequence[Sequence[int]]) -> int:
        """Register new groups; returns the first new slot id.

        ``parent_slots[i]`` holds, per dropped attribute, the parent
        subset's slot of ``combos[i]``.  State/counts are zero-extended;
        the caller scatters the delta rows afterwards.
        """
        first = self.n_slots
        added = len(combos)
        index = self.slot_index()
        for offset, combo in enumerate(combos):
            index[combo] = first + offset
            for column, value in zip(self.values, combo):
                column.append(value)
        self.counts = np.concatenate(
            [self.counts, np.zeros(added, dtype=np.int64)]
        )
        self.redundant = np.concatenate([self.redundant, np.zeros(added, dtype=bool)])
        self.conjunctions.extend([None] * added)
        for drop in range(len(self.parents)):
            extra = np.asarray([ps[drop] for ps in parent_slots], dtype=np.intp)
            self.parents[drop] = np.concatenate([self.parents[drop], extra])
        grown = np.zeros(
            (self.state.shape[0], first + added, self.state.shape[2]),
            dtype=self.state.dtype,
        )
        grown[:, :first, :] = self.state
        self.state = grown
        # Re-derive the emission order: new combos can sort anywhere among
        # the existing groups, and candidate order must match what a
        # one-shot enumeration over the grown relation would produce.
        combos_all = [self.combo(slot) for slot in range(self.n_slots)]
        self.sorted_order = np.asarray(
            sorted(range(self.n_slots), key=combos_all.__getitem__), dtype=np.intp
        )
        return first


class CubeAppendState:
    """Everything an :class:`ExplanationCube` needs to absorb new rows."""

    __slots__ = (
        "schema",
        "measure",
        "explain_by",
        "time_attr",
        "max_order",
        "deduplicate",
        "aggregate",
        "labels",
        "label_pos",
        "overall",
        "ledgers",
        "ledger_index",
    )

    def __init__(
        self,
        schema: Schema,
        measure: str,
        explain_by: tuple[str, ...],
        time_attr: str,
        max_order: int,
        deduplicate: bool,
        aggregate: AggregateFunction,
        labels: Sequence[Hashable],
        overall: np.ndarray,
        ledgers: Sequence[SubsetLedger],
    ):
        self.schema = schema
        self.measure = measure
        self.explain_by = explain_by
        self.time_attr = time_attr
        self.max_order = max_order
        self.deduplicate = deduplicate
        self.aggregate = aggregate
        self.labels: list[Hashable] = list(labels)
        self.label_pos = {label: pos for pos, label in enumerate(self.labels)}
        #: (n_components, time_capacity) state of the overall query.
        self.overall = overall
        self.ledgers = list(ledgers)
        self.ledger_index = {ledger.attrs: i for i, ledger in enumerate(self.ledgers)}

    # ------------------------------------------------------------------
    @classmethod
    def from_build(
        cls,
        relation: "Relation",
        candidates: CandidateSet,
        aggregate: AggregateFunction,
        measure: str,
        explain_by: tuple[str, ...],
        time_attr: str,
        max_order: int,
        deduplicate: bool,
        labels: tuple[Hashable, ...],
        overall_state: np.ndarray,
        per_subset_states: Sequence[np.ndarray],
    ) -> "CubeAppendState":
        """Capture the ledger right after a relation-scan build.

        The state arrays are adopted (not copied) — they are exactly what
        the columnar build scattered into and are not referenced elsewhere
        after finalization.
        """
        ledgers = [
            SubsetLedger(
                attrs=attrs,
                state=state,
                counts=candidates.group_counts[i],
                values=candidates.group_values[i],
                parents=candidates.parent_groups[i],
                redundant=candidates.redundant[i],
            )
            for i, (attrs, state) in enumerate(
                zip(candidates.subsets, per_subset_states)
            )
        ]
        # Seed the ledger with the conjunction objects the build already
        # made, so unchanged candidates stay the same objects.
        for position, conj in enumerate(candidates.explanations):
            subset_pos = candidates.subset_index[position]
            local_id = candidates.local_ids[position]
            ledgers[subset_pos].conjunctions[local_id] = conj
        return cls(
            schema=relation.schema,
            measure=measure,
            explain_by=explain_by,
            time_attr=time_attr,
            max_order=max_order,
            deduplicate=deduplicate,
            aggregate=aggregate,
            labels=labels,
            overall=overall_state,
            ledgers=ledgers,
        )

    # ------------------------------------------------------------------
    @property
    def n_times(self) -> int:
        return len(self.labels)

    def time_range(self) -> tuple[Hashable, Hashable]:
        """First and last time label covered by this ledger.

        The labels are maintained in axis (ascending) order, so this is
        the inclusive time span the cube's rows fall into —
        :func:`~repro.cube.datacube.merge_shard_cubes` uses it to verify
        shards are disjoint and ordered before merging.
        """
        if not self.labels:
            raise QueryError("cube covers no time points")
        return self.labels[0], self.labels[-1]

    def layouts(self) -> list[np.ndarray]:
        return [ledger.layout() for ledger in self.ledgers]

    # ------------------------------------------------------------------
    def _map_delta_times(
        self, time_column: np.ndarray
    ) -> tuple[np.ndarray, list[Hashable], list[int]]:
        """Positions for every delta row, extending the axis as needed."""
        uniques, inverse = np.unique(time_column, return_inverse=True)
        unique_positions = np.empty(uniques.shape[0], dtype=np.intp)
        new_labels: list[Hashable] = []
        touched: list[int] = []
        last = self.labels[-1] if self.labels else None
        next_position = len(self.labels)
        # Validate every label before mutating, so a rejected delta leaves
        # the ledger exactly as it was.
        for index in range(uniques.shape[0]):
            label = _python_value(uniques[index])
            position = self.label_pos.get(label)
            if position is not None:
                unique_positions[index] = position
                touched.append(position)
                continue
            if last is not None and not label > last:
                raise BackfillError(
                    f"delta timestamp {label!r} precedes the cube's last "
                    f"timestamp {last!r}; appends may revisit existing "
                    "timestamps or extend the axis, never back-fill new ones"
                )
            # np.unique hands labels out ascending, so new ones arrive in
            # axis order.
            unique_positions[index] = next_position
            new_labels.append(label)
            last = label
            next_position += 1
        for label in new_labels:
            self.label_pos[label] = len(self.labels)
            self.labels.append(label)
        return unique_positions[inverse.ravel()], new_labels, sorted(touched)

    def _recompute_redundancy(self) -> None:
        if not self.deduplicate:
            return
        for ledger in self.ledgers:
            if ledger.order < 2:
                continue
            redundant = np.zeros(ledger.n_slots, dtype=bool)
            for drop in range(ledger.order):
                attrs = ledger.attrs[:drop] + ledger.attrs[drop + 1 :]
                parent = self.ledgers[self.ledger_index[attrs]]
                redundant |= parent.counts[ledger.parents[drop]] == ledger.counts
            ledger.redundant = redundant

    # ------------------------------------------------------------------
    def apply_delta(self, delta: "Relation") -> AppendInfo:
        """Scatter a delta relation into the ledger (in place).

        Returns the :class:`AppendInfo` describing what changed.  The
        caller (:meth:`ExplanationCube.append`) re-finalizes the touched
        cells of the published series arrays afterwards.
        """
        if delta.schema != self.schema:
            raise SchemaError(
                "delta schema does not match the cube's base relation schema"
            )
        old_n = self.n_times
        old_layouts = self.layouts()
        if delta.n_rows == 0:
            return AppendInfo(
                n_rows=0,
                old_n_times=old_n,
                n_times=old_n,
                new_labels=(),
                touched_positions=(),
                first_changed_position=old_n,
                candidates_changed=False,
            )

        positions, new_labels, touched = self._map_delta_times(
            delta.column(self.time_attr)
        )
        n_times = self.n_times
        values = delta.column(self.measure).astype(np.float64)

        self.overall = _grow_time(self.overall, n_times)
        self.aggregate.scatter_into(self.overall, values, positions)

        for ledger in self.ledgers:
            group_ids, representatives = _group_rows(delta, ledger.attrs)
            columns = delta.columns(ledger.attrs)
            slot_of = ledger.slot_index()
            slot_map = np.empty(representatives.shape[0], dtype=np.intp)
            fresh_combos: list[tuple] = []
            fresh_parents: list[list[int]] = []
            fresh_at: list[int] = []
            for group in range(representatives.shape[0]):
                row = representatives[group]
                combo = tuple(
                    _python_value(columns[name][row]) for name in ledger.attrs
                )
                slot = slot_of.get(combo)
                if slot is None:
                    parent_slots = []
                    for drop in range(ledger.order if ledger.order > 1 else 0):
                        attrs = ledger.attrs[:drop] + ledger.attrs[drop + 1 :]
                        parent = self.ledgers[self.ledger_index[attrs]]
                        parent_combo = combo[:drop] + combo[drop + 1 :]
                        # Parents are processed first, so any row matching
                        # this combo already registered the parent combo.
                        parent_slots.append(parent.slot_index()[parent_combo])
                    fresh_at.append(group)
                    fresh_combos.append(combo)
                    fresh_parents.append(parent_slots)
                else:
                    slot_map[group] = slot
            if fresh_combos:
                first = ledger.add_slots(fresh_combos, fresh_parents)
                for offset, group in enumerate(fresh_at):
                    slot_map[group] = first + offset
            ledger.state = _grow_time(ledger.state, n_times)
            row_slots = slot_map[group_ids]
            np.add.at(ledger.counts, row_slots, 1)
            self.aggregate.scatter_into(ledger.state, values, (row_slots, positions))

        self._recompute_redundancy()
        candidates_changed = any(
            not np.array_equal(old, ledger.layout())
            for old, ledger in zip(old_layouts, self.ledgers)
        )
        first_changed = touched[0] if touched else old_n
        return AppendInfo(
            n_rows=delta.n_rows,
            old_n_times=old_n,
            n_times=n_times,
            new_labels=tuple(new_labels),
            touched_positions=tuple(touched),
            first_changed_position=first_changed,
            candidates_changed=candidates_changed,
        )

    # ------------------------------------------------------------------
    def clone(self) -> "CubeAppendState":
        """A deep, independent copy (used by :func:`merge_cubes`)."""
        ledgers = []
        for ledger in self.ledgers:
            copy = SubsetLedger(
                attrs=ledger.attrs,
                state=ledger.state.copy(),
                counts=ledger.counts.copy(),
                values=[list(column) for column in ledger.values],
                parents=[p.copy() for p in ledger.parents],
                redundant=ledger.redundant.copy(),
            )
            copy.conjunctions = list(ledger.conjunctions)
            copy.sorted_order = ledger.sorted_order.copy()
            ledgers.append(copy)
        return CubeAppendState(
            schema=self.schema,
            measure=self.measure,
            explain_by=self.explain_by,
            time_attr=self.time_attr,
            max_order=self.max_order,
            deduplicate=self.deduplicate,
            aggregate=self.aggregate,
            labels=self.labels,
            overall=self.overall.copy(),
            ledgers=ledgers,
        )

    def absorb(self, other: "CubeAppendState") -> None:
        """Merge another ledger's states into this one (aggregate.merge).

        ``other``'s time labels must each exist here or extend the axis
        (the same contract as :meth:`apply_delta`).  Exact when no
        ``(group, time)`` bucket holds rows on both sides; otherwise the
        merged state equals the concatenated build up to float-addition
        reassociation.
        """
        if other.schema != self.schema:
            raise SchemaError("cannot merge cubes over different schemas")
        other_n = other.n_times
        position_map = np.empty(other_n, dtype=np.intp)
        last = self.labels[-1] if self.labels else None
        for position, label in enumerate(other.labels):
            existing = self.label_pos.get(label)
            if existing is None:
                if last is not None and not label > last:
                    raise QueryError(
                        f"cannot merge: timestamp {label!r} would back-fill "
                        f"before this cube's last timestamp {last!r}"
                    )
                existing = len(self.labels)
                self.labels.append(label)
                self.label_pos[label] = existing
                last = label
            position_map[position] = existing
        n_times = self.n_times
        aggregate = self.aggregate

        self.overall = _grow_time(self.overall, n_times)
        self.overall[:, position_map] = aggregate.merge(
            self.overall[:, position_map], other.overall[:, :other_n]
        )
        for mine, theirs in zip(self.ledgers, other.ledgers):
            mine.state = _grow_time(mine.state, n_times)
            slot_of = mine.slot_index()
            for other_slot in range(theirs.n_slots):
                combo = theirs.combo(other_slot)
                slot = slot_of.get(combo)
                if slot is None:
                    parent_slots = []
                    for drop in range(mine.order if mine.order > 1 else 0):
                        attrs = mine.attrs[:drop] + mine.attrs[drop + 1 :]
                        parent = self.ledgers[self.ledger_index[attrs]]
                        parent_combo = combo[:drop] + combo[drop + 1 :]
                        parent_slots.append(parent.slot_index()[parent_combo])
                    slot = mine.add_slots([combo], [parent_slots])
                    mine.state = _grow_time(mine.state, n_times)
                mine.counts[slot] += theirs.counts[other_slot]
                mine.state[:, slot, position_map] = aggregate.merge(
                    mine.state[:, slot, position_map],
                    theirs.state[:, other_slot, :other_n],
                )
        self._recompute_redundancy()
