"""Persistent rollup cache for built explanation cubes.

Building the explanation cube is the *prepare* phase of TSExplain's
two-tier design: expensive once, then every difference score is an O(1)
lookup.  This module makes that prepare phase a reusable on-disk artifact,
in the spirit of two-tier OLAP rollup stores (prepare once, query in
milliseconds): a built :class:`~repro.cube.datacube.ExplanationCube` is
serialized under a key derived from the relation fingerprint and the query
parameters, and any later explain over the same data and parameters loads
the rollup instead of rescanning the relation.

Cache invalidation contract
---------------------------
A cached cube is served only when **all** components of its
:class:`CubeKey` match:

* ``fingerprint`` — SHA-256 of the relation's schema and cell contents
  (:meth:`repro.relation.table.Relation.fingerprint`), so any data change
  invalidates the entry;
* ``measure``, ``explain_by`` (order-insensitive), ``aggregate``,
  ``time_attr``, ``max_order`` and ``deduplicate`` — the parameters that
  shape the cube itself.

Everything applied *after* the raw cube — smoothing, the support filter,
the difference metric, ``k``/``m`` — is deliberately **not** part of the
key: the cache stores the raw rollup and the pipeline re-applies those
cheap per-query transforms on load, so one cached build serves many
configurations.  A corrupted, truncated or otherwise unreadable entry is
treated as a miss and the cube is rebuilt (and re-stored) from the
relation; stores are atomic (write to a temp file, then rename), so a
crashed writer can never leave a half-written entry that poisons later
runs.

On-disk format
--------------
Each entry is an ``.npz`` archive: the four series arrays plus a JSON
header (key, labels, explanation items, counts) encoded as a ``uint8``
member.  Deliberately **no pickle** — entries are loaded with
``allow_pickle=False``, so a crafted file in a shared cache directory can
corrupt at most itself, never execute code in the reader.  JSON confines
labels and explanation values to str/int/float/bool/None; that is what
relations produce (``.item()``-converted scalars), and anything else
fails the store loudly rather than silently widening the format.

Since format 2, an *appendable* cube also persists its delta-maintenance
ledger (:mod:`repro.cube.delta`): the per-subset aggregate states, group
counts/values and parent maps, plus the overall state.  A format-2 entry
therefore revives as an appendable cube — a restarted stream can load a
snapshot and keep appending to it.

Streaming replay (chain keys + append log)
------------------------------------------
Streaming snapshots cannot afford a whole-relation fingerprint per
update.  Instead, a stream derives each snapshot's key from its
predecessor: :func:`chain_fingerprint` hashes ``(previous fingerprint,
delta fingerprint)``, so only the O(delta) delta rows are hashed per
update.  :class:`AppendLog` persists the base key plus the delta
fingerprint sequence next to the cache entries; a replayed stream whose
base and deltas match the log fast-forwards by loading the chained
entries instead of re-appending.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.cube.datacube import ExplanationCube
from repro.cube.delta import CubeAppendState, SubsetLedger
from repro.exceptions import AggregateError, QueryError
from repro.obs.metrics import get_registry as _get_metrics
from repro.relation.aggregates import AggregateFunction, get_aggregate
from repro.relation.predicates import Conjunction
from repro.relation.schema import Attribute, AttributeKind, Schema
from repro.relation.table import Relation


def _requests_counter(name: str, help: str):
    """A labeled ``{outcome}`` counter on the *current* default metrics
    registry (resolved per call so tests that swap the registry with
    ``set_registry`` observe cache traffic in their own instance)."""
    return _get_metrics().counter(name, help, labels=("outcome",))


#: Bump when the on-disk payload layout changes; older entries then read
#: as misses and are rebuilt.
CACHE_FORMAT = 2

#: Filename suffix of cache entries.
CACHE_SUFFIX = ".cube.npz"

#: Filename suffix of lattice manifests (one per data fingerprint).
MANIFEST_SUFFIX = ".lattice.json"


@dataclass(frozen=True)
class CubeKey:
    """Everything that determines the bytes of a raw explanation cube."""

    fingerprint: str
    measure: str
    explain_by: tuple[str, ...]
    aggregate: str
    time_attr: str
    max_order: int
    deduplicate: bool

    def digest(self) -> str:
        """Filename-safe hex digest of the full key."""
        return hashlib.sha256(repr(asdict(self)).encode("utf-8")).hexdigest()


def cube_key_for_fingerprint(
    fingerprint: str,
    measure: str,
    explain_by: Sequence[str],
    aggregate: str | AggregateFunction = "sum",
    time_attr: str = "",
    max_order: int = 3,
    deduplicate: bool = True,
) -> CubeKey:
    """A :class:`CubeKey` with the data component supplied directly.

    Normalizes the query parameters exactly like :func:`cube_key` (the
    aggregate resolves to its registry name, ``explain_by`` is sorted)
    but takes the fingerprint as a string, so keys can be derived without
    a materialized relation — :mod:`repro.store` keys out-of-core builds
    by a *source* fingerprint (``src-…``), and the streaming chain keys
    (:func:`chain_fingerprint`) live in the same namespace.
    """
    if isinstance(aggregate, str):
        aggregate = get_aggregate(aggregate)
    return CubeKey(
        fingerprint=fingerprint,
        measure=measure,
        explain_by=tuple(sorted(explain_by)),
        aggregate=aggregate.name,
        time_attr=time_attr,
        max_order=max_order,
        deduplicate=deduplicate,
    )


def cube_key(
    relation: Relation,
    measure: str,
    explain_by: Sequence[str],
    aggregate: str | AggregateFunction = "sum",
    time_attr: str | None = None,
    max_order: int = 3,
    deduplicate: bool = True,
) -> CubeKey:
    """The cache key a cube build over these inputs resolves to.

    Mirrors :class:`~repro.cube.datacube.ExplanationCube`'s parameter
    normalization: the aggregate is resolved to its registry name, the
    time attribute to the schema's time attribute, and ``explain_by`` is
    sorted (the cube sorts it too, so attribute order never splits the
    cache).
    """
    return cube_key_for_fingerprint(
        relation.fingerprint(),
        measure,
        explain_by,
        aggregate=aggregate,
        time_attr=time_attr or relation.schema.require_time(),
        max_order=max_order,
        deduplicate=deduplicate,
    )


@dataclass(frozen=True)
class CacheEntry:
    """Metadata of one on-disk cache entry (``repro cache inspect``)."""

    path: Path
    size_bytes: int
    valid: bool
    key: CubeKey | None = None
    n_explanations: int = 0
    n_times: int = 0

    def row(self) -> str:
        """One human-readable line for CLI listings."""
        name = self.path.name
        if not self.valid or self.key is None:
            return f"{name}  CORRUPT ({self.size_bytes} bytes)"
        return (
            f"{name[:16]}…  measure={self.key.measure} "
            f"explain_by={list(self.key.explain_by)} agg={self.key.aggregate} "
            f"max_order={self.key.max_order} epsilon={self.n_explanations} "
            f"n={self.n_times} ({self.size_bytes} bytes)"
        )


class RollupCache:
    """A directory of serialized explanation cubes keyed by :class:`CubeKey`.

    Parameters
    ----------
    directory:
        Cache root; ``~`` is expanded.  The directory is created (with
        parents) lazily by the first :meth:`store`, so read-only
        operations (``load``/``entries``/``clear``) never leave stray
        directories behind a mistyped path.  Safe to share between
        queries and datasets — entries are content-addressed by the key
        digest.
    max_entries:
        When set, :meth:`store` evicts the least-recently-used entries
        (by file access/modification time) once the directory holds more
        than this many — the bound that keeps e.g. a long-running
        streaming workload, whose every snapshot has a fresh fingerprint,
        from growing the cache without limit.  ``None`` (default) means
        unbounded.
    """

    def __init__(self, directory: str | Path, max_entries: int | None = None):
        self._directory = Path(directory).expanduser()
        self._max_entries = max_entries

    @property
    def directory(self) -> Path:
        return self._directory

    def path_for(self, key: CubeKey) -> Path:
        """The file path the given key is stored under."""
        return self._directory / f"{key.digest()}{CACHE_SUFFIX}"

    # ------------------------------------------------------------------
    # Load / store
    # ------------------------------------------------------------------
    def load(self, key: CubeKey) -> ExplanationCube | None:
        """The cached cube for ``key``, or ``None`` on miss/corruption.

        Entries stored with their delta ledger (appendable cubes) revive
        as appendable cubes; ledger-less entries load as fixed cubes.
        """
        cube = self._load(key)
        _requests_counter("repro_rollup_cache_requests_total", "Rollup cache operations by outcome (hit / miss / store)").inc(
            outcome="hit" if cube is not None else "miss"
        )
        return cube

    def _load(self, key: CubeKey) -> ExplanationCube | None:
        path = self.path_for(key)
        try:
            with np.load(path, allow_pickle=False) as data:
                header = _read_header(data)
                if header["format"] != CACHE_FORMAT or header["key"] != _key_dict(key):
                    return None
                if header.get("appendable"):
                    cube = ExplanationCube.from_append_state(
                        _load_append_state(header, data)
                    )
                else:
                    explanations = tuple(
                        Conjunction.from_items(
                            (name, value) for name, value in items
                        )
                        for items in header["explanations"]
                    )
                    cube = ExplanationCube.from_arrays(
                        aggregate=get_aggregate(header["aggregate"]),
                        measure=header["measure"],
                        explain_by=tuple(header["explain_by"]),
                        labels=tuple(header["labels"]),
                        overall=np.asarray(data["overall"], dtype=np.float64),
                        explanations=explanations,
                        supports=np.asarray(data["supports"], dtype=np.int64),
                        included=np.asarray(data["included"], dtype=np.float64),
                        excluded=np.asarray(data["excluded"], dtype=np.float64),
                    )
            # Mark the entry as recently used so LRU eviction keeps hot
            # entries alive.
            try:
                os.utime(path)
            except OSError:
                pass
            return cube
        except FileNotFoundError:
            return None
        except Exception:
            # Unreadable entries (truncated writes, foreign files, format
            # drift) are misses, not errors: the caller rebuilds from the
            # relation and overwrites the entry.
            return None

    def store(self, key: CubeKey, cube: ExplanationCube) -> Path:
        """Atomically persist a built cube under ``key``; returns the path.

        An appendable cube's delta ledger (aggregate states, group
        values, counts, parent maps) is stored alongside the series
        arrays, so the entry revives as an appendable cube.  Raises
        ``TypeError`` if the cube's labels, explanation values or group
        values are not JSON scalars (str/int/float/bool/None) — relations
        only produce such scalars, so this fires for hand-built cubes
        only.
        """
        header = {
            "format": CACHE_FORMAT,
            "key": _key_dict(key),
            "aggregate": cube.aggregate.name,
            "measure": cube.measure,
            "explain_by": list(cube.explain_by),
            "labels": list(cube.labels),
            "explanations": [
                [[name, value] for name, value in conj.items]
                for conj in cube.explanations
            ],
            "n_explanations": cube.n_explanations,
            "n_times": cube.n_times,
        }
        arrays: dict[str, np.ndarray] = {
            "overall": cube.overall_values,
            "supports": cube.supports,
            "included": cube.included_values,
            "excluded": cube.excluded_values,
        }
        state = cube.append_state
        if state is not None:
            n = state.n_times
            header["appendable"] = True
            header["state"] = {
                "time_attr": state.time_attr,
                "max_order": state.max_order,
                "deduplicate": state.deduplicate,
                "schema": [
                    [attribute.name, attribute.kind.value]
                    for attribute in state.schema
                ],
                "subsets": [list(ledger.attrs) for ledger in state.ledgers],
                "values": [
                    [[_python_value(value) for value in column] for column in ledger.values]
                    for ledger in state.ledgers
                ],
            }
            arrays["overall_state"] = state.overall[:, :n]
            for i, ledger in enumerate(state.ledgers):
                arrays[f"state{i}"] = ledger.state[:, :, :n]
                arrays[f"counts{i}"] = ledger.counts
                arrays[f"parents{i}"] = (
                    np.stack(ledger.parents)
                    if ledger.parents
                    else np.empty((0, ledger.n_slots), dtype=np.intp)
                )
        header_bytes = json.dumps(header, allow_nan=True).encode("utf-8")
        path = self.path_for(key)
        # Writes are crash- and racer-safe: the payload lands in a unique
        # temp file first and is published with an atomic rename, so a
        # concurrent reader only ever sees a complete entry (or none).  A
        # concurrent ``clear()``/external cleanup can still remove the
        # directory (or the temp file) between our mkdir and the rename —
        # that surfaces as FileNotFoundError, so re-create the directory
        # and retry the whole write once before giving up.
        last_error: FileNotFoundError | None = None
        for _ in range(2):
            self._directory.mkdir(parents=True, exist_ok=True)
            try:
                handle, tmp_name = tempfile.mkstemp(
                    dir=self._directory, suffix=f"{CACHE_SUFFIX}.tmp"
                )
            except FileNotFoundError as error:
                last_error = error
                continue
            try:
                with os.fdopen(handle, "wb") as tmp:
                    np.savez_compressed(
                        tmp,
                        header=np.frombuffer(header_bytes, dtype=np.uint8),
                        **arrays,
                    )
                os.replace(tmp_name, path)
            except FileNotFoundError as error:
                last_error = error
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                continue
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            self._evict()
            _requests_counter(
                "repro_rollup_cache_requests_total", "Rollup cache operations by outcome (hit / miss / store)"
            ).inc(outcome="store")
            return path
        assert last_error is not None
        raise last_error

    # ------------------------------------------------------------------
    # Finalized-cube artifacts (repro.cube.artifact)
    # ------------------------------------------------------------------
    def artifact_path_for(self, key: CubeKey) -> Path:
        """Where the mmap-able finalized artifact of ``key`` lives."""
        from repro.cube.artifact import artifact_path_for

        return artifact_path_for(self._directory, key)

    def store_artifact(self, key: CubeKey, cube: ExplanationCube) -> Path:
        """Atomically persist ``cube`` as a mmap-able artifact; returns the path.

        Unlike :meth:`store` the payload is written *uncompressed*, so
        every serve worker can memory-map the series matrices in place
        — one resident copy per machine instead of one per process.
        """
        from repro.cube.artifact import write_artifact

        path = write_artifact(self._directory, key, cube)
        _requests_counter(
            "repro_artifact_requests_total", "Finalized-cube artifact operations by outcome (hit / miss / store)"
        ).inc(outcome="store")
        return path

    def load_artifact(
        self, key: CubeKey, mmap: bool = True, appendable: bool = False
    ) -> ExplanationCube | None:
        """The artifact cube for ``key`` or ``None`` — same miss contract
        as :meth:`load` (corruption reads as a miss, never an error)."""
        from repro.cube.artifact import open_artifact

        cube = open_artifact(
            self._directory, key, mmap=mmap, appendable=appendable
        )
        _requests_counter(
            "repro_artifact_requests_total", "Finalized-cube artifact operations by outcome (hit / miss / store)"
        ).inc(outcome="hit" if cube is not None else "miss")
        return cube

    def _glob(self, pattern: str) -> list[Path]:
        """Directory listing that tolerates the directory vanishing.

        ``Path.glob`` checks ``is_dir`` and then scans; a concurrent
        ``clear()``/``rmtree`` in another process can remove the
        directory between the two, surfacing ``FileNotFoundError`` from
        the scan.  A vanished directory simply has no entries.
        """
        try:
            return list(self._directory.glob(pattern))
        except OSError:
            return []

    def _evict(self) -> None:
        """Drop the oldest entries beyond ``max_entries`` (newest survive)."""
        if self._max_entries is None:
            return
        paths = self._glob(f"*{CACHE_SUFFIX}")
        if len(paths) <= self._max_entries:
            return
        def age(path: Path) -> float:
            try:
                return path.stat().st_mtime
            except OSError:
                return 0.0
        paths.sort(key=age)
        for path in paths[: len(paths) - self._max_entries]:
            try:
                path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Lattice manifests (repro.lattice)
    # ------------------------------------------------------------------
    def manifest_path_for(self, fingerprint: str) -> Path:
        """Where the lattice manifest of one data fingerprint lives."""
        digest = hashlib.sha256(fingerprint.encode("utf-8")).hexdigest()
        return self._directory / f"{digest}{MANIFEST_SUFFIX}"

    def load_manifest_payload(self, fingerprint: str) -> dict | None:
        """The raw manifest JSON for a fingerprint, or ``None`` if absent.

        Unlike cube entries, a *present but unreadable* manifest raises
        :class:`~repro.exceptions.QueryError` instead of reading as a
        miss: the manifest tells the lattice router which rollups are
        answerable, and silently forgetting them would quietly rebuild
        what the operator believes is prepared.  Semantic validation
        (format version, fingerprint match) is the caller's job
        (:meth:`repro.lattice.manifest.LatticeManifest.from_payload`).
        """
        path = self.manifest_path_for(fingerprint)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as error:
            raise QueryError(
                f"lattice manifest {path} is unreadable: {error}"
            ) from error
        try:
            payload = json.loads(text)
        except ValueError as error:
            raise QueryError(
                f"lattice manifest {path} is corrupt: {error}"
            ) from error
        if not isinstance(payload, dict):
            raise QueryError(f"lattice manifest {path} is corrupt: not an object")
        return payload

    def store_manifest_payload(self, fingerprint: str, payload: dict) -> bool:
        """Atomically persist a manifest document; ``False`` if unwritable.

        The same temp-file + rename discipline as cube entries and append
        logs: a crashed writer can never leave a torn manifest, and a
        torn manifest would be a loud routing failure (see
        :meth:`load_manifest_payload`) rather than a silent one.
        """
        path = self.manifest_path_for(fingerprint)
        try:
            self._directory.mkdir(parents=True, exist_ok=True)
            handle, tmp_name = tempfile.mkstemp(
                dir=self._directory, suffix=f"{MANIFEST_SUFFIX}.tmp"
            )
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                json.dump(payload, tmp)
            os.replace(tmp_name, path)
            return True
        except OSError:
            # An unwritable cache directory degrades to an in-memory
            # lattice, exactly like an unpersistable cube store.
            return False

    # ------------------------------------------------------------------
    # Maintenance (``repro cache inspect`` / ``repro cache clear``)
    # ------------------------------------------------------------------
    def entries(self) -> list[CacheEntry]:
        """Metadata for every entry in the cache directory (sorted by name).

        Only each entry's JSON header is decompressed — the series
        arrays stay on disk, so inspecting a multi-gigabyte cache is
        cheap.
        """
        rows: list[CacheEntry] = []
        if not self._directory.is_dir():
            return rows
        for path in sorted(self._glob(f"*{CACHE_SUFFIX}")):
            try:
                size = path.stat().st_size
            except OSError:
                # Deleted by a concurrent clear()/eviction between the
                # glob and the stat — nothing left to report.
                continue
            try:
                with np.load(path, allow_pickle=False) as data:
                    header = _read_header(data)
                if header["format"] != CACHE_FORMAT:
                    raise ValueError("format mismatch")
                key_fields = dict(header["key"])
                key_fields["explain_by"] = tuple(key_fields["explain_by"])
                rows.append(
                    CacheEntry(
                        path=path,
                        size_bytes=size,
                        valid=True,
                        key=CubeKey(**key_fields),
                        n_explanations=int(header["n_explanations"]),
                        n_times=int(header["n_times"]),
                    )
                )
            except FileNotFoundError:
                # Deleted by a concurrent clear()/eviction after the stat;
                # a vanished entry is not a corrupt one.
                continue
            except Exception:
                rows.append(CacheEntry(path=path, size_bytes=size, valid=False))
        return rows

    def clear(self) -> int:
        """Delete every cache entry, finalized artifact, append log,
        lattice manifest, and any orphaned temp file left by a crashed
        writer; returns the number of files removed."""
        from repro.cube.artifact import ARTIFACT_SUFFIX

        removed = 0
        if not self._directory.is_dir():
            return removed
        for pattern in (
            f"*{CACHE_SUFFIX}",
            f"*{CACHE_SUFFIX}.tmp",
            f"*{ARTIFACT_SUFFIX}",
            f"*{ARTIFACT_SUFFIX}.tmp",
            f"*{LOG_SUFFIX}",
            f"*{LOG_SUFFIX}.tmp",
            f"*{MANIFEST_SUFFIX}",
            f"*{MANIFEST_SUFFIX}.tmp",
        ):
            for path in self._glob(pattern):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


def _key_dict(key: CubeKey) -> dict:
    """JSON-shaped rendering of a key (tuples become lists)."""
    rendered = asdict(key)
    rendered["explain_by"] = list(rendered["explain_by"])
    return rendered


def _python_value(value: object) -> object:
    return value.item() if hasattr(value, "item") else value


def _load_append_state(header: dict, data: "np.lib.npyio.NpzFile") -> CubeAppendState:
    """Reconstruct a cube's delta ledger from a format-2 entry."""
    meta = header["state"]
    schema = Schema(
        Attribute(name, AttributeKind(kind)) for name, kind in meta["schema"]
    )
    ledgers = []
    for i, (attrs, values) in enumerate(zip(meta["subsets"], meta["values"])):
        parents = np.asarray(data[f"parents{i}"], dtype=np.intp)
        ledgers.append(
            SubsetLedger(
                attrs=tuple(attrs),
                state=np.asarray(data[f"state{i}"], dtype=np.float64),
                counts=np.asarray(data[f"counts{i}"], dtype=np.int64),
                values=values,
                parents=[parents[d] for d in range(parents.shape[0])],
                redundant=np.zeros(len(values[0]) if values else 0, dtype=bool),
            )
        )
    state = CubeAppendState(
        schema=schema,
        measure=header["measure"],
        explain_by=tuple(header["explain_by"]),
        time_attr=meta["time_attr"],
        max_order=int(meta["max_order"]),
        deduplicate=bool(meta["deduplicate"]),
        aggregate=get_aggregate(header["aggregate"]),
        labels=header["labels"],
        overall=np.asarray(data["overall_state"], dtype=np.float64),
        ledgers=ledgers,
    )
    # Redundancy is derived, not stored: replay the dedup rule over the
    # loaded counts/parent maps.
    state._recompute_redundancy()
    return state


# ----------------------------------------------------------------------
# Streaming replay: chained snapshot keys and the append log
# ----------------------------------------------------------------------
#: Filename suffix of append logs.
LOG_SUFFIX = ".append.json"

#: Version tag of the append-log JSON layout.
LOG_FORMAT = 1


def chain_fingerprint(previous: str, delta_fingerprint: str) -> str:
    """The pseudo-fingerprint of ``snapshot + delta``.

    Streaming snapshots key their cache entries by folding each delta's
    fingerprint into the previous snapshot's, so a per-update store/load
    hashes only the O(delta) new rows — never the whole relation.  The
    two components are length-framed before hashing, so no pair of
    (previous, delta) strings can collide by concatenation.
    """
    digest = hashlib.sha256()
    for part in (previous, delta_fingerprint):
        encoded = part.encode("utf-8")
        digest.update(len(encoded).to_bytes(8, "little"))
        digest.update(encoded)
    return f"chain-{digest.hexdigest()}"


def chained_key(base_key: CubeKey, fingerprint: str) -> CubeKey:
    """``base_key`` with its data component replaced by a chained one."""
    return replace(base_key, fingerprint=fingerprint)


class AppendLog:
    """The persisted delta history of one cached stream.

    One JSON file per ``(base relation, query parameters)`` pair, stored
    next to the cache entries: the base :class:`CubeKey` plus the ordered
    delta fingerprints appended so far.  A restarted stream opens the log,
    replays its own deltas against it, and — as long as they match —
    fast-forwards through cached snapshots without rebuilding or
    re-appending; the first mismatching delta truncates the log and the
    chain diverges onto fresh entries.
    """

    def __init__(self, directory: str | Path, base_key: CubeKey):
        self._path = (
            Path(directory).expanduser() / f"{base_key.digest()}{LOG_SUFFIX}"
        )
        self._base_key = base_key
        self._deltas: list[str] = []
        try:
            payload = json.loads(self._path.read_text(encoding="utf-8"))
            if (
                payload.get("format") == LOG_FORMAT
                and payload.get("base_key") == _key_dict(base_key)
            ):
                self._deltas = [str(fp) for fp in payload["deltas"]]
        except (OSError, ValueError, KeyError):
            # Missing or unreadable logs start empty; they are an
            # optimization record, never a correctness input.
            pass

    @property
    def path(self) -> Path:
        return self._path

    @property
    def base_key(self) -> CubeKey:
        return self._base_key

    @property
    def deltas(self) -> tuple[str, ...]:
        """Recorded delta fingerprints, oldest first."""
        return tuple(self._deltas)

    def align(self, position: int, delta_fingerprint: str) -> bool:
        """Record the ``position``-th delta; returns whether it matched.

        A match (the log already holds this fingerprint at this position)
        means the chained cache entry for the resulting snapshot may
        exist — the replay fast-forward case.  A mismatch truncates the
        recorded history from ``position`` on and persists the new
        fingerprint, diverging the chain.
        """
        if position < len(self._deltas) and self._deltas[position] == delta_fingerprint:
            return True
        del self._deltas[position:]
        self._deltas.append(delta_fingerprint)
        self._save()
        return False

    def fingerprint_at(self, position: int) -> str:
        """The chained fingerprint after ``position`` deltas (0 = base)."""
        fingerprint = self._base_key.fingerprint
        for delta in self._deltas[:position]:
            fingerprint = chain_fingerprint(fingerprint, delta)
        return fingerprint

    def _save(self) -> None:
        payload = {
            "format": LOG_FORMAT,
            "base_key": _key_dict(self._base_key),
            "deltas": self._deltas,
        }
        try:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            handle, tmp_name = tempfile.mkstemp(
                dir=self._path.parent, suffix=f"{LOG_SUFFIX}.tmp"
            )
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                json.dump(payload, tmp)
            os.replace(tmp_name, self._path)
        except OSError:
            # An unwritable cache directory degrades to an unlogged
            # stream, exactly like an unpersistable cube store.
            pass


def _read_header(data: "np.lib.npyio.NpzFile") -> dict:
    """Decode the JSON header member of an entry archive."""
    return json.loads(bytes(data["header"].tobytes()).decode("utf-8"))


def load_or_build(
    cache: RollupCache | None,
    relation: Relation,
    explain_by: Sequence[str],
    measure: str,
    aggregate: str | AggregateFunction = "sum",
    time_attr: str | None = None,
    max_order: int = 3,
    deduplicate: bool = True,
    columnar: bool = True,
) -> tuple[ExplanationCube, bool]:
    """Serve a cube from the cache, building and storing it on a miss.

    Returns ``(cube, cache_hit)``.  With ``cache=None`` this is a plain
    build (``cache_hit`` is ``False``); this is the one entry point the
    pipeline, the streaming engine and the ``repro cache build`` CLI all
    share.

    Two classes of query quietly bypass the cache rather than failing or
    mis-serving: custom :class:`AggregateFunction` instances that are not
    the registry's own (the key stores only the aggregate *name*, so an
    off-registry instance could collide with or shadow a registered one),
    and cubes whose labels/values are not JSON scalars (``store`` would
    reject them).  Both still build and return a correct cube — it just
    is not persisted.
    """
    if cache is not None and not isinstance(aggregate, str):
        try:
            registered = get_aggregate(aggregate.name)
        except AggregateError:
            registered = None
        if registered is not aggregate:
            cache = None
    key = None
    if cache is not None:
        key = cube_key(
            relation,
            measure,
            explain_by,
            aggregate=aggregate,
            time_attr=time_attr,
            max_order=max_order,
            deduplicate=deduplicate,
        )
        cached = cache.load(key)
        if cached is not None:
            return cached, True
    cube = ExplanationCube(
        relation,
        explain_by,
        measure,
        aggregate=aggregate,
        time_attr=time_attr,
        max_order=max_order,
        deduplicate=deduplicate,
        columnar=columnar,
    )
    if cache is not None and key is not None:
        try:
            cache.store(key, cube)
        except (TypeError, OSError):
            # Non-JSON labels/values (e.g. datetime objects) make the query
            # uncacheable; an unwritable/full cache directory makes it
            # unpersistable.  Either way the built cube is correct and a
            # cache problem is never a reason to fail the explain.
            pass
    return cube, False
