"""Explanation candidates and the per-explanation time-series data cube."""

from repro.cube.datacube import ExplanationCube
from repro.cube.explanations import CandidateSet, enumerate_candidates
from repro.cube.filters import (
    DEFAULT_FILTER_RATIO,
    apply_support_filter,
    support_filter_mask,
)

__all__ = [
    "CandidateSet",
    "DEFAULT_FILTER_RATIO",
    "ExplanationCube",
    "apply_support_filter",
    "enumerate_candidates",
    "support_filter_mask",
]
