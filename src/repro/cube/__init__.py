"""Explanation candidates, the per-explanation time-series data cube, and
the persistent rollup cache that makes built cubes reusable artifacts."""

from repro.cube.artifact import (
    ARTIFACT_SUFFIX,
    artifact_path_for,
    open_artifact,
    write_artifact,
)
from repro.cube.cache import CacheEntry, CubeKey, RollupCache, cube_key, load_or_build
from repro.cube.datacube import ExplanationCube, merge_cubes, merge_shard_cubes
from repro.cube.delta import AppendInfo
from repro.cube.explanations import CandidateSet, enumerate_candidates
from repro.cube.filters import (
    DEFAULT_FILTER_RATIO,
    apply_support_filter,
    support_filter_mask,
)

__all__ = [
    "ARTIFACT_SUFFIX",
    "AppendInfo",
    "CacheEntry",
    "CandidateSet",
    "CubeKey",
    "DEFAULT_FILTER_RATIO",
    "ExplanationCube",
    "RollupCache",
    "apply_support_filter",
    "artifact_path_for",
    "cube_key",
    "enumerate_candidates",
    "load_or_build",
    "merge_cubes",
    "merge_shard_cubes",
    "open_artifact",
    "support_filter_mask",
    "write_artifact",
]
