"""The per-explanation time-series data cube (paper section 5.2, module a).

For every candidate explanation ``E`` the cube materializes the aggregated
time series of the *included* slice ``ts(sigma_E R)`` and of the *excluded*
relation ``ts(R - sigma_E R)``.  The build is columnar: measure values and
factorized dimension codes come straight out of the relation's column
store (:class:`repro.relation.table.Relation`), aggregate states
are scattered into dense ``group x time`` buckets with ``np.add.at``, and
included/excluded series are finalized in per-subset batches — no per-row
or per-candidate Python loop touches the data.  With the cube in memory,
the difference score ``gamma(E)`` of any segment ``[p_j', p_j]`` is an
O(1) lookup — exactly the pre-computation the paper assumes an interactive
OLAP tool maintains.

A built cube is a reusable artifact: :mod:`repro.cube.cache` persists it
to disk keyed by the relation fingerprint and query parameters, so
repeated explains reuse the prepare phase instead of rescanning.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.cube.delta import AppendInfo, CubeAppendState, _grow_time
from repro.cube.explanations import CandidateSet, enumerate_candidates
from repro.exceptions import ExplanationError, QueryError
from repro.relation.aggregates import AggregateFunction, get_aggregate
from repro.relation.predicates import Conjunction
from repro.relation.table import Relation
from repro.relation.timeseries import TimeSeries


class ExplanationCube:
    """Aggregated time series for the overall query and every candidate.

    Parameters
    ----------
    relation:
        Source rows.
    explain_by:
        Explain-by attribute names ``A``.
    measure:
        Measure attribute ``M`` aggregated over time.
    aggregate:
        Aggregate function ``f`` (name or instance); must be subtractable
        (SUM/COUNT/AVG/VAR) because the cube derives ``f(M, R - sigma_E R)``
        by state subtraction.
    time_attr:
        Time attribute ``T``; defaults to the schema's time attribute.
    max_order:
        Order threshold ``beta_max`` for candidates (paper default 3).
    deduplicate:
        Drop containment-redundant conjunctions (see
        :mod:`repro.cube.explanations`).
    columnar:
        Use the vectorized batch finalize (default).  ``False`` falls back
        to the legacy per-candidate Python loop — same results, kept for
        benchmarking and as an executable specification.
    appendable:
        Retain the pre-finalize aggregate states (the delta-maintenance
        ledger, see :mod:`repro.cube.delta`) so :meth:`append` can absorb
        new rows in O(delta).  Costs roughly one extra copy of the series
        arrays in memory; ``False`` builds a classic fixed cube.
    """

    def __init__(
        self,
        relation: Relation,
        explain_by: Sequence[str],
        measure: str,
        aggregate: str | AggregateFunction = "sum",
        time_attr: str | None = None,
        max_order: int = 3,
        deduplicate: bool = True,
        columnar: bool = True,
        appendable: bool = True,
    ):
        if isinstance(aggregate, str):
            aggregate = get_aggregate(aggregate)
        relation.schema.require_measure(measure)
        time_positions, labels = relation.time_positions(time_attr)
        values = relation.column(measure).astype(np.float64)
        n_times = len(labels)

        overall_state = aggregate.accumulate(values, time_positions, n_times)
        candidates = enumerate_candidates(
            relation, explain_by, max_order=max_order, deduplicate=deduplicate
        )
        included, excluded, per_subset_states = _materialize_series(
            candidates,
            values,
            time_positions,
            n_times,
            aggregate,
            overall_state,
            columnar=columnar,
        )

        self._aggregate = aggregate
        self._measure = measure
        self._explain_by = tuple(sorted(explain_by))
        self._labels: tuple[Hashable, ...] = labels
        self._overall = aggregate.finalize(overall_state)
        self._explanations = candidates.explanations
        self._supports = candidates.supports
        self._included = included
        self._excluded = excluded
        self._index = {conj: i for i, conj in enumerate(self._explanations)}
        self._append_state: CubeAppendState | None = None
        self._overall_buf = self._overall
        self._included_buf = included
        self._excluded_buf = excluded
        if appendable:
            self._append_state = CubeAppendState.from_build(
                relation,
                candidates,
                aggregate,
                measure,
                self._explain_by,
                time_attr or relation.schema.require_time(),
                max_order,
                deduplicate,
                labels,
                overall_state,
                per_subset_states,
            )

    # ------------------------------------------------------------------
    # Array-level constructor used by restrict(), smoothing and the
    # rollup cache
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        aggregate: AggregateFunction,
        measure: str,
        explain_by: tuple[str, ...],
        labels: tuple[Hashable, ...],
        overall: np.ndarray,
        explanations: tuple[Conjunction, ...],
        supports: np.ndarray,
        included: np.ndarray,
        excluded: np.ndarray,
    ) -> "ExplanationCube":
        """Assemble a cube directly from prebuilt series arrays.

        This bypasses the relation scan entirely; it is how
        :meth:`restrict`, :func:`repro.core.smoothing.smooth_cube` and the
        rollup cache (:mod:`repro.cube.cache`) construct cubes.  The arrays
        are adopted without copying, so callers must not mutate them.
        """
        cube = cls.__new__(cls)
        cube._aggregate = aggregate
        cube._measure = measure
        cube._explain_by = explain_by
        cube._labels = labels
        cube._overall = overall
        cube._explanations = explanations
        cube._supports = supports
        cube._included = included
        cube._excluded = excluded
        cube._index = {conj: i for i, conj in enumerate(explanations)}
        cube._append_state = None
        cube._overall_buf = overall
        cube._included_buf = included
        cube._excluded_buf = excluded
        return cube

    # Backwards-compatible alias for the pre-cache private name.
    _from_arrays = from_arrays

    @classmethod
    def from_append_state(cls, state: CubeAppendState) -> "ExplanationCube":
        """Assemble a (re-)finalized appendable cube from a delta ledger.

        Used by the rollup cache to revive appendable cubes from disk and
        by :func:`merge_cubes`; the candidate layout, supports and all
        series arrays are derived from the ledger's states, exactly as a
        fresh build over the equivalent relation would produce them.
        """
        cube = cls.__new__(cls)
        cube._aggregate = state.aggregate
        cube._measure = state.measure
        cube._explain_by = state.explain_by
        cube._append_state = state
        cube._refinalize_full()
        return cube

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_explanations(self) -> int:
        """Candidate count ``epsilon``."""
        return len(self._explanations)

    @property
    def aggregate(self) -> AggregateFunction:
        """The decomposable aggregate ``f`` the cube was built with."""
        return self._aggregate

    @property
    def measure(self) -> str:
        """The measure attribute ``M`` being aggregated."""
        return self._measure

    @property
    def n_times(self) -> int:
        """Time series length ``n``."""
        return len(self._labels)

    @property
    def explanations(self) -> tuple[Conjunction, ...]:
        return self._explanations

    @property
    def explain_by(self) -> tuple[str, ...]:
        return self._explain_by

    @property
    def labels(self) -> tuple[Hashable, ...]:
        return self._labels

    @property
    def supports(self) -> np.ndarray:
        """Row counts per candidate."""
        return self._supports

    @property
    def overall_values(self) -> np.ndarray:
        """Aggregated values of the overall query, indexed by time position."""
        return self._overall

    @property
    def included_values(self) -> np.ndarray:
        """``(epsilon, n)`` matrix of ``f(M, sigma_E R)`` per time position."""
        return self._included

    @property
    def excluded_values(self) -> np.ndarray:
        """``(epsilon, n)`` matrix of ``f(M, R - sigma_E R)`` per time position."""
        return self._excluded

    def overall_series(self) -> TimeSeries:
        """The aggregated time series ``ts(R)`` being explained."""
        return TimeSeries(self._overall, self._labels)

    def series(self, index: int) -> TimeSeries:
        """The aggregated time series of candidate ``index``'s slice."""
        return TimeSeries(self._included[index], self._labels)

    def index_of(self, conjunction: Conjunction) -> int:
        """Position of a candidate conjunction in the cube."""
        try:
            return self._index[conjunction]
        except KeyError:
            raise ExplanationError(f"{conjunction!r} is not a cube candidate") from None

    # ------------------------------------------------------------------
    # Difference-score primitives (consumed by repro.diff)
    # ------------------------------------------------------------------
    def overall_change(self, start: int, stop: int) -> float:
        """``f(M, R_t) - f(M, R_c)`` over segment ``[p_start, p_stop]``."""
        return float(self._overall[stop] - self._overall[start])

    def signed_contributions(
        self, start: int, stop: int, indices: np.ndarray | None = None
    ) -> np.ndarray:
        """Signed change attributable to each candidate over a segment.

        ``delta(E) = [f(R_t) - f(R_c)] - [f(R_t - sigma_E R_t) - f(R_c -
        sigma_E R_c)]``; ``|delta|`` is the absolute-change score
        (Definition 3.2) and ``sign(delta)`` the change effect ``tau``
        (Definition 3.3).
        """
        overall_change = self._overall[stop] - self._overall[start]
        if indices is None:
            excluded_change = self._excluded[:, stop] - self._excluded[:, start]
        else:
            excluded_change = self._excluded[indices, stop] - self._excluded[indices, start]
        return overall_change - excluded_change

    def signed_contributions_many(
        self, starts: np.ndarray, stops: np.ndarray
    ) -> np.ndarray:
        """``(epsilon, n_segments)`` matrix of signed contributions.

        Row ``e``, column ``s`` holds ``delta(E_e)`` over the segment
        ``[p_{starts[s]}, p_{stops[s]}]`` — the bulk form used by the
        segmentation pipeline, where thousands of segments are scored at
        once.
        """
        starts = np.asarray(starts, dtype=np.intp)
        stops = np.asarray(stops, dtype=np.intp)
        overall_change = self._overall[stops] - self._overall[starts]
        excluded_change = self._excluded[:, stops] - self._excluded[:, starts]
        return overall_change[None, :] - excluded_change

    # ------------------------------------------------------------------
    def slice_time(self, start_pos: int, stop_pos: int) -> "ExplanationCube":
        """The cube restricted to time positions ``[start_pos, stop_pos]``.

        This is the O(window) primitive behind windowed session queries:
        the overall/included/excluded arrays and labels are sliced along
        the time axis (views, no copy), so serving a window never rescans
        the relation or re-enumerates candidates.  The candidate set is
        the *full* cube's — a candidate with no rows inside the window
        keeps its (zero-valued) series — and ``supports`` remain whole
        -relation row counts; the support filter operates on the sliced
        series, so per-window insignificance is still filtered per query.
        Both endpoints are inclusive and the window must span at least two
        points (a single point has no change to explain).
        """
        if not 0 <= start_pos < stop_pos < self.n_times:
            raise QueryError(
                f"invalid time slice [{start_pos}, {stop_pos}] for series of "
                f"length {self.n_times}"
            )
        window = slice(start_pos, stop_pos + 1)
        return ExplanationCube.from_arrays(
            aggregate=self._aggregate,
            measure=self._measure,
            explain_by=self._explain_by,
            labels=self._labels[window],
            overall=self._overall[window],
            explanations=self._explanations,
            supports=self._supports,
            included=self._included[:, window],
            excluded=self._excluded[:, window],
        )

    def detach(self, source: "ExplanationCube") -> "ExplanationCube":
        """A snapshot of this cube sharing no series memory with ``source``.

        Derived cubes (:meth:`slice_time` windows, :meth:`restrict`'s
        ``overall``) hold views into — or aliases of — their source's
        buffers, and an *appendable* source re-finalizes those buffers in
        place on :meth:`append`.  A consumer that may read concurrently
        with appends (the session's scorer LRU) detaches first, so an
        in-flight read can never observe an append's partial writes.
        Mere array ownership is no aliasing test — right after a build the
        source's published arrays *are* its grow-buffers — so aliasing is
        decided with :func:`numpy.shares_memory` against ``source``
        (typically the live cube; ``self`` works and snapshots fully).
        Arrays not sharing memory are adopted without copying; a cube
        sharing nothing returns itself.
        """
        pairs = (
            (self._overall, source._overall),
            (self._supports, source._supports),
            (self._included, source._included),
            (self._excluded, source._excluded),
        )
        if not any(np.shares_memory(mine, theirs) for mine, theirs in pairs):
            return self

        def owned(mine: np.ndarray, theirs: np.ndarray) -> np.ndarray:
            return mine.copy() if np.shares_memory(mine, theirs) else mine

        return ExplanationCube.from_arrays(
            aggregate=self._aggregate,
            measure=self._measure,
            explain_by=self._explain_by,
            labels=self._labels,
            overall=owned(self._overall, source._overall),
            explanations=self._explanations,
            supports=owned(self._supports, source._supports),
            included=owned(self._included, source._included),
            excluded=owned(self._excluded, source._excluded),
        )

    def restrict(self, keep: np.ndarray) -> "ExplanationCube":
        """A cube containing only the candidates selected by ``keep``.

        ``keep`` may be a boolean mask or an index array.  Used by the
        support filter (section 7.5.1) and by tests.
        """
        keep = np.asarray(keep)
        if keep.dtype == bool:
            keep = np.flatnonzero(keep)
        explanations = tuple(self._explanations[i] for i in keep)
        return ExplanationCube.from_arrays(
            aggregate=self._aggregate,
            measure=self._measure,
            explain_by=self._explain_by,
            labels=self._labels,
            overall=self._overall,
            explanations=explanations,
            supports=self._supports[keep],
            included=self._included[keep],
            excluded=self._excluded[keep],
        )

    # ------------------------------------------------------------------
    # Delta maintenance (streaming appends; see repro.cube.delta)
    # ------------------------------------------------------------------
    @property
    def appendable(self) -> bool:
        """Whether this cube retains the ledger :meth:`append` needs.

        Only relation-built cubes (and cache entries stored with their
        state) are appendable; derived cubes — :meth:`slice_time`,
        :meth:`restrict`, smoothed copies — are fixed snapshots.
        """
        return self._append_state is not None

    @property
    def append_state(self) -> CubeAppendState | None:
        """The delta-maintenance ledger (``None`` for fixed cubes)."""
        return self._append_state

    def append(self, delta: Relation) -> AppendInfo:
        """Absorb newly arrived rows in O(delta), **in place**.

        Scatters the delta rows' factorized codes into the retained
        aggregate states, extends the time axis with any new labels, and
        re-finalizes only the touched ``(candidate, timestamp)`` cells —
        the result is bit-identical to rebuilding the cube over
        ``base.concat(delta)`` (the property suite asserts this across
        SUM/COUNT/AVG/VAR).  Delta timestamps must be existing labels
        (late-arriving records) or sort strictly after the current last
        label; anything else raises :class:`~repro.exceptions.QueryError`.

        Because the append mutates the published series arrays, cubes
        *derived* from this one (slices, smoothed/filtered copies, bound
        scorers) whose window overlaps
        :attr:`AppendInfo.first_changed_position` become stale; callers
        holding such derivations must drop them —
        :meth:`repro.core.session.ExplainSession.append` does exactly
        that for its scorer LRU.
        """
        if self._append_state is None:
            raise ExplanationError(
                "this cube is not appendable: it is a derived slice/smoothed/"
                "filtered copy or was cache-loaded without its delta ledger; "
                "rebuild from the relation with appendable=True"
            )
        info = self._append_state.apply_delta(delta)
        if info.is_noop:
            return info
        if info.candidates_changed:
            self._refinalize_full()
        else:
            cols = np.asarray(
                list(info.touched_positions)
                + list(range(info.old_n_times, info.n_times)),
                dtype=np.intp,
            )
            self._refinalize_cols(cols)
        return info

    def _refinalize_full(self) -> None:
        """Re-derive candidates and every series cell from the ledger."""
        state = self._append_state
        assert state is not None
        aggregate = state.aggregate
        n = state.n_times
        capacity = state.overall.shape[1]
        overall_state = state.overall[:, :n]
        layouts = state.layouts()
        n_candidates = sum(layout.shape[0] for layout in layouts)

        explanations: list[Conjunction] = []
        supports = np.empty(n_candidates, dtype=np.int64)
        included = np.zeros((n_candidates, capacity), dtype=np.float64)
        excluded = np.zeros((n_candidates, capacity), dtype=np.float64)
        row = 0
        for ledger, layout in zip(state.ledgers, layouts):
            k = layout.shape[0]
            if not k:
                continue
            batch = ledger.state[:, layout, :n]
            included[row : row + k, :n] = aggregate.finalize(batch)
            excluded[row : row + k, :n] = aggregate.finalize(
                aggregate.subtract(overall_state[:, None, :], batch)
            )
            supports[row : row + k] = ledger.counts[layout]
            explanations.extend(ledger.conjunction(int(slot)) for slot in layout)
            row += k

        overall_buf = np.zeros(capacity, dtype=np.float64)
        overall_buf[:n] = aggregate.finalize(overall_state)
        self._labels = tuple(state.labels)
        self._overall_buf = overall_buf
        self._included_buf = included
        self._excluded_buf = excluded
        self._overall = overall_buf[:n]
        self._included = included[:, :n]
        self._excluded = excluded[:, :n]
        self._explanations = tuple(explanations)
        self._supports = supports
        self._index = {conj: i for i, conj in enumerate(self._explanations)}

    def _refinalize_cols(self, cols: np.ndarray) -> None:
        """Re-finalize only the given time columns (layout unchanged)."""
        state = self._append_state
        assert state is not None
        aggregate = state.aggregate
        n = state.n_times
        self._overall_buf = _grow_time(self._overall_buf, n)
        self._included_buf = _grow_time(self._included_buf, n)
        self._excluded_buf = _grow_time(self._excluded_buf, n)

        overall_cols = state.overall[:, cols]
        self._overall_buf[cols] = aggregate.finalize(overall_cols)
        row = 0
        supports_parts: list[np.ndarray] = []
        for ledger in state.ledgers:
            layout = ledger.layout()
            k = layout.shape[0]
            supports_parts.append(ledger.counts[layout])
            if not k:
                continue
            batch = ledger.state[:, layout[:, None], cols[None, :]]
            self._included_buf[row : row + k, cols] = aggregate.finalize(batch)
            self._excluded_buf[row : row + k, cols] = aggregate.finalize(
                aggregate.subtract(overall_cols[:, None, :], batch)
            )
            row += k
        self._labels = tuple(state.labels)
        self._overall = self._overall_buf[:n]
        self._included = self._included_buf[:, :n]
        self._excluded = self._excluded_buf[:, :n]
        self._supports = np.concatenate(supports_parts) if supports_parts else self._supports

    def __repr__(self) -> str:
        return (
            f"ExplanationCube(epsilon={self.n_explanations}, n={self.n_times}, "
            f"explain_by={list(self._explain_by)})"
        )


def _require_appendable(cube: ExplanationCube) -> CubeAppendState:
    """The cube's delta ledger, or a descriptive error when it has none."""
    state = cube.append_state
    if state is None:
        raise ExplanationError(
            "merge_cubes requires appendable cubes (built with "
            "appendable=True, or cache-loaded with their delta ledger)"
        )
    return state


def _check_same_query(left: CubeAppendState, right: CubeAppendState) -> None:
    """Reject merging ledgers whose cube-shaping parameters differ."""
    mismatched = [
        field
        for field, a, b in (
            ("measure", left.measure, right.measure),
            ("aggregate", left.aggregate.name, right.aggregate.name),
            ("explain_by", left.explain_by, right.explain_by),
            ("time_attr", left.time_attr, right.time_attr),
            ("max_order", left.max_order, right.max_order),
            ("deduplicate", left.deduplicate, right.deduplicate),
        )
        if a != b
    ]
    if mismatched:
        raise ExplanationError(
            f"cannot merge cubes built with different {mismatched}"
        )


def merge_cubes(base: ExplanationCube, other: ExplanationCube) -> ExplanationCube:
    """Merge two appendable cubes built over the same query into a new one.

    ``other``'s time labels must each already exist in ``base`` or sort
    strictly after its last label (the streaming append contract); both
    cubes must share measure, aggregate, explain-by set, ``max_order``,
    ``deduplicate`` and schema.  Neither input is mutated.

    The merged states combine with :meth:`AggregateFunction.merge`, so the
    result is bit-identical to a one-shot build over the concatenated
    relations whenever no ``(group, timestamp)`` bucket holds rows on both
    sides (e.g. partitioned-by-time shards); buckets fed by both sides are
    numerically equal up to float-addition reassociation.  For the exact
    row-order-preserving path, use :meth:`ExplanationCube.append` with the
    delta *relation* instead.
    """
    left = _require_appendable(base)
    right = _require_appendable(other)
    _check_same_query(left, right)
    merged = left.clone()
    merged.absorb(right)
    return ExplanationCube.from_append_state(merged)


def merge_shard_cubes(shards: Sequence[ExplanationCube]) -> ExplanationCube:
    """Combine time-partitioned shard cubes into one cube (shards in order).

    This is the list form :class:`~repro.serve.sharding.ShardedBuilder`
    feeds: each shard must cover a time-label range that sorts *strictly
    after* the previous shard's (disjoint and ordered), so every
    ``(group, timestamp)`` bucket is fed by exactly one shard and the
    merged cube is **bit-identical** to a one-shot build over the
    concatenated shard relations.  Unlike :func:`merge_cubes` — which
    tolerates shared timestamps by state-merging them — an overlapping or
    out-of-order shard here is a partitioning bug, so it raises
    :class:`~repro.exceptions.QueryError` instead of silently degrading
    the bit-identity guarantee.  An empty shard list raises too; a single
    shard returns a fresh re-finalized cube (no aliasing with the input).
    """
    shards = list(shards)
    if not shards:
        raise QueryError("cannot merge an empty list of shard cubes")
    states = [_require_appendable(cube) for cube in shards]
    previous_last = None
    for position, state in enumerate(states):
        if not state.labels:
            raise QueryError(f"shard {position} covers no time points")
        first, last = state.time_range()
        if previous_last is not None and not first > previous_last:
            raise QueryError(
                f"shard {position} starts at {first!r}, which does not sort "
                f"strictly after the previous shard's last timestamp "
                f"{previous_last!r}; time shards must be disjoint and given "
                "in time order"
            )
        previous_last = last
    merged = states[0].clone()
    for state in states[1:]:
        _check_same_query(merged, state)
        merged.absorb(state)
    return ExplanationCube.from_append_state(merged)


def _materialize_series(
    candidates: CandidateSet,
    values: np.ndarray,
    time_positions: np.ndarray,
    n_times: int,
    aggregate: AggregateFunction,
    overall_state: np.ndarray,
    columnar: bool = True,
) -> tuple[np.ndarray, np.ndarray, list[np.ndarray]]:
    """Finalized included/excluded series plus the per-subset states.

    States are accumulated once per attribute *subset* (bucket id =
    ``group_id * n_times + time_position``), so the relation is scanned
    ``O(|subsets|)`` times, not ``O(epsilon)``.  In columnar mode every
    subset's candidates are then gathered with one fancy-index per subset
    and finalized as a ``(n_components, k, n_times)`` batch; the legacy
    mode finalizes one candidate at a time in a Python loop.  The raw
    states are returned as well so an appendable cube can retain them as
    its delta-maintenance ledger.
    """
    per_subset_states: list[np.ndarray] = []
    for group_ids in candidates.row_groups:
        n_groups = int(group_ids.max()) + 1 if group_ids.size else 0
        buckets = group_ids * n_times + time_positions
        state = aggregate.accumulate(values, buckets, n_groups * n_times)
        per_subset_states.append(
            state.reshape(aggregate.n_components, n_groups, n_times)
        )

    n_candidates = len(candidates)
    included = np.empty((n_candidates, n_times), dtype=np.float64)
    excluded = np.empty((n_candidates, n_times), dtype=np.float64)
    if columnar:
        subset_index = np.asarray(candidates.subset_index, dtype=np.intp)
        local_ids = np.asarray(candidates.local_ids, dtype=np.intp)
        rest_state = overall_state[:, None, :]  # broadcasts over the batch
        # Candidates are emitted grouped by subset in ascending order, so
        # each subset's rows are one contiguous slice.
        bounds = np.searchsorted(
            subset_index, np.arange(len(per_subset_states) + 1, dtype=np.intp)
        )
        for subset_pos, states in enumerate(per_subset_states):
            rows = slice(int(bounds[subset_pos]), int(bounds[subset_pos + 1]))
            if rows.start == rows.stop:
                continue
            batch = states[:, local_ids[rows], :]
            included[rows] = aggregate.finalize(batch)
            excluded[rows] = aggregate.finalize(aggregate.subtract(rest_state, batch))
    else:
        for position in range(n_candidates):
            subset_pos = candidates.subset_index[position]
            local_id = candidates.local_ids[position]
            state = per_subset_states[subset_pos][:, local_id, :]
            included[position] = aggregate.finalize(state)
            excluded[position] = aggregate.finalize(
                aggregate.subtract(overall_state, state)
            )
    return included, excluded, per_subset_states
