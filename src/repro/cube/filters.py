"""Support filter over cube candidates (paper section 7.5.1, ``w filter``).

"Given an explanation E, if each point in its aggregated time series has
value smaller than a ratio of the corresponding value in the overall
aggregated time series, we filter this explanation E as its support is low
and thus insignificant."  The default ratio is 0.001, as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.cube.datacube import ExplanationCube

#: Paper default filtering ratio.
DEFAULT_FILTER_RATIO = 0.001


def support_filter_mask(cube: ExplanationCube, ratio: float = DEFAULT_FILTER_RATIO) -> np.ndarray:
    """Boolean mask of candidates that survive the support filter.

    A candidate is dropped only when *every* point of its included series is
    below ``ratio`` times the overall series (absolute values, so the filter
    behaves identically for negative measures).
    """
    threshold = ratio * np.abs(cube.overall_values)[None, :]
    below_everywhere = np.all(np.abs(cube.included_values) < threshold, axis=1)
    return ~below_everywhere


def apply_support_filter(
    cube: ExplanationCube, ratio: float = DEFAULT_FILTER_RATIO
) -> ExplanationCube:
    """A new cube with low-support candidates removed."""
    return cube.restrict(support_filter_mask(cube, ratio))
