"""Explanation-agnostic segmentation baselines (paper section 7.2)."""

from repro.baselines.base import Segmenter, attach_explanations
from repro.baselines.bottomup import BottomUpSegmenter, interpolation_error
from repro.baselines.fluss import FlussSegmenter, corrected_arc_curve
from repro.baselines.matrix_profile import MatrixProfile, compute_matrix_profile
from repro.baselines.nnsegment import NNSegmenter, novelty_curve

__all__ = [
    "BottomUpSegmenter",
    "FlussSegmenter",
    "MatrixProfile",
    "NNSegmenter",
    "Segmenter",
    "attach_explanations",
    "compute_matrix_profile",
    "corrected_arc_curve",
    "interpolation_error",
    "novelty_curve",
]


def all_baselines() -> tuple[Segmenter, ...]:
    """One default-configured instance of every baseline segmenter."""
    return (BottomUpSegmenter(), FlussSegmenter(), NNSegmenter())
