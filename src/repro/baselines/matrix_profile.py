"""Self-join matrix profile (STUMP-style substrate, pure numpy).

The FLUSS baseline needs the matrix profile *index* vector: for every
length-``w`` subsequence, the position of its z-normalized nearest
neighbour (excluding a trivial-match zone around itself).  The paper uses
the Stump library; this is our from-scratch replacement.

The computation walks the diagonals of the (implicit) distance matrix,
updating the sliding dot product in O(1) per step — the STOMP recurrence —
so the total cost is O(n^2) with numpy-vectorized inner work and no
O(n^2) memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SegmentationError


@dataclass(frozen=True)
class MatrixProfile:
    """Matrix profile values and indices of a series self-join.

    Attributes
    ----------
    profile:
        z-normalized Euclidean distance to each subsequence's nearest
        neighbour.
    indices:
        Position of that nearest neighbour.
    window:
        Subsequence length ``w``.
    """

    profile: np.ndarray
    indices: np.ndarray
    window: int

    @property
    def n_subsequences(self) -> int:
        return self.profile.shape[0]


def compute_matrix_profile(values: np.ndarray, window: int) -> MatrixProfile:
    """Self-join matrix profile with the standard ``w//2`` exclusion zone.

    Constant subsequences are z-normalized as zero vectors, which makes two
    constant subsequences identical (distance 0) — the convention matters
    for flat regions in liquor-style sales data.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise SegmentationError(f"expected 1-D series, got {values.shape}")
    n = values.shape[0]
    if window < 2:
        raise SegmentationError(f"window must be >= 2, got {window}")
    n_subsequences = n - window + 1
    if n_subsequences < 2:
        raise SegmentationError(
            f"series of length {n} too short for window {window}"
        )

    # Rolling means and standard deviations.
    prefix = np.concatenate([[0.0], np.cumsum(values)])
    prefix_sq = np.concatenate([[0.0], np.cumsum(values * values)])
    means = (prefix[window:] - prefix[:-window]) / window
    sq_means = (prefix_sq[window:] - prefix_sq[:-window]) / window
    variances = np.maximum(sq_means - means * means, 0.0)
    stds = np.sqrt(variances)
    constant = stds < 1e-12

    exclusion = max(1, window // 2)
    profile = np.full(n_subsequences, np.inf)
    best_index = np.zeros(n_subsequences, dtype=np.intp)

    # Walk diagonals lag = exclusion + 1 ... n_subsequences - 1; on each
    # diagonal the dot products QT[i] = <values[i:i+w], values[i+lag:i+lag+w]>
    # obey QT[i] = QT[i-1] - v[i-1] v[i+lag-1] + v[i+w-1] v[i+lag+w-1].
    for lag in range(exclusion + 1, n_subsequences):
        length = n_subsequences - lag
        # Running dot products along the diagonal via cumulative updates.
        first = float(np.dot(values[:window], values[lag : lag + window]))
        drop = values[: length - 1] * values[lag : lag + length - 1]
        add = values[window : window + length - 1] * values[lag + window : lag + window + length - 1]
        dots = np.empty(length)
        dots[0] = first
        if length > 1:
            dots[1:] = first + np.cumsum(add - drop)

        i = np.arange(length)
        j = i + lag
        sigma_product = stds[i] * stds[j]
        both_constant = constant[i] & constant[j]
        one_constant = constant[i] ^ constant[j]
        with np.errstate(divide="ignore", invalid="ignore"):
            correlation = (dots - window * means[i] * means[j]) / (window * sigma_product)
        correlation = np.clip(correlation, -1.0, 1.0)
        distances = np.sqrt(np.maximum(2.0 * window * (1.0 - correlation), 0.0))
        distances[both_constant] = 0.0
        distances[one_constant] = np.sqrt(window)

        better_i = distances < profile[i]
        profile[i[better_i]] = distances[better_i]
        best_index[i[better_i]] = j[better_i]
        better_j = distances < profile[j]
        profile[j[better_j]] = distances[better_j]
        best_index[j[better_j]] = i[better_j]

    return MatrixProfile(profile=profile, indices=best_index, window=window)
