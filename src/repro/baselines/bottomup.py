"""Bottom-Up piecewise-linear segmentation [Keogh et al., 2004].

Reproduced from the pseudo-code in "Segmenting time series: a survey and
novel approach" (the paper's section 7.2 does the same): start from the
finest segmentation, repeatedly merge the adjacent pair whose merged
linear-interpolation error grows the least, and stop when ``k`` segments
remain.  Keogh et al. report this as the strongest offline heuristic, and
the paper finds it the most competitive explanation-agnostic baseline.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Segmenter


def interpolation_error(values: np.ndarray, start: int, stop: int) -> float:
    """Sum of squared residuals of the chord from ``start`` to ``stop``.

    The segment is approximated by the straight line connecting its two
    endpoint values (linear interpolation, the standard choice in the
    bottom-up literature).
    """
    length = stop - start
    if length <= 1:
        return 0.0
    x = np.arange(length + 1, dtype=np.float64)
    chord = values[start] + (values[stop] - values[start]) * x / length
    residual = values[start : stop + 1] - chord
    return float(np.dot(residual, residual))


class BottomUpSegmenter(Segmenter):
    """Merge-based piecewise linear approximation with a segment budget."""

    name = "Bottom-Up"

    def segment(self, values: np.ndarray, k: int) -> tuple[int, ...]:
        values = self._validate(values, k)
        n = values.shape[0]
        boundaries = list(range(n))  # finest segmentation: unit segments
        if k >= n - 1:
            return tuple(boundaries)

        merge_costs = [
            interpolation_error(values, boundaries[i], boundaries[i + 2])
            - interpolation_error(values, boundaries[i], boundaries[i + 1])
            - interpolation_error(values, boundaries[i + 1], boundaries[i + 2])
            for i in range(len(boundaries) - 2)
        ]
        while len(boundaries) - 1 > k:
            best = int(np.argmin(merge_costs))
            # Remove the boundary between segment `best` and `best + 1`.
            del boundaries[best + 1]
            del merge_costs[best]
            for neighbour in (best - 1, best):
                if 0 <= neighbour < len(boundaries) - 2:
                    merge_costs[neighbour] = (
                        interpolation_error(
                            values, boundaries[neighbour], boundaries[neighbour + 2]
                        )
                        - interpolation_error(
                            values, boundaries[neighbour], boundaries[neighbour + 1]
                        )
                        - interpolation_error(
                            values, boundaries[neighbour + 1], boundaries[neighbour + 2]
                        )
                    )
        return tuple(boundaries)
