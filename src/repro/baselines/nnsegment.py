"""NNSegment — nearest-neighbour change-point segmentation (LimeSegment).

LimeSegment's NNSegment [Sivill & Flach, AISTATS 2022] scores each
candidate change point by how poorly the windows on its two sides match as
nearest neighbours.  Our implementation follows that idea directly: the
novelty score of position ``i`` is the z-normalized Euclidean distance
between the window ending at ``i`` and the window starting at ``i``; high
local maxima of the (smoothed) novelty curve are change points, extracted
greedily with an exclusion zone like FLUSS.  This is a faithful
substitution, not a port — the authors' original code is unavailable
offline (see ``docs/ARCHITECTURE.md`` for where baselines sit in the
system).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Segmenter
from repro.core.smoothing import moving_average


def _znormalize(window: np.ndarray) -> np.ndarray:
    std = float(window.std())
    if std < 1e-12:
        return np.zeros_like(window)
    return (window - window.mean()) / std


def novelty_curve(values: np.ndarray, window: int) -> np.ndarray:
    """Contrast between the left and right windows at every position.

    Positions closer than ``window`` to either edge get score 0 (they can
    never be selected as change points).
    """
    n = values.shape[0]
    scores = np.zeros(n, dtype=np.float64)
    for i in range(window, n - window):
        left = _znormalize(values[i - window : i])
        right = _znormalize(values[i : i + window])
        scores[i] = float(np.linalg.norm(left - right))
    return scores


class NNSegmenter(Segmenter):
    """Greedy extraction of the strongest nearest-neighbour change points.

    Parameters
    ----------
    window:
        Comparison window length; ``None`` picks ``max(3, n // 15)``
        (we sweep this parameter in benchmarks like the paper does and the
        default is the best overall setting we found).
    smoothing:
        Moving-average window applied to the novelty curve before peak
        extraction.
    """

    name = "NNSegment"

    def __init__(self, window: int | None = None, smoothing: int = 3):
        self._window = window
        self._smoothing = smoothing

    def segment(self, values: np.ndarray, k: int) -> tuple[int, ...]:
        values = self._validate(values, k)
        n = values.shape[0]
        if k == 1:
            return (0, n - 1)
        window = self._window or max(3, n // 15)
        window = min(window, max(2, (n - 1) // 2))
        scores = novelty_curve(values, window)
        if self._smoothing > 1:
            scores = moving_average(scores, self._smoothing)
        working = scores.copy()
        exclusion = max(1, window // 2)
        cuts: list[int] = []
        for _ in range(k - 1):
            position = int(np.argmax(working))
            if working[position] <= 0.0:
                break
            cuts.append(position)
            lo = max(0, position - exclusion)
            hi = min(n, position + exclusion + 1)
            working[lo:hi] = -np.inf
        boundaries = list(self._finalize(cuts, n))
        # Guarantee exactly k segments for the comparison protocol.
        while len(boundaries) - 1 < k:
            lengths = np.diff(boundaries)
            widest = int(np.argmax(lengths))
            if lengths[widest] < 2:
                break
            boundaries.insert(widest + 1, boundaries[widest] + int(lengths[widest]) // 2)
        return tuple(boundaries)
