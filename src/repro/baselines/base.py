"""Common interface of the explanation-agnostic segmentation baselines.

The paper compares TSExplain against Bottom-Up [Keogh et al.], FLUSS
[Gharghabi et al.] and NNSegment [LimeSegment] (section 7.2).  All three
"partition time series solely based on the visual shapes and require the
segment number as input"; to make them comparable end to end, the paper
attaches the cascading-analysts explanation module to each baseline's
segments afterwards — :func:`attach_explanations` implements that step.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.core.result import SegmentExplanation
from repro.diff.scorer import ScoredExplanation, SegmentScorer
from repro.exceptions import SegmentationError
from repro.segmentation.variance import TopMSolver


class Segmenter(abc.ABC):
    """A visual-shape segmentation algorithm."""

    #: registry/reporting name
    name: str = ""

    @abc.abstractmethod
    def segment(self, values: np.ndarray, k: int) -> tuple[int, ...]:
        """Split a series into ``k`` segments.

        Returns the boundary positions including both endpoints
        (``k + 1`` entries, strictly increasing).
        """

    def _validate(self, values: np.ndarray, k: int) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise SegmentationError(f"expected 1-D series, got shape {values.shape}")
        if not 1 <= k <= values.shape[0] - 1:
            raise SegmentationError(
                f"cannot split a series of {values.shape[0]} points into {k} segments"
            )
        return values

    @staticmethod
    def _finalize(cuts: Sequence[int], n: int) -> tuple[int, ...]:
        """Normalize interior cuts into a sorted boundary tuple."""
        interior = sorted(set(int(c) for c in cuts if 0 < int(c) < n - 1))
        return (0, *interior, n - 1)

    def __repr__(self) -> str:
        return f"<segmenter {self.name}>"


def attach_explanations(
    scorer: SegmentScorer,
    solver: TopMSolver,
    boundaries: Sequence[int],
) -> list[SegmentExplanation]:
    """Top-m explanations for each segment of a boundary list.

    This is the "+ explanation module" step the paper adds to every
    baseline for the end-to-end comparison (section 7.5.2).
    """
    cube = scorer.cube
    series = cube.overall_series()
    segments: list[SegmentExplanation] = []
    boundaries = [int(b) for b in boundaries]
    for start, stop in zip(boundaries, boundaries[1:]):
        gammas, taus = scorer.gamma_tau(start, stop)
        result = solver.solve_batch(gammas[None, :])[0]
        segments.append(
            SegmentExplanation(
                start=start,
                stop=stop,
                start_label=series.label_at(start),
                stop_label=series.label_at(stop),
                explanations=tuple(
                    ScoredExplanation(
                        explanation=cube.explanations[index],
                        gamma=float(gammas[index]),
                        tau=int(taus[index]),
                    )
                    for index in result.indices
                ),
                variance=float("nan"),
            )
        )
    return segments
