"""FLUSS semantic segmentation [Gharghabi et al., ICDM 2017].

Fast Low-cost Unipotent Semantic Segmentation works on top of the matrix
profile index: draw an "arc" from every subsequence to its nearest
neighbour, count how many arcs cross above each position (the arc curve),
and normalize by the idealized count of a structureless series (a parabola
``2 x (n - x) / n``).  Dips of the corrected arc curve (CAC) are regime
boundaries: few arcs cross a semantic change.  Regimes are extracted
iteratively, suppressing an exclusion zone around each extracted dip.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Segmenter
from repro.baselines.matrix_profile import compute_matrix_profile
from repro.exceptions import SegmentationError

#: Multiple of the window length suppressed around each extracted regime
#: (and at the series edges), following the FLUSS reference implementation.
EXCLUSION_FACTOR = 5


def corrected_arc_curve(indices: np.ndarray, window: int) -> np.ndarray:
    """The corrected arc curve (CAC) from matrix-profile indices."""
    n = indices.shape[0]
    if n < 3:
        raise SegmentationError("arc curve needs at least 3 subsequences")
    arcs = np.zeros(n, dtype=np.float64)
    left = np.minimum(np.arange(n), indices)
    right = np.maximum(np.arange(n), indices)
    # +1 at each arc start, -1 at each arc end; cumulative sum counts the
    # arcs crossing above every position.
    np.add.at(arcs, left, 1.0)
    np.add.at(arcs, right, -1.0)
    crossing = np.cumsum(arcs)
    positions = np.arange(n, dtype=np.float64)
    idealized = 2.0 * positions * (n - positions) / n
    idealized = np.maximum(idealized, 1e-12)
    cac = np.minimum(crossing / idealized, 1.0)
    # Edge effects: the ends of the CAC are unreliable by construction.
    edge = min(EXCLUSION_FACTOR * window, max(n // 4, 1))
    cac[:edge] = 1.0
    cac[n - edge :] = 1.0
    return cac


class FlussSegmenter(Segmenter):
    """FLUSS regime extraction with a fixed number of segments.

    Parameters
    ----------
    window:
        Subsequence length for the matrix profile; ``None`` picks
        ``max(3, n // 20)`` which worked best across the paper-style
        datasets in our sweeps (the paper likewise reports tuning this
        parameter per dataset and taking the best).
    """

    name = "FLUSS"

    def __init__(self, window: int | None = None):
        self._window = window

    def segment(self, values: np.ndarray, k: int) -> tuple[int, ...]:
        values = self._validate(values, k)
        n = values.shape[0]
        if k == 1:
            return (0, n - 1)
        window = self._window or max(3, n // 20)
        window = min(window, max(2, n // 3))
        mp = compute_matrix_profile(values, window)
        cac = corrected_arc_curve(mp.indices, window)

        cuts: list[int] = []
        working = cac.copy()
        exclusion = max(1, EXCLUSION_FACTOR * window // 2)
        for _ in range(k - 1):
            position = int(np.argmin(working))
            if not np.isfinite(working[position]) or working[position] >= 1.0:
                break  # no informative dip left
            cuts.append(position)
            lo = max(0, position - exclusion)
            hi = min(working.shape[0], position + exclusion + 1)
            working[lo:hi] = np.inf
        boundaries = self._finalize(cuts, n)
        return _pad_boundaries(boundaries, values.shape[0], k)


def _pad_boundaries(boundaries: tuple[int, ...], n: int, k: int) -> tuple[int, ...]:
    """Ensure exactly ``k`` segments by splitting the longest ones evenly.

    FLUSS can run out of informative dips (all-flat CAC); the paper's
    comparison still needs K segments, so remaining cuts split the longest
    segments at their midpoints.
    """
    boundaries = list(boundaries)
    while len(boundaries) - 1 < k:
        lengths = np.diff(boundaries)
        widest = int(np.argmax(lengths))
        if lengths[widest] < 2:
            break
        midpoint = boundaries[widest] + int(lengths[widest]) // 2
        boundaries.insert(widest + 1, midpoint)
    return tuple(boundaries)
