"""Shared dataset container used by examples and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.relation.groupby import aggregate_over_time
from repro.relation.table import Relation
from repro.relation.timeseries import TimeSeries


@dataclass(frozen=True)
class Dataset:
    """A ready-to-explain dataset.

    Attributes
    ----------
    name:
        Short identifier (used by the registry and benchmark output).
    relation:
        The base relation ``R``.
    measure:
        Measure attribute of the aggregated query.
    explain_by:
        The explain-by attributes the paper uses for this dataset.
    aggregate:
        Aggregate function of the query.
    description:
        The paper's query, in SQL-ish form.
    smoothing_window:
        Moving-average window the paper applies before explaining
        ("for very fuzzy datasets"), or ``None``.
    """

    name: str
    relation: Relation
    measure: str
    explain_by: tuple[str, ...]
    aggregate: str = "sum"
    description: str = ""
    smoothing_window: int | None = None
    extras: dict = field(default_factory=dict, repr=False)

    def series(self) -> TimeSeries:
        """The aggregated time series of the dataset's query."""
        return aggregate_over_time(self.relation, self.measure, self.aggregate)

    @property
    def n_times(self) -> int:
        return len(self.series())


def weekday_labels(start: tuple[int, int, int], stop: tuple[int, int, int], holidays: Sequence[tuple[int, int, int]] = ()) -> list[str]:
    """ISO date labels of business days in ``[start, stop]`` (inclusive).

    Weekends and the given holidays are skipped — the trading/sales
    calendars of the S&P 500 and Liquor simulations.
    """
    import datetime as _dt

    holiday_set = {_dt.date(*h) for h in holidays}
    day = _dt.date(*start)
    last = _dt.date(*stop)
    labels = []
    while day <= last:
        if day.weekday() < 5 and day not in holiday_set:
            labels.append(day.isoformat())
        day += _dt.timedelta(days=1)
    return labels


def daily_labels(start: tuple[int, int, int], stop: tuple[int, int, int]) -> list[str]:
    """ISO date labels of every calendar day in ``[start, stop]``."""
    import datetime as _dt

    day = _dt.date(*start)
    last = _dt.date(*stop)
    labels = []
    while day <= last:
        labels.append(day.isoformat())
        day += _dt.timedelta(days=1)
    return labels
