"""Named dataset registry used by benchmarks, the CLI and the serving tier.

Besides the bundled simulations, any :mod:`repro.store` source URI
(``csv:…`` / ``npz:…`` / ``sqlite:…``, or a bare path with a recognized
extension) resolves to a dataset, so every entry point that accepts a
dataset name accepts a storage location too.
"""

from __future__ import annotations

from typing import Callable

from repro.datasets.base import Dataset
from repro.datasets.covid import load_covid_daily, load_covid_total
from repro.datasets.covid_deaths import load_covid_deaths
from repro.datasets.liquor import load_liquor
from repro.datasets.sp500 import load_sp500
from repro.exceptions import QueryError

_LOADERS: dict[str, Callable[..., Dataset]] = {
    "covid-total": load_covid_total,
    "covid-daily": load_covid_daily,
    "sp500": load_sp500,
    "liquor": load_liquor,
    "covid-deaths": load_covid_deaths,
}


def load_dataset(name: str, **kwargs) -> Dataset:
    """Load a named dataset or a data-source URI.

    Bundled names: ``covid-total``, ``covid-daily``, ``sp500``,
    ``liquor``, ``covid-deaths``.  Anything that parses as a source URI
    (``csv:path?time=…``, ``npz:path``, ``sqlite:path?table=…``)
    materializes through :mod:`repro.store` instead; ``kwargs`` then pass
    through to :func:`repro.store.dataset_from_source` (``measure=``,
    ``explain_by=``, ``aggregate=``).
    """
    # Imported lazily: pure bundled-dataset users never pay the storage
    # layer's import, and repro.store must stay importable without the
    # dataset simulations.
    from repro.store import dataset_from_source, is_source_uri, resolve_source

    if is_source_uri(name):
        return dataset_from_source(resolve_source(name), **kwargs)
    try:
        loader = _LOADERS[name]
    except KeyError:
        raise QueryError(
            f"unknown dataset {name!r}; available: {sorted(_LOADERS)} "
            "(or a csv:/npz:/sqlite: source URI)"
        ) from None
    return loader(**kwargs)


def available_datasets() -> tuple[str, ...]:
    """Names of all registered (bundled) datasets."""
    return tuple(sorted(_LOADERS))
