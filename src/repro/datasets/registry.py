"""Named dataset registry used by benchmarks and examples."""

from __future__ import annotations

from typing import Callable

from repro.datasets.base import Dataset
from repro.datasets.covid import load_covid_daily, load_covid_total
from repro.datasets.covid_deaths import load_covid_deaths
from repro.datasets.liquor import load_liquor
from repro.datasets.sp500 import load_sp500
from repro.exceptions import QueryError

_LOADERS: dict[str, Callable[..., Dataset]] = {
    "covid-total": load_covid_total,
    "covid-daily": load_covid_daily,
    "sp500": load_sp500,
    "liquor": load_liquor,
    "covid-deaths": load_covid_deaths,
}


def load_dataset(name: str, **kwargs) -> Dataset:
    """Load a named dataset (``covid-total``, ``covid-daily``, ``sp500``,
    ``liquor``, ``covid-deaths``)."""
    try:
        loader = _LOADERS[name]
    except KeyError:
        raise QueryError(
            f"unknown dataset {name!r}; available: {sorted(_LOADERS)}"
        ) from None
    return loader(**kwargs)


def available_datasets() -> tuple[str, ...]:
    """Names of all registered datasets."""
    return tuple(sorted(_LOADERS))
