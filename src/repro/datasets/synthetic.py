"""Synthetic datasets with ground-truth segmentation (paper section 4.2.1).

Each dataset is a relation with schema ``(T, sales, category)`` and three
categories ``a1, a2, a3``.  Every category's series is piecewise linear
with alternating up/down trends between its private cutting points; the
aggregated series is their sum, and the ground-truth segmentation of the
aggregate is the *union* of the categories' cutting points (every cut is
necessary because adjacent trends differ in direction).

Gaussian noise is added to each category's series at a target
signal-to-noise ratio in dB: ``sigma^2 = P_signal / 10^(SNR/10)`` with
``P_signal`` the mean squared signal.  The paper's suite uses 20 datasets
x 7 SNR levels (20, 25, ..., 50), series length 100, K between 2 and 10
and segment lengths between 6 and 84 (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import QueryError
from repro.relation.schema import Schema
from repro.relation.table import Relation

#: SNR levels of the paper's suite (section 4.2.1).
SNR_LEVELS = (20, 25, 30, 35, 40, 45, 50)

#: Number of random datasets per SNR level in the paper's suite.
SUITE_SIZE = 20

#: Minimum ground-truth segment length (Figure 4 shows lengths >= 6).
MIN_SEGMENT_LENGTH = 6


@dataclass(frozen=True)
class SyntheticDataset:
    """A generated dataset with its ground truth.

    Attributes
    ----------
    dataset:
        The relation packaged with its query metadata.
    boundaries:
        Ground-truth segmentation boundaries (positions, endpoints
        included).
    category_series:
        Noisy per-category series, keyed by category value (the dashed
        lines of Figure 5).
    clean_category_series:
        The same series before noise.
    snr_db:
        The applied noise level.
    seed:
        RNG seed used.
    """

    dataset: Dataset
    boundaries: tuple[int, ...]
    category_series: dict[str, np.ndarray]
    clean_category_series: dict[str, np.ndarray]
    snr_db: float
    seed: int

    @property
    def k(self) -> int:
        """Ground-truth number of segments."""
        return len(self.boundaries) - 1

    @property
    def cuts(self) -> tuple[int, ...]:
        """Ground-truth interior cutting positions."""
        return self.boundaries[1:-1]


def _sample_union_cuts(rng: np.random.Generator, n_points: int) -> list[int]:
    """Interior cuts with pairwise gaps >= MIN_SEGMENT_LENGTH, K in [2, 10]."""
    for _ in range(1000):
        k = int(rng.integers(2, 11))
        n_cuts = k - 1
        cuts = np.sort(
            rng.choice(
                np.arange(MIN_SEGMENT_LENGTH, n_points - MIN_SEGMENT_LENGTH),
                size=n_cuts,
                replace=False,
            )
        )
        gaps = np.diff(np.concatenate([[0], cuts, [n_points - 1]]))
        if gaps.min() >= MIN_SEGMENT_LENGTH:
            return [int(c) for c in cuts]
    raise QueryError("failed to sample ground-truth cuts")  # pragma: no cover


def _piecewise_trend(
    rng: np.random.Generator, n_points: int, cuts: list[int]
) -> np.ndarray:
    """A piecewise-linear series with alternating up/down trends at ``cuts``."""
    boundaries = [0, *cuts, n_points - 1]
    values = np.empty(n_points, dtype=np.float64)
    level = float(rng.uniform(100.0, 400.0))
    direction = 1.0 if rng.random() < 0.5 else -1.0
    values[0] = level
    for left, right in zip(boundaries, boundaries[1:]):
        length = right - left
        slope = direction * float(rng.uniform(3.0, 12.0))
        for offset in range(1, length + 1):
            values[left + offset] = values[left] + slope * offset
        direction = -direction
    # Keep counts positive: shift up if a downward run went below zero.
    minimum = values.min()
    if minimum < 10.0:
        values += 10.0 - minimum
    return values


def generate_synthetic(
    seed: int, snr_db: float, n_points: int = 100, n_categories: int = 3
) -> SyntheticDataset:
    """One synthetic dataset with ground truth (deterministic in ``seed``)."""
    if n_points < 4 * MIN_SEGMENT_LENGTH:
        raise QueryError(f"n_points too small: {n_points}")
    if n_categories < 1:
        raise QueryError(f"need at least one category, got {n_categories}")
    rng = np.random.default_rng(seed)
    union_cuts = _sample_union_cuts(rng, n_points)
    # Partition the union cuts among categories (every cut belongs to
    # exactly one category, so each stays necessary).
    assignment = rng.integers(0, n_categories, size=len(union_cuts))
    categories = [f"a{i + 1}" for i in range(n_categories)]

    clean: dict[str, np.ndarray] = {}
    noisy: dict[str, np.ndarray] = {}
    for index, category in enumerate(categories):
        own_cuts = [cut for cut, owner in zip(union_cuts, assignment) if owner == index]
        signal = _piecewise_trend(rng, n_points, own_cuts)
        power = float(np.mean(signal * signal))
        sigma = float(np.sqrt(power / (10.0 ** (snr_db / 10.0))))
        clean[category] = signal
        noisy[category] = signal + rng.normal(0.0, sigma, size=n_points)

    labels = [f"t{t:04d}" for t in range(n_points)]
    columns = {
        "T": np.asarray(
            [label for label in labels for _ in categories], dtype=object
        ),
        "category": np.asarray(
            [category for _ in labels for category in categories], dtype=object
        ),
        "sales": np.asarray(
            [noisy[category][t] for t in range(n_points) for category in categories],
            dtype=np.float64,
        ),
    }
    schema = Schema.build(dimensions=["category"], measures=["sales"], time="T")
    relation = Relation(columns, schema)
    dataset = Dataset(
        name=f"synthetic-seed{seed}-snr{snr_db:g}",
        relation=relation,
        measure="sales",
        explain_by=("category",),
        aggregate="sum",
        description="SELECT T, count(sales) FROM R GROUP BY T",
    )
    return SyntheticDataset(
        dataset=dataset,
        boundaries=(0, *union_cuts, n_points - 1),
        category_series=noisy,
        clean_category_series=clean,
        snr_db=float(snr_db),
        seed=seed,
    )


def synthetic_suite(
    n_datasets: int = SUITE_SIZE,
    snr_levels: tuple[float, ...] = SNR_LEVELS,
    n_points: int = 100,
    base_seed: int = 20230101,
) -> list[SyntheticDataset]:
    """The paper's synthetic suite: ``n_datasets`` shapes x each SNR level.

    The ``i``-th shape (cuts, trends) is identical across SNR levels — only
    the noise realization differs — mirroring "we synthesize 20 datasets
    with 7 different levels of SNR" (140 datasets total).
    """
    suite = []
    for index in range(n_datasets):
        for snr in snr_levels:
            suite.append(
                generate_synthetic(base_seed + index, snr, n_points=n_points)
            )
    return suite
