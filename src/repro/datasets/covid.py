"""Simulated COVID-19 confirmed-cases dataset (paper section 7.1.2).

The paper uses the Johns Hopkins repository: daily and cumulative
confirmed cases for 58 US states/territories over 2020-01-22..2020-12-31
(n = 345 days).  That data is not available offline, so this module
generates a deterministic simulation with the same schema, the same
cardinalities, and the qualitative wave structure the paper's case study
reports (section 7.4.1):

* WA seeds the very first cases, NY/NJ/MA/CT drive the spring wave
  (piecewise top explanations switch from WA/NY/CA to NY/NJ/MA around
  mid-March),
* IL and CA rise in late spring (the 5/4–5/29 segment),
* FL/TX/CA dominate the summer wave,
* IL/TX/WI lead the fall wave,
* CA (with TX/FL and a NY resurgence) dominates the winter wave.

Each state's daily series is a mixture of Gaussian-shaped waves plus
multiplicative noise; cumulative cases are the running sums.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, daily_labels
from repro.relation.schema import Schema
from repro.relation.table import Relation

#: 50 states + DC + PR + 6 further territories/repatriated groups = 58,
#: matching the JHU state-level feed the paper uses.
STATES = (
    "Alabama", "Alaska", "Arizona", "Arkansas", "California", "Colorado",
    "Connecticut", "Delaware", "Florida", "Georgia", "Hawaii", "Idaho",
    "Illinois", "Indiana", "Iowa", "Kansas", "Kentucky", "Louisiana",
    "Maine", "Maryland", "Massachusetts", "Michigan", "Minnesota",
    "Mississippi", "Missouri", "Montana", "Nebraska", "Nevada",
    "New Hampshire", "New Jersey", "New Mexico", "New York",
    "North Carolina", "North Dakota", "Ohio", "Oklahoma", "Oregon",
    "Pennsylvania", "Rhode Island", "South Carolina", "South Dakota",
    "Tennessee", "Texas", "Utah", "Vermont", "Virginia", "Washington",
    "West Virginia", "Wisconsin", "Wyoming", "District of Columbia",
    "Puerto Rico", "Guam", "Virgin Islands", "Northern Mariana Islands",
    "American Samoa", "Diamond Princess", "Grand Princess",
)

#: (state, peak day index, width in days, peak daily cases) wave script.
#: Day 0 = 2020-01-22; the spring peak ~day 75 is early April, the summer
#: peak ~day 170 mid July, the fall/winter peaks ~day 290-340.
_WAVES: dict[str, tuple[tuple[int, int, float], ...]] = {
    "Washington": ((40, 18, 350.0), (170, 35, 700.0), (320, 30, 2200.0)),
    "New York": ((72, 16, 10000.0), (330, 28, 9500.0)),
    "New Jersey": ((75, 16, 3800.0), (330, 28, 4200.0)),
    "Massachusetts": ((78, 17, 2600.0), (332, 28, 3600.0)),
    "Connecticut": ((77, 16, 1300.0), (330, 28, 1900.0)),
    "Pennsylvania": ((80, 18, 1700.0), (325, 30, 6000.0)),
    "Michigan": ((76, 15, 1600.0), (305, 25, 5500.0)),
    "Illinois": ((118, 26, 2600.0), (295, 24, 10500.0)),
    "California": ((125, 40, 2900.0), (185, 30, 8800.0), (340, 22, 35000.0)),
    "Texas": ((172, 26, 9200.0), (300, 40, 13000.0)),
    "Florida": ((175, 24, 10800.0), (335, 35, 9500.0)),
    "Arizona": ((170, 22, 3400.0), (335, 30, 5200.0)),
    "Georgia": ((178, 28, 3400.0), (330, 32, 5200.0)),
    "Wisconsin": ((285, 24, 5800.0), (330, 30, 2800.0)),
    "Minnesota": ((300, 22, 5400.0),),
    "North Dakota": ((295, 20, 1400.0),),
    "South Dakota": ((295, 22, 1300.0),),
    "Indiana": ((305, 26, 5300.0),),
    "Ohio": ((315, 26, 7800.0),),
    "Tennessee": ((330, 26, 6200.0),),
    "Louisiana": ((80, 14, 1300.0), (175, 25, 2400.0), (330, 30, 2300.0)),
}

#: Generic wave script for states without a bespoke entry: a modest summer
#: wave and a larger winter wave, scaled by a per-state size factor.
_GENERIC_WAVES = ((175, 30, 1.0), (320, 32, 2.6))


def _wave(days: np.ndarray, peak: int, width: int, height: float) -> np.ndarray:
    return height * np.exp(-0.5 * ((days - peak) / width) ** 2)


def load_covid(seed: int = 7, noise: float = 0.08) -> Dataset:
    """The simulated Covid dataset (both daily and cumulative measures).

    Parameters
    ----------
    seed:
        RNG seed for per-state size factors and day-to-day noise.
    noise:
        Multiplicative daily noise level (lognormal sigma); 0 disables.

    Returns
    -------
    Dataset
        Schema ``(date, state, daily_confirmed_cases,
        total_confirmed_cases)``; the default measure is the cumulative
        one.  Use ``dataset.extras["daily_measure"]`` for the daily query.
    """
    rng = np.random.default_rng(seed)
    labels = daily_labels((2020, 1, 22), (2020, 12, 31))
    n_days = len(labels)
    days = np.arange(n_days, dtype=np.float64)

    date_column: list[str] = []
    state_column: list[str] = []
    daily_column: list[float] = []
    total_column: list[float] = []
    for state in STATES:
        if state in _WAVES:
            waves = _WAVES[state]
        else:
            size = float(rng.uniform(150.0, 1400.0))
            waves = tuple(
                (peak + int(rng.integers(-12, 13)), width, size * scale)
                for peak, width, scale in _GENERIC_WAVES
            )
        daily = np.zeros(n_days)
        for peak, width, height in waves:
            daily += _wave(days, peak, width, height)
        if noise > 0:
            daily *= rng.lognormal(0.0, noise, size=n_days)
        daily = np.round(daily)
        total = np.cumsum(daily)
        date_column.extend(labels)
        state_column.extend([state] * n_days)
        daily_column.extend(daily.tolist())
        total_column.extend(total.tolist())

    schema = Schema.build(
        dimensions=["state"],
        measures=["daily_confirmed_cases", "total_confirmed_cases"],
        time="date",
    )
    relation = Relation(
        {
            "date": np.asarray(date_column, dtype=object),
            "state": np.asarray(state_column, dtype=object),
            "daily_confirmed_cases": np.asarray(daily_column, dtype=np.float64),
            "total_confirmed_cases": np.asarray(total_column, dtype=np.float64),
        },
        schema,
    )
    return Dataset(
        name="covid",
        relation=relation,
        measure="total_confirmed_cases",
        explain_by=("state",),
        aggregate="sum",
        description=(
            "SELECT date, SUM(total_confirmed_cases) FROM Covid GROUP BY date"
        ),
        extras={"daily_measure": "daily_confirmed_cases", "states": STATES},
    )


def load_covid_total(seed: int = 7) -> Dataset:
    """The ``total-confirmed-cases`` query (Figure 11)."""
    return load_covid(seed)


def load_covid_daily(seed: int = 7) -> Dataset:
    """The ``daily-confirmed-cases`` query (Figure 12 / Table 3)."""
    base = load_covid(seed)
    return Dataset(
        name="covid-daily",
        relation=base.relation,
        measure="daily_confirmed_cases",
        explain_by=("state",),
        aggregate="sum",
        description=(
            "SELECT date, SUM(daily_confirmed_cases) FROM Covid GROUP BY date"
        ),
        smoothing_window=7,
        extras=base.extras,
    )
