"""Simulated CDC Covid-deaths dataset with a time-varying attribute (§8).

The paper's Figure 18 explains weekly total deaths over weeks 14–52 of
2021 by ``age-group`` (static) and ``vaccinated`` (time-varying: a person
can move from NO to YES).  The reported result: before ~week 31 the top
contributor is ``vaccinated=NO``; afterwards it shifts to
``age-group=50+``.

Simulation design.  For the cascading-analysts selection to switch drill
dimension between the two periods, the two partitions must explain
*different* amounts of change (with a complete partition of an additive
measure, every drill explains exactly the overall change):

* weeks 14–31 (vaccine roll-out): unvaccinated deaths fall steeply in all
  age groups while vaccinated deaths *rise* slowly (an ever larger share
  of the population is vaccinated).  Signs disagree across ``vaccinated``
  but agree across ``age-group``, so the ``vaccinated`` drill explains
  more and ``vaccinated=NO`` (-) tops the list.
* weeks 31–52 (Delta wave): deaths of the 50+ group surge in both
  vaccination statuses while the younger groups keep declining (they are
  broadly vaccinated by then).  Now signs disagree across ``age-group``
  and ``age-group=50+`` (+) tops the list.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.relation.schema import Schema
from repro.relation.table import Relation

AGE_GROUPS = ("18-29", "30-49", "50+")
VACCINATED = ("NO", "YES")

FIRST_WEEK = 14
LAST_WEEK = 52

#: Baseline weekly deaths at week 14 for the declining unvaccinated series.
_UNVAX_BASE = {"18-29": 750.0, "30-49": 1900.0, "50+": 2900.0}

#: Starting level and weekly rise of the vaccinated series (roll-out).
_VAX_BASE = {"18-29": 25.0, "30-49": 70.0, "50+": 320.0}
_VAX_RAMP = {"18-29": 2.0, "30-49": 6.0, "50+": 22.0}

#: Delta-wave peak amplitude (weeks ~36-40), concentrated in 50+.
_WAVE_AMPLITUDE = {
    ("18-29", "NO"): 120.0,
    ("30-49", "NO"): 420.0,
    ("50+", "NO"): 5200.0,
    ("18-29", "YES"): 25.0,
    ("30-49", "YES"): 110.0,
    ("50+", "YES"): 2600.0,
}


def load_covid_deaths(seed: int = 3, noise: float = 0.03) -> Dataset:
    """Weekly deaths by ``(age_group, vaccinated)`` for weeks 14–52, 2021."""
    rng = np.random.default_rng(seed)
    weeks = np.arange(FIRST_WEEK, LAST_WEEK + 1)
    t = weeks.astype(np.float64)

    decay = np.exp(-(t - FIRST_WEEK) / 9.0)  # roll-out decline
    # Vaccinated baseline rises while roll-out lasts, saturating ~week 34.
    ramp = np.minimum(t - FIRST_WEEK, 20.0)
    wave = np.exp(-0.5 * ((t - 39.0) / 4.0) ** 2) + 0.55 * np.exp(
        -0.5 * ((t - 51.0) / 4.0) ** 2
    )

    week_column: list[str] = []
    age_column: list[str] = []
    vax_column: list[str] = []
    deaths_column: list[float] = []
    for age in AGE_GROUPS:
        for status in VACCINATED:
            if status == "NO":
                series = _UNVAX_BASE[age] * decay
            else:
                series = _VAX_BASE[age] + _VAX_RAMP[age] * ramp
            series = series + _WAVE_AMPLITUDE[(age, status)] * wave
            if noise > 0:
                series = series * rng.lognormal(0.0, noise, size=t.shape[0])
            series = np.round(np.maximum(series, 0.0))
            for index, week in enumerate(weeks):
                week_column.append(f"2021-W{week:02d}")
                age_column.append(age)
                vax_column.append(status)
                deaths_column.append(float(series[index]))

    schema = Schema.build(
        dimensions=["age_group", "vaccinated"],
        measures=["deaths"],
        time="week",
    )
    relation = Relation(
        {
            "week": np.asarray(week_column, dtype=object),
            "age_group": np.asarray(age_column, dtype=object),
            "vaccinated": np.asarray(vax_column, dtype=object),
            "deaths": np.asarray(deaths_column, dtype=np.float64),
        },
        schema,
    )
    return Dataset(
        name="covid-deaths",
        relation=relation,
        measure="deaths",
        explain_by=("age_group", "vaccinated"),
        aggregate="sum",
        description="SELECT week, SUM(deaths) FROM CovidDeaths GROUP BY week",
    )
