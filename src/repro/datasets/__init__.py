"""Datasets: SNR-controlled synthetic suite and simulated real-world data."""

from repro.datasets.base import Dataset, daily_labels, weekday_labels
from repro.datasets.covid import STATES, load_covid, load_covid_daily, load_covid_total
from repro.datasets.covid_deaths import load_covid_deaths
from repro.datasets.liquor import load_liquor
from repro.datasets.registry import available_datasets, load_dataset
from repro.datasets.sp500 import load_sp500
from repro.datasets.synthetic import (
    SNR_LEVELS,
    SUITE_SIZE,
    SyntheticDataset,
    generate_synthetic,
    synthetic_suite,
)

__all__ = [
    "Dataset",
    "SNR_LEVELS",
    "STATES",
    "SUITE_SIZE",
    "SyntheticDataset",
    "available_datasets",
    "daily_labels",
    "generate_synthetic",
    "load_covid",
    "load_covid_daily",
    "load_covid_deaths",
    "load_covid_total",
    "load_dataset",
    "load_liquor",
    "load_sp500",
    "synthetic_suite",
    "weekday_labels",
]
