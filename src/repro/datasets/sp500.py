"""Simulated S&P 500 dataset (paper section 7.1.2).

The paper tracks 503 component stocks from 2020-01-02 to 2020-10-01 with
hierarchical explain-by attributes ``category`` (11 GICS-style sectors),
``subcategory`` and ``stock``; the index is ``SUM(price * share) /
divisor``.  Offline substitution: a deterministic factor model whose
sector exposures reproduce the case-study story (section 7.4.2, Table 4):

* rise into early February led by *technology* and the *internet retail*
  subcategory while *energy* slips,
* crash from ~2/19 to 3/23 led by technology, financials and
  communication,
* recovery from 3/24 to late August led by technology, consumer cyclical
  and communication — financials notably do **not** bounce back,
* pullback from ~8/25 into October led by technology again.

Each stock's log price follows market + sector + subcategory factors plus
idiosyncratic noise; free-float shares are constant over time.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, weekday_labels
from repro.relation.schema import Schema
from repro.relation.table import Relation

#: 11 GICS-style sectors with (number of subcategories, share-size scale).
CATEGORIES: dict[str, tuple[int, float]] = {
    "technology": (12, 3.2),
    "financial": (10, 1.7),
    "communication": (8, 2.2),
    "healthcare": (10, 1.6),
    "consumer cyclical": (10, 1.5),
    "consumer defensive": (8, 1.2),
    "industrials": (10, 1.1),
    "energy": (6, 0.9),
    "utilities": (7, 0.7),
    "real estate": (7, 0.6),
    "basic materials": (8, 0.8),
}

#: 2020 NYSE holidays inside the window.
_HOLIDAYS = ((2020, 1, 20), (2020, 2, 17), (2020, 4, 10), (2020, 5, 25), (2020, 7, 3), (2020, 9, 7))

#: Regime windows as ISO-date boundaries of the four phases in Table 4.
PHASE_DATES = ("2020-01-02", "2020-02-06", "2020-03-24", "2020-08-25", "2020-10-01")

#: Per-phase daily log-return drift by sector (market drift added on top).
_SECTOR_DRIFT: dict[str, tuple[float, float, float, float]] = {
    #                 rise     crash    recovery  pullback
    "technology": (0.0045, -0.0290, 0.0062, -0.0075),
    "financial": (0.0006, -0.0280, 0.0008, -0.0042),
    "communication": (0.0022, -0.0230, 0.0040, -0.0055),
    "healthcare": (0.0012, -0.0140, 0.0022, -0.0012),
    "consumer cyclical": (0.0010, -0.0180, 0.0050, -0.0018),
    "consumer defensive": (0.0006, -0.0110, 0.0014, -0.0006),
    "industrials": (0.0008, -0.0190, 0.0020, -0.0014),
    "energy": (-0.0045, -0.0260, 0.0006, -0.0020),
    "utilities": (0.0004, -0.0150, 0.0010, -0.0006),
    "real estate": (0.0006, -0.0190, 0.0012, -0.0010),
    "basic materials": (0.0006, -0.0160, 0.0022, -0.0010),
}

#: Subcategory overrides: (category, subcategory index) -> extra drift.
_INTERNET_RETAIL_EXTRA = (0.0075, 0.004, 0.0035, -0.002)

N_STOCKS = 503
DIVISOR = 8.34e9


def _subcategory_name(category: str, index: int) -> str:
    if category == "technology" and index == 0:
        return "internet retail"
    return f"{category.replace(' ', '-')}-{index + 1:02d}"


def load_sp500(seed: int = 11, noise: float = 0.012) -> Dataset:
    """The simulated S&P 500 dataset.

    Returns a relation with schema ``(date, category, subcategory, stock,
    cap)`` where ``cap = price * share / divisor``; the index is
    ``SELECT date, SUM(cap) FROM Sp500 GROUP BY date``.
    """
    rng = np.random.default_rng(seed)
    labels = weekday_labels((2020, 1, 2), (2020, 10, 1), _HOLIDAYS)
    n_days = len(labels)
    phase_starts = [
        next(i for i, label in enumerate(labels) if label >= boundary)
        for boundary in PHASE_DATES[:-1]
    ]
    phase_of_day = np.zeros(n_days, dtype=np.intp)
    for phase, start in enumerate(phase_starts):
        phase_of_day[start:] = phase

    # Assign stocks round-robin over categories proportional to subcounts.
    assignments: list[tuple[str, str]] = []
    weights = np.asarray([subs for subs, _ in CATEGORIES.values()], dtype=np.float64)
    shares_per_cat = np.maximum(
        np.round(weights / weights.sum() * N_STOCKS).astype(int), 1
    )
    while shares_per_cat.sum() > N_STOCKS:
        shares_per_cat[int(np.argmax(shares_per_cat))] -= 1
    while shares_per_cat.sum() < N_STOCKS:
        shares_per_cat[int(np.argmin(shares_per_cat))] += 1
    for (category, (n_subs, _)), quota in zip(CATEGORIES.items(), shares_per_cat):
        for i in range(quota):
            assignments.append((category, _subcategory_name(category, i % n_subs)))

    date_column: list[str] = []
    category_column: list[str] = []
    subcategory_column: list[str] = []
    stock_column: list[str] = []
    cap_column: list[float] = []
    market_drift = np.asarray([0.0005, 0.0, 0.0012, 0.0])[phase_of_day]
    for number, (category, subcategory) in enumerate(assignments):
        stock = f"STK{number:03d}"
        drift = np.asarray(_SECTOR_DRIFT[category])[phase_of_day] + market_drift
        if subcategory == "internet retail":
            drift = drift + np.asarray(_INTERNET_RETAIL_EXTRA)[phase_of_day]
        returns = drift + rng.normal(0.0, noise, size=n_days)
        log_price = np.cumsum(returns)
        base_price = float(rng.uniform(20.0, 400.0))
        price = base_price * np.exp(log_price - log_price[0])
        size_scale = CATEGORIES[category][1]
        share = float(rng.lognormal(np.log(3e8 * size_scale), 0.6))
        cap = price * share / DIVISOR
        date_column.extend(labels)
        category_column.extend([category] * n_days)
        subcategory_column.extend([subcategory] * n_days)
        stock_column.extend([stock] * n_days)
        cap_column.extend(cap.tolist())

    schema = Schema.build(
        dimensions=["category", "subcategory", "stock"],
        measures=["cap"],
        time="date",
    )
    relation = Relation(
        {
            "date": np.asarray(date_column, dtype=object),
            "category": np.asarray(category_column, dtype=object),
            "subcategory": np.asarray(subcategory_column, dtype=object),
            "stock": np.asarray(stock_column, dtype=object),
            "cap": np.asarray(cap_column, dtype=np.float64),
        },
        schema,
    )
    return Dataset(
        name="sp500",
        relation=relation,
        measure="cap",
        explain_by=("category", "subcategory", "stock"),
        aggregate="sum",
        description=(
            "SELECT date, SUM(price*share)/divisor AS SP500-index "
            "FROM Sp500 GROUP BY date"
        ),
        extras={"phases": PHASE_DATES},
    )
