"""Simulated Iowa liquor-sales dataset (paper section 7.1.2).

The paper's relation holds purchase transactions from 2020-01-02 to
2020-06-30 with explain-by attributes ``Bottle Volume (ml)`` (BV), ``Pack``
(P), ``Category Name`` (CN) and ``Vendor Name`` (VN); the query is
``SELECT date, SUM(Bottles Sold) FROM Liquor GROUP BY date``.

Offline substitution: a deterministic product-mix simulation reproducing
the case-study dynamics (section 7.4.3, Table 5):

* pre-pandemic lull: P=12 and P=6 decline into 1/20,
* stock-up phase 1/20–3/6: large packs (P=12/24/48) ramp up,
* bar shutdown 3/6–3/31: BV=1000 (sold mainly through independent stores
  supplying bars/restaurants) collapses while households buy
  BV=1750&P=6 and BV=750&P=12,
* 3/31–4/21: P=12 keeps climbing, BV=1750&P=6 cools off,
* reopening ramp 4/21–5/8: BV=1000&P=12 recovers first,
* recovery 5/8–6/10: BV=1000 rebounds strongly,
* early summer 6/10–6/30: P=12 and P=24 rise again.

The interesting dynamics live entirely in BV and P; CN and VN only carry
product-mix texture — matching the paper's observation that TSExplain
ignores the uninteresting attributes.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, weekday_labels
from repro.relation.schema import Schema
from repro.relation.table import Relation

BOTTLE_VOLUMES = (200, 375, 500, 750, 1000, 1750)
PACKS = (1, 6, 12, 24, 48)

#: 2020 Iowa holidays inside the window (New Year observed, Memorial Day).
_HOLIDAYS = ((2020, 1, 1), (2020, 5, 25))

#: Phase boundary dates of the Table 5 story.
PHASE_DATES = (
    "2020-01-02", "2020-01-20", "2020-03-06", "2020-03-31",
    "2020-04-21", "2020-05-08", "2020-06-10", "2020-06-30",
)


def _category_names(rng: np.random.Generator, count: int) -> list[str]:
    kinds = ("Vodka", "Whiskey", "Rum", "Tequila", "Gin", "Brandy", "Schnapps", "Liqueur")
    styles = ("American", "Imported", "Flavored", "Straight", "Spiced", "Gold", "White")
    names = []
    while len(names) < count:
        name = f"{styles[int(rng.integers(len(styles)))]} {kinds[int(rng.integers(len(kinds)))]}"
        if name not in names:
            names.append(name)
    return names


def _phase_multipliers(bv: int, pack: int) -> np.ndarray:
    """Daily-growth multipliers per phase for a product slice.

    Entry ``p`` is the multiplicative daily drift of the product's demand
    during phase ``p`` (7 phases, see PHASE_DATES).
    """
    drift = np.zeros(7)
    if pack in (12, 24, 48):
        drift[1] += 0.022 if pack == 12 else 0.015  # stock-up ramp
    if pack == 12:
        drift[0] -= 0.012
        drift[3] += 0.020
        drift[6] += 0.022
    if pack == 6:
        drift[0] -= 0.010
        drift[4] += 0.012
    if pack == 24:
        drift[3] += 0.008
        drift[6] += 0.014
    if bv == 1000:
        drift[2] -= 0.085  # bar shutdown collapse
        drift[4] += 0.020
        drift[5] += 0.055  # reopening rebound
    if bv == 1750 and pack == 6:
        drift[2] += 0.045
        drift[3] -= 0.020
        drift[5] -= 0.025
        drift[6] += 0.012
    if bv == 750 and pack == 12:
        drift[2] += 0.035
        drift[5] -= 0.018
    if bv == 1000 and pack == 12:
        drift[4] += 0.045
    if bv == 1750 and pack == 12:
        drift[4] -= 0.030
    return drift


def load_liquor(
    seed: int = 13,
    n_products: int = 450,
    n_categories: int = 28,
    n_vendors: int = 55,
    noise: float = 0.05,
) -> Dataset:
    """The simulated liquor dataset.

    Parameters
    ----------
    seed:
        RNG seed (product mix, base demands, noise).
    n_products:
        Number of distinct ``(BV, P, CN, VN)`` products; together with the
        category/vendor cardinalities this controls the candidate count
        ``epsilon`` (paper: 8197 with order <= 3).
    n_categories / n_vendors:
        Cardinalities of CN and VN.
    noise:
        Day-to-day lognormal noise on each product's sales.
    """
    rng = np.random.default_rng(seed)
    labels = weekday_labels((2020, 1, 2), (2020, 6, 30), _HOLIDAYS)
    n_days = len(labels)
    phase_starts = [
        next(i for i, label in enumerate(labels) if label >= boundary)
        for boundary in PHASE_DATES[:-1]
    ]
    phase_of_day = np.zeros(n_days, dtype=np.intp)
    for phase, start in enumerate(phase_starts):
        phase_of_day[start:] = phase

    categories = _category_names(rng, n_categories)
    vendors = [f"Vendor {i:03d}" for i in range(n_vendors)]

    products: list[tuple[int, int, str, str]] = []
    seen: set[tuple[int, int, str, str]] = set()
    while len(products) < n_products:
        product = (
            int(BOTTLE_VOLUMES[int(rng.integers(len(BOTTLE_VOLUMES)))]),
            int(PACKS[int(rng.integers(len(PACKS)))]),
            categories[int(rng.integers(len(categories)))],
            vendors[int(rng.integers(len(vendors)))],
        )
        if product not in seen:
            seen.add(product)
            products.append(product)

    date_column: list[str] = []
    bv_column: list[int] = []
    pack_column: list[int] = []
    cn_column: list[str] = []
    vn_column: list[str] = []
    sold_column: list[float] = []
    weekday_boost = np.asarray([1.0, 0.95, 1.0, 1.1, 1.35])  # Mon..Fri
    weekday_index = np.asarray(
        [__import__("datetime").date.fromisoformat(label).weekday() for label in labels]
    )
    for bv, pack, category, vendor in products:
        base = float(rng.lognormal(np.log(60.0), 0.7))
        drift = _phase_multipliers(bv, pack)[phase_of_day]
        level = base * np.exp(np.cumsum(drift))
        level *= weekday_boost[weekday_index]
        if noise > 0:
            level *= rng.lognormal(0.0, noise, size=n_days)
        sold = np.maximum(np.round(level), 0.0)
        date_column.extend(labels)
        bv_column.extend([bv] * n_days)
        pack_column.extend([pack] * n_days)
        cn_column.extend([category] * n_days)
        vn_column.extend([vendor] * n_days)
        sold_column.extend(sold.tolist())

    schema = Schema.build(
        dimensions=["bottle_volume_ml", "pack", "category_name", "vendor_name"],
        measures=["bottles_sold"],
        time="date",
    )
    relation = Relation(
        {
            "date": np.asarray(date_column, dtype=object),
            "bottle_volume_ml": np.asarray(bv_column, dtype=np.int64),
            "pack": np.asarray(pack_column, dtype=np.int64),
            "category_name": np.asarray(cn_column, dtype=object),
            "vendor_name": np.asarray(vn_column, dtype=object),
            "bottles_sold": np.asarray(sold_column, dtype=np.float64),
        },
        schema,
    )
    return Dataset(
        name="liquor",
        relation=relation,
        measure="bottles_sold",
        explain_by=("bottle_volume_ml", "pack", "category_name", "vendor_name"),
        aggregate="sum",
        description="SELECT date, SUM(Bottles_Sold) FROM Liquor GROUP BY date",
        smoothing_window=5,
        extras={"phases": PHASE_DATES},
    )
