"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.relation.schema import Schema
from repro.relation.table import Relation


def build_relation(columns: dict, dimensions, measures, time=None) -> Relation:
    """Shorthand relation constructor used across the tests."""
    schema = Schema.build(dimensions=dimensions, measures=measures, time=time)
    return Relation(columns, schema)


def regime_relation(n: int = 24, switch: int = 12) -> Relation:
    """Three categories; 'a' drives growth before ``switch``, 'b' after.

    The ground-truth explanation-aware segmentation has one cut exactly at
    ``switch`` and the top contributor changes from a to b there.
    """
    rows = {"t": [], "cat": [], "sales": []}
    for t in range(n):
        for cat in ("a", "b", "c"):
            if cat == "a":
                v = 10.0 + (4.0 * t if t < switch else 4.0 * switch)
            elif cat == "b":
                v = 10.0 + (0.0 if t < switch else 5.0 * (t - switch))
            else:
                v = 7.0
            rows["t"].append(f"t{t:03d}")
            rows["cat"].append(cat)
            rows["sales"].append(v)
    return build_relation(rows, dimensions=["cat"], measures=["sales"], time="t")


def two_attr_relation(n: int = 16) -> Relation:
    """Two explain-by attributes with a conjunction-level driver.

    ``(a=x & b=p)`` grows in the first half; ``(a=z & b=q)`` in the second.
    """
    rows = {"t": [], "a": [], "b": [], "m": []}
    half = n // 2
    for t in range(n):
        for a in ("x", "y", "z"):
            for b in ("p", "q"):
                v = 3.0
                if (a, b) == ("x", "p") and t < half:
                    v += 6.0 * t
                if (a, b) == ("x", "p") and t >= half:
                    v += 6.0 * (half - 1)
                if (a, b) == ("z", "q") and t >= half:
                    v += 7.0 * (t - half)
                rows["t"].append(f"t{t:03d}")
                rows["a"].append(a)
                rows["b"].append(b)
                rows["m"].append(v)
    return build_relation(rows, dimensions=["a", "b"], measures=["m"], time="t")


@pytest.fixture
def simple_relation() -> Relation:
    return regime_relation()


@pytest.fixture
def multi_relation() -> Relation:
    return two_attr_relation()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20230613)
