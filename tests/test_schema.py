"""Unit tests for relation schemas."""

import pytest

from repro.exceptions import SchemaError
from repro.relation.schema import Attribute, AttributeKind, Schema


def test_build_splits_kinds():
    schema = Schema.build(dimensions=["state"], measures=["cases"], time="date")
    assert schema.dimension_names() == ("state",)
    assert schema.measure_names() == ("cases",)
    assert schema.time_name() == "date"
    assert schema.names == ("date", "state", "cases")


def test_duplicate_names_rejected():
    with pytest.raises(SchemaError):
        Schema([Attribute("x", AttributeKind.DIMENSION), Attribute("x", AttributeKind.MEASURE)])


def test_empty_attribute_name_rejected():
    with pytest.raises(SchemaError):
        Attribute("", AttributeKind.MEASURE)


def test_attribute_lookup_and_contains():
    schema = Schema.build(dimensions=["a"], measures=["m"])
    assert schema.attribute("a").is_dimension
    assert "a" in schema and "m" in schema and "zz" not in schema
    with pytest.raises(SchemaError):
        schema.attribute("zz")


def test_require_time_raises_without_time():
    schema = Schema.build(dimensions=["a"], measures=["m"])
    assert schema.time_name() is None
    with pytest.raises(SchemaError):
        schema.require_time()


def test_require_measure_and_dimension_guards():
    schema = Schema.build(dimensions=["a"], measures=["m"], time="t")
    assert schema.require_measure("m") == "m"
    assert schema.require_dimension("a") == "a"
    with pytest.raises(SchemaError):
        schema.require_measure("a")
    with pytest.raises(SchemaError):
        schema.require_dimension("m")
    with pytest.raises(SchemaError):
        # The time attribute is not a plain dimension.
        schema.require_dimension("t")


def test_project_preserves_order_and_kind():
    schema = Schema.build(dimensions=["a", "b"], measures=["m"], time="t")
    projected = schema.project(["m", "a"])
    assert projected.names == ("m", "a")
    assert projected.attribute("m").is_measure


def test_equality_is_structural():
    left = Schema.build(dimensions=["a"], measures=["m"], time="t")
    right = Schema.build(dimensions=["a"], measures=["m"], time="t")
    assert left == right
    assert left != Schema.build(dimensions=["a"], measures=["m"])
