"""Unit tests for the columnar Relation."""

import numpy as np
import pytest

from repro.exceptions import QueryError, SchemaError
from repro.relation.predicates import Eq
from repro.relation.schema import AttributeKind, Schema
from repro.relation.table import Relation
from tests.conftest import build_relation


@pytest.fixture
def relation():
    return build_relation(
        {"t": ["d1", "d1", "d2", "d2"], "cat": ["a", "b", "a", "b"], "v": [1.0, 2.0, 3.0, 4.0]},
        dimensions=["cat"],
        measures=["v"],
        time="t",
    )


def test_basic_shape(relation):
    assert relation.n_rows == 4
    assert len(relation) == 4
    assert relation.column("v").dtype == np.float64


def test_missing_and_extra_columns_rejected():
    schema = Schema.build(dimensions=["a"], measures=["m"])
    with pytest.raises(SchemaError):
        Relation({"a": ["x"]}, schema)
    with pytest.raises(SchemaError):
        Relation({"a": ["x"], "m": [1.0], "zz": [0]}, schema)


def test_ragged_columns_rejected():
    schema = Schema.build(dimensions=["a"], measures=["m"])
    with pytest.raises(QueryError):
        Relation({"a": ["x", "y"], "m": [1.0]}, schema)


def test_filter_exclude_partition(relation):
    kept = relation.filter(Eq("cat", "a"))
    dropped = relation.exclude(Eq("cat", "a"))
    assert kept.n_rows + dropped.n_rows == relation.n_rows
    assert set(kept.column("cat")) == {"a"}
    assert set(dropped.column("cat")) == {"b"}


def test_from_rows_round_trip(relation):
    rebuilt = Relation.from_rows(relation.to_rows(), relation.schema)
    assert rebuilt.equals(relation)


def test_project_and_with_column(relation):
    projected = relation.project(["cat", "v"])
    assert projected.schema.names == ("cat", "v")
    extended = relation.with_column("w", [1, 1, 2, 2], AttributeKind.DIMENSION)
    assert extended.schema.names == ("t", "cat", "v", "w")
    with pytest.raises(SchemaError):
        relation.with_column("v", [0, 0, 0, 0], AttributeKind.MEASURE)


def test_concat_requires_same_schema(relation):
    doubled = relation.concat(relation)
    assert doubled.n_rows == 8
    other = build_relation({"x": ["q"], "m": [0.0]}, dimensions=["x"], measures=["m"])
    with pytest.raises(SchemaError):
        relation.concat(other)


def test_sort_head_distinct(relation):
    assert relation.sort_by("v").column("v")[0] == 1.0
    assert relation.head(2).n_rows == 2
    assert list(relation.distinct_values("cat")) == ["a", "b"]


def test_encode_and_time_positions(relation):
    codes, values = relation.encode("cat")
    assert list(values) == ["a", "b"]
    assert codes.tolist() == [0, 1, 0, 1]
    positions, labels = relation.time_positions()
    assert labels == ("d1", "d2")
    assert positions.tolist() == [0, 0, 1, 1]


def test_empty_relation():
    schema = Schema.build(dimensions=["a"], measures=["m"], time="t")
    empty = Relation.empty(schema)
    assert empty.n_rows == 0
    assert empty.to_rows() == []


def test_take_with_indices(relation):
    taken = relation.take(np.asarray([2, 0]))
    assert taken.column("v").tolist() == [3.0, 1.0]
