"""Tests for the prepare-once / query-many session API."""

import numpy as np
import pytest

from repro.core.config import ExplainConfig
from repro.core.engine import TSExplain
from repro.core.pipeline import ExplainPipeline
from repro.core.session import ExplainSession, window_relation
from repro.core.streaming import StreamingExplainer
from repro.exceptions import ConfigError, QueryError
from repro.relation.predicates import Conjunction
from tests.conftest import regime_relation, two_attr_relation


def result_fingerprint(result):
    """Byte-exact rendering of everything a result reports."""
    return (
        result.k,
        result.series.labels,
        result.series.values.tobytes(),
        tuple(
            (
                segment.start,
                segment.stop,
                segment.start_label,
                segment.stop_label,
                segment.variance.hex(),
                tuple(
                    (repr(s.explanation), s.gamma.hex(), s.tau)
                    for s in segment.explanations
                ),
            )
            for segment in result.segments
        ),
        result.epsilon,
        result.filtered_epsilon,
        result.total_variance.hex(),
    )


def legacy_windowed_result(relation, measure, explain_by, aggregate, config, start, stop):
    """The pre-session path: filter the relation to the window, rebuild."""
    windowed = window_relation(relation, None, start, stop)
    return ExplainPipeline(
        windowed, measure, explain_by, aggregate=aggregate, config=config
    ).run()


# ----------------------------------------------------------------------
# Cube slicing
# ----------------------------------------------------------------------
class TestSliceTime:
    def test_slices_all_series_and_labels(self, simple_relation):
        session = ExplainSession(simple_relation, "sales", ["cat"])
        cube = session.cube
        sliced = cube.slice_time(3, 9)
        assert sliced.labels == cube.labels[3:10]
        assert np.array_equal(sliced.overall_values, cube.overall_values[3:10])
        assert np.array_equal(sliced.included_values, cube.included_values[:, 3:10])
        assert np.array_equal(sliced.excluded_values, cube.excluded_values[:, 3:10])
        assert sliced.explanations == cube.explanations
        assert np.array_equal(sliced.supports, cube.supports)

    @pytest.mark.parametrize("bounds", [(-1, 5), (5, 5), (9, 3), (0, 24)])
    def test_invalid_bounds_rejected(self, simple_relation, bounds):
        cube = ExplainSession(simple_relation, "sales", ["cat"]).cube
        with pytest.raises(QueryError):
            cube.slice_time(*bounds)


# ----------------------------------------------------------------------
# Windowed queries are byte-identical to the legacy rebuild path
# ----------------------------------------------------------------------
class TestWindowEquivalence:
    @pytest.mark.parametrize("aggregate", ["sum", "count", "avg", "var"])
    @pytest.mark.parametrize("smoothing", [None, 5])
    def test_all_subtractable_aggregates(self, aggregate, smoothing):
        relation = two_attr_relation()
        config = ExplainConfig(
            use_filter=False, k=2, smoothing_window=smoothing
        )
        session = ExplainSession(
            relation, "m", ["a", "b"], aggregate=aggregate, config=config
        )
        windowed = session.explain("t002", "t013")
        legacy = legacy_windowed_result(
            relation, "m", ["a", "b"], aggregate, config, "t002", "t013"
        )
        assert result_fingerprint(windowed) == result_fingerprint(legacy)

    @pytest.mark.parametrize("smoothing", [None, 3])
    def test_with_support_filter(self, smoothing):
        relation = regime_relation()
        config = ExplainConfig(
            use_filter=True, filter_ratio=0.01, k=2, smoothing_window=smoothing
        )
        session = ExplainSession(relation, "sales", ["cat"], config=config)
        windowed = session.explain("t004", "t020")
        legacy = legacy_windowed_result(
            relation, "sales", ["cat"], "sum", config, "t004", "t020"
        )
        assert result_fingerprint(windowed) == result_fingerprint(legacy)

    def test_full_series_matches_plain_pipeline(self, simple_relation):
        config = ExplainConfig(use_filter=False, k=2)
        session = ExplainSession(simple_relation, "sales", ["cat"], config=config)
        legacy = ExplainPipeline(
            simple_relation, "sales", ["cat"], config=config
        ).run()
        assert result_fingerprint(session.explain()) == result_fingerprint(legacy)

    def test_open_ended_windows(self, simple_relation):
        config = ExplainConfig(use_filter=False, k=2)
        session = ExplainSession(simple_relation, "sales", ["cat"], config=config)
        from_start = session.explain(stop="t015")
        assert from_start.series.label_at(0) == "t000"
        assert len(from_start.series) == 16
        to_end = session.explain(start="t010")
        assert to_end.series.label_at(0) == "t010"
        assert len(to_end.series) == 14


# ----------------------------------------------------------------------
# Session lifecycle: prepare once, LRU of derived scorers
# ----------------------------------------------------------------------
class TestSessionReuse:
    def test_prepare_is_idempotent_and_lazy(self, simple_relation):
        session = ExplainSession(simple_relation, "sales", ["cat"], k=2)
        assert not session.prepared
        assert len(session.series()) == 24  # does not force the cube
        assert not session.prepared
        cube = session.cube
        assert session.prepared
        assert session.prepare().cube is cube

    def test_repeated_window_query_hits_scorer_lru(self, simple_relation):
        session = ExplainSession(
            simple_relation, "sales", ["cat"],
            config=ExplainConfig(use_filter=False, k=2),
        )
        first = session.scorer("t006", "t018")
        assert session.scorer("t006", "t018") is first
        # A different run-tier config derives (and caches) a new scorer.
        smoothed = session.scorer(
            "t006", "t018",
            config=session.config.updated(smoothing_window=3),
        )
        assert smoothed is not first
        assert session.scorer("t006", "t018") is first

    def test_lru_evicts_oldest(self, simple_relation):
        session = ExplainSession(
            simple_relation, "sales", ["cat"],
            config=ExplainConfig(use_filter=False, k=2),
            scorer_cache_size=2,
        )
        a = session.scorer("t000", "t005")
        session.scorer("t005", "t010")
        session.scorer("t010", "t015")  # evicts the t000-t005 scorer
        assert session.scorer("t000", "t005") is not a

    def test_scorer_cache_size_validated(self, simple_relation):
        with pytest.raises(QueryError):
            ExplainSession(
                simple_relation, "sales", ["cat"], scorer_cache_size=0
            )

    def test_solver_knobs_share_one_scorer(self, simple_relation):
        session = ExplainSession(
            simple_relation, "sales", ["cat"],
            config=ExplainConfig(use_filter=False),
        )
        session.explain(config=session.config.updated(k=2))
        session.explain(config=session.config.updated(k=3, m=1))
        assert len(session._scorers) == 1  # m/k bind at solve time

    def test_prepare_tier_override_falls_back(self, multi_relation):
        config = ExplainConfig(use_filter=False, k=2)
        session = ExplainSession(multi_relation, "m", ["a", "b"], config=config)
        session.explain()
        override = config.updated(max_order=1)
        result = session.explain(config=override)
        # Only single-attribute candidates can appear.
        assert all(
            len(s.explanation.attributes()) == 1
            for segment in result.segments
            for s in segment.explanations
        )
        assert result_fingerprint(result) == result_fingerprint(
            ExplainPipeline(multi_relation, "m", ["a", "b"], config=override).run()
        )

    def test_per_call_cache_dir_override_still_persists(self, simple_relation, tmp_path):
        # The pre-session facade honored a one-off cache_dir by building a
        # fresh pipeline; the session must not silently skip the store.
        session = ExplainSession(
            simple_relation, "sales", ["cat"],
            config=ExplainConfig(use_filter=False, k=2),
        )
        session.explain()
        session.explain(
            config=ExplainConfig(use_filter=False, k=2, cache_dir=str(tmp_path))
        )
        assert list(tmp_path.glob("*.cube.npz"))

    def test_scorer_rejects_cube_shaping_override(self, multi_relation):
        session = ExplainSession(multi_relation, "m", ["a", "b"], k=2)
        with pytest.raises(QueryError):
            session.scorer(config=session.config.updated(max_order=1))

    def test_window_validation(self, simple_relation):
        session = ExplainSession(simple_relation, "sales", ["cat"], k=2)
        with pytest.raises(QueryError):
            session.explain(start="t010", stop="t010")
        with pytest.raises(QueryError):
            session.explain(start="not-a-label")

    def test_timings_charge_build_to_first_query_only(self, simple_relation):
        # Assert the accounting ledger, not wall-clock inequalities: on a
        # tiny relation the build takes ~1ms, so comparing the warm LRU
        # lookup's wall time against it is scheduler-noise roulette.
        session = ExplainSession(
            simple_relation, "sales", ["cat"],
            config=ExplainConfig(use_filter=False, k=2),
        )
        session.prepare()
        build_seconds = session._prepare_seconds
        assert build_seconds > 0.0
        cold = session.explain("t004", "t020")
        # The first query reports the build and drains the charge ledger...
        assert cold.timings["precomputation"] >= build_seconds
        assert session._prepare_seconds == 0.0
        # ...so no later query can be charged the build again.
        session.explain("t004", "t020")
        assert session._prepare_seconds == 0.0

    def test_diff_first_does_not_swallow_build_time(self, simple_relation):
        # A diff reports no timings, so the cube build must stay charged
        # to the first explain() that follows it.
        session = ExplainSession(
            simple_relation, "sales", ["cat"],
            config=ExplainConfig(use_filter=False, k=2),
        )
        session.diff("t000", "t011")
        build_seconds = session._prepare_seconds
        assert build_seconds > 0.0
        first_explain = session.explain()
        assert first_explain.timings["precomputation"] >= build_seconds

    def test_rollup_cache_integration(self, simple_relation, tmp_path):
        config = ExplainConfig(use_filter=False, k=2, cache_dir=str(tmp_path))
        cold = ExplainSession(simple_relation, "sales", ["cat"], config=config)
        cold.explain()
        assert cold.cache_hit is False
        warm = ExplainSession(simple_relation, "sales", ["cat"], config=config)
        result = warm.explain("t006", "t018")
        assert warm.cache_hit is True  # windows serve from the cached cube
        assert result.series.label_at(0) == "t006"


# ----------------------------------------------------------------------
# diff / top_explanations / recommend on the session
# ----------------------------------------------------------------------
class TestSessionQueries:
    def test_two_point_diff(self, simple_relation):
        session = ExplainSession(
            simple_relation, "sales", ["cat"],
            config=ExplainConfig(use_filter=False, k=2),
        )
        top = session.top_explanations("t000", "t011", m=2)
        assert top[0].explanation == Conjunction.from_items([("cat", "a")])
        assert top[0].tau == 1
        assert top[0].gamma == pytest.approx(44.0)
        assert session.diff("t000", "t011", m=2) == top

    def test_diff_order_validated(self, simple_relation):
        session = ExplainSession(simple_relation, "sales", ["cat"], k=2)
        with pytest.raises(QueryError):
            session.diff("t011", "t000")

    def test_diff_reuses_prepared_scorer(self, simple_relation):
        session = ExplainSession(
            simple_relation, "sales", ["cat"],
            config=ExplainConfig(use_filter=False, k=2),
        )
        session.explain()
        cached = len(session._scorers)
        session.diff("t000", "t011")
        assert len(session._scorers) == cached  # full-range scorer reused

    def test_recommend_does_not_force_prepare(self, multi_relation):
        session = ExplainSession(multi_relation, "m", ["a", "b"])
        scores = session.recommend()
        assert not session.prepared
        assert {score.attribute for score in scores} == {"a", "b"}


# ----------------------------------------------------------------------
# Fluent query builder
# ----------------------------------------------------------------------
class TestExplainQuery:
    def test_window_and_knobs(self, simple_relation):
        session = ExplainSession(
            simple_relation, "sales", ["cat"],
            config=ExplainConfig(use_filter=False),
        )
        result = (session.query()
                  .window("t006", "t018")
                  .metric("absolute-change")
                  .segments(2)
                  .top(1)
                  .run())
        assert result.k == 2
        assert result.series.label_at(0) == "t006"
        assert all(len(s.explanations) <= 1 for s in result.segments)
        assert "t012" in result.cut_labels

    def test_equivalent_to_direct_explain(self, simple_relation):
        session = ExplainSession(
            simple_relation, "sales", ["cat"],
            config=ExplainConfig(use_filter=False),
        )
        built = session.query().window("t006", "t018").segments(2).run()
        direct = session.explain(
            "t006", "t018", config=session.config.updated(k=2)
        )
        assert result_fingerprint(built) == result_fingerprint(direct)

    def test_top_explanations_requires_window(self, simple_relation):
        session = ExplainSession(
            simple_relation, "sales", ["cat"],
            config=ExplainConfig(use_filter=False),
        )
        with pytest.raises(QueryError):
            session.query().top(2).top_explanations()
        top = (session.query().window("t000", "t011").top(2)
               .top_explanations())
        assert top == session.top_explanations("t000", "t011", m=2)

    def test_top_explanations_honors_all_builder_overrides(self, simple_relation):
        session = ExplainSession(
            simple_relation, "sales", ["cat"],
            config=ExplainConfig(use_filter=False),
        )
        default = (session.query().window("t000", "t011")
                   .top_explanations())
        relative = (session.query().window("t000", "t011")
                    .metric("relative-change")
                    .top_explanations())
        assert [s.explanation for s in relative] == [s.explanation for s in default]
        # relative-change normalizes by the overall change, so the scores
        # must differ from the absolute-change ones.
        assert [s.gamma for s in relative] != [s.gamma for s in default]

    def test_invalid_override_rejected_before_running(self, simple_relation):
        session = ExplainSession(simple_relation, "sales", ["cat"])
        with pytest.raises(ConfigError):
            session.query().metric("bogus").run()
        with pytest.raises(ConfigError):
            session.query().variant("bogus").run()

    def test_filtered_and_smoothing_knobs(self, simple_relation):
        session = ExplainSession(simple_relation, "sales", ["cat"])
        query = (session.query().filtered(False).smoothing(3)
                 .configured(k=2))
        config = query.build_config()
        assert not config.use_filter
        assert config.smoothing_window == 3
        assert config.k == 2


# ----------------------------------------------------------------------
# Facade and streaming integration
# ----------------------------------------------------------------------
class TestFacadeDelegation:
    def test_engine_reuses_one_session(self, simple_relation):
        engine = TSExplain(
            simple_relation, "sales", ["cat"],
            config=ExplainConfig(use_filter=False, k=2),
        )
        engine.explain()
        session = engine.session()
        assert session.prepared
        engine.explain("t006", "t018")
        assert engine.session() is session

    def test_engine_windowed_matches_session(self, simple_relation):
        config = ExplainConfig(use_filter=False, k=2)
        engine = TSExplain(simple_relation, "sales", ["cat"], config=config)
        session = ExplainSession(simple_relation, "sales", ["cat"], config=config)
        assert result_fingerprint(engine.explain("t006", "t018")) == (
            result_fingerprint(session.explain("t006", "t018"))
        )

    def test_streaming_session_survives_updates(self):
        initial = regime_relation(n=16, switch=8)
        explainer = StreamingExplainer(
            initial, "sales", ["cat"],
            config=ExplainConfig(use_filter=False),
        )
        explainer.refresh()
        first = explainer.session()
        assert first.prepared
        assert explainer.session() is first  # same snapshot, same session
        extra = regime_relation(n=20, switch=8)
        mask = np.asarray(
            [label >= "t016" for label in extra.column("t")]
        )
        explainer.update(extra.take(mask))
        # The session is long-lived now: updates append into its cube in
        # place instead of opening a new session per snapshot.
        assert explainer.session() is first
        assert first.relation is explainer.relation
        assert first.cube.n_times == 20
        # refresh() is the executable spec: it rebuilds from scratch.
        explainer.refresh()
        assert explainer.session() is not first


class TestWindowRelation:
    def test_matches_label_membership(self, simple_relation):
        windowed = window_relation(simple_relation, None, "t004", "t011")
        labels = set(windowed.column("t"))
        assert labels == {f"t{t:03d}" for t in range(4, 12)}
        assert windowed.n_rows == 8 * 3

    def test_open_bounds_and_identity(self, simple_relation):
        assert window_relation(simple_relation, None, None, None) is simple_relation
        head = window_relation(simple_relation, None, None, "t005")
        assert set(head.column("t")) == {f"t{t:03d}" for t in range(6)}

    def test_degenerate_window_rejected(self, simple_relation):
        with pytest.raises(QueryError):
            window_relation(simple_relation, None, "t005", "t005")


# ----------------------------------------------------------------------
# Thread safety (the serving tier shares sessions across a thread pool)
# ----------------------------------------------------------------------
class TestSessionThreadSafety:
    def test_concurrent_cold_queries_build_one_cube_and_agree(self):
        import threading

        relation = regime_relation()
        session = ExplainSession(relation, "sales", ["cat"], config=ExplainConfig(k=2))
        baseline = result_fingerprint(
            ExplainSession(
                relation, "sales", ["cat"], config=ExplainConfig(k=2)
            ).explain()
        )
        results: list = []
        errors: list = []
        barrier = threading.Barrier(8)

        def query():
            try:
                barrier.wait(timeout=10.0)
                results.append(result_fingerprint(session.explain()))
            except Exception as error:  # pragma: no cover - failure detail
                errors.append(error)

        threads = [threading.Thread(target=query) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors
        assert len(results) == 8
        assert all(result == baseline for result in results)

    def test_concurrent_mixed_windows_match_serial_answers(self):
        import threading

        relation = regime_relation()
        session = ExplainSession(
            relation, "sales", ["cat"], config=ExplainConfig(k=2), scorer_cache_size=2
        )
        session.prepare()
        windows = [(None, None), ("t004", "t020"), ("t000", "t012"), ("t008", "t023")]
        serial = {
            window: result_fingerprint(session.explain(*window)) for window in windows
        }
        outcomes: list = []
        errors: list = []

        def query(window):
            try:
                outcomes.append(
                    (window, result_fingerprint(session.explain(*window)))
                )
            except Exception as error:  # pragma: no cover - failure detail
                errors.append(error)

        threads = [
            threading.Thread(target=query, args=(windows[i % len(windows)],))
            for i in range(12)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors
        assert len(outcomes) == 12
        for window, fingerprint in outcomes:
            assert fingerprint == serial[window]
        # The undersized scorer LRU stayed consistent under the races.
        assert len(session._scorers) <= 2

    def test_append_during_queries_never_corrupts(self):
        """Appends — including late rows *inside* the queried window —
        can never tear an in-flight query: cached scorers are detached
        snapshots of the cube's buffers (``ExplanationCube.detach``), so
        a concurrent re-finalize of existing time columns is invisible to
        solves already running, and the final state matches a one-shot
        session over the grown relation byte for byte."""
        import threading

        from tests.conftest import build_relation

        relation = regime_relation(n=30)
        positions, labels = relation.time_positions(None)
        base = relation.take(positions <= 24)
        deltas = []
        for p in range(25, 30):
            # Each delta extends the axis AND revisits an existing label
            # inside the concurrently queried window [t002, t014].
            late = build_relation(
                {"t": [f"t{p - 15:03d}"], "cat": ["c"], "sales": [0.25]},
                dimensions=["cat"],
                measures=["sales"],
                time="t",
            )
            deltas.append(relation.take(positions == p).concat(late))
        session = ExplainSession(base, "sales", ["cat"], config=ExplainConfig(k=2))
        session.prepare()
        errors: list = []
        stop = threading.Event()

        def query_loop():
            try:
                while not stop.is_set():
                    result = session.explain("t002", "t014")
                    # Internal consistency of each answer: the reported
                    # series is the one the segments were scored on.
                    assert result.series.labels[0] == "t002"
                    assert result.series.labels[-1] == "t014"
            except Exception as error:  # pragma: no cover - failure detail
                errors.append(error)

        thread = threading.Thread(target=query_loop)
        thread.start()
        try:
            for delta in deltas:
                session.append(delta)
        finally:
            stop.set()
            thread.join(timeout=60.0)
        assert not errors
        final = session.explain()
        expected = ExplainSession(
            session.relation, "sales", ["cat"], config=ExplainConfig(k=2)
        ).explain()
        assert result_fingerprint(final) == result_fingerprint(expected)

    def test_cached_scorers_are_detached_from_the_live_cube(self):
        import numpy as np

        session = ExplainSession(
            regime_relation(), "sales", ["cat"], config=ExplainConfig(k=2)
        )
        session.prepare()
        live = session.cube
        for window in ((None, None), ("t004", "t020")):
            for config in (None, ExplainConfig(k=2, use_filter=False)):
                scorer = session.scorer(*window, config=config)
                derived = scorer.cube
                for mine, theirs in (
                    (derived.overall_values, live.overall_values),
                    (derived.included_values, live.included_values),
                    (derived.excluded_values, live.excluded_values),
                    (derived.supports, live.supports),
                ):
                    assert not np.shares_memory(mine, theirs)


class TestEmptyDeltaAppend:
    """Regression: a poll tick with no new rows must touch nothing."""

    def test_prepared_session_empty_append_is_free(self):
        relation = regime_relation()
        session = ExplainSession(relation, "sales", ["cat"], config=ExplainConfig(k=2))
        session.prepare()
        cube = session.cube
        before = result_fingerprint(session.explain())
        scorers = len(session._scorers)
        info = session.append(relation.take(np.arange(0)))
        assert info is not None and info.is_noop
        # No relation concat, no cube drop, no scorer-LRU invalidation.
        assert session.relation is relation
        assert session.cube is cube
        assert len(session._scorers) == scorers
        assert result_fingerprint(session.explain()) == before

    def test_unprepared_session_empty_append_returns_none(self):
        relation = regime_relation()
        session = ExplainSession(relation, "sales", ["cat"], config=ExplainConfig(k=2))
        assert session.append(relation.take(np.arange(0))) is None
        assert session.relation is relation

    def test_empty_append_still_validates_the_schema(self):
        from repro.exceptions import SchemaError
        from repro.relation.schema import Schema
        from repro.relation.table import Relation

        session = ExplainSession(
            regime_relation(), "sales", ["cat"], config=ExplainConfig(k=2)
        )
        session.prepare()
        alien = Relation(
            {"t": [], "region": [], "sales": []},
            Schema.build(dimensions=["region"], measures=["sales"], time="t"),
        )
        with pytest.raises(SchemaError):
            session.append(alien)
