"""Tests for the profiling + perf-regression layer.

Covers the sampling profiler (phase attribution through the tracer's
active-span map, overhead bound, thread safety, report round-trips and
merging), the slow-query auto-capture writer, size-based rotation of
JSON-lines observability files, the live ``/debug/profile`` endpoint
(including the acceptance bound: phase-attributed self time consistent
with the recorded span trees), the BENCH-trajectory regression gate
(:mod:`repro.obs.bench`), and the ``repro obs`` / ``repro bench`` CLI
verbs.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main
from repro.exceptions import QueryError
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.bench import (
    check_trajectory,
    flatten,
    load_trajectory,
    metric_direction,
)
from repro.obs.profile import (
    MAX_HZ,
    ProfileReport,
    SamplingProfiler,
    SlowProfileWriter,
    UNTRACED,
    capture,
    parse_collapsed,
)
from repro.obs.trace import (
    DEFAULT_EXPORT_MAX_BYTES,
    JsonLinesExporter,
    Trace,
    active_phases,
    append_jsonl_rotating,
    rotated_path,
    span,
    start_trace,
)


@pytest.fixture()
def fresh_registry():
    """Swap in an empty process-default metrics registry (ServeApp
    registers its metrics globally; two apps in one process collide)."""
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def _busy_until(event: threading.Event) -> None:
    while not event.is_set():
        sum(i * i for i in range(500))


# ----------------------------------------------------------------------
# Active-span map (the profiler's join surface)
# ----------------------------------------------------------------------
class TestActivePhases:
    def test_innermost_span_wins_and_restores(self):
        ident = threading.get_ident()
        assert ident not in active_phases()
        with start_trace("/req") as trace:
            assert active_phases()[ident] == (trace.trace_id, "/req")
            with span("outer"):
                with span("inner"):
                    assert active_phases()[ident] == (trace.trace_id, "inner")
                assert active_phases()[ident] == (trace.trace_id, "outer")
            assert active_phases()[ident] == (trace.trace_id, "/req")
        assert ident not in active_phases()

    def test_unsampled_traces_stay_invisible(self):
        ident = threading.get_ident()
        with start_trace("/req", sampled=False):
            with span("phase"):
                assert ident not in active_phases()
        assert ident not in active_phases()

    def test_pool_thread_entries_are_per_thread(self):
        """Two threads inside different spans map independently."""
        with start_trace("/req") as trace:
            seen = {}
            barrier = threading.Barrier(3)

            def worker(name, context):
                def run():
                    with span(name):
                        barrier.wait()
                        seen[name] = active_phases()[threading.get_ident()]
                        barrier.wait()

                context.run(run)

            import contextvars

            threads = [
                threading.Thread(
                    target=worker, args=(name, contextvars.copy_context())
                )
                for name in ("alpha", "beta")
            ]
            for thread in threads:
                thread.start()
            barrier.wait()  # both inside their spans
            barrier.wait()
            for thread in threads:
                thread.join()
        assert seen["alpha"] == (trace.trace_id, "alpha")
        assert seen["beta"] == (trace.trace_id, "beta")


# ----------------------------------------------------------------------
# SamplingProfiler
# ----------------------------------------------------------------------
class TestSamplingProfiler:
    def test_phase_attribution(self):
        """A busy-looped span's samples land under its phase."""
        stop = threading.Event()

        def traced_busy():
            with start_trace("/hot"):
                with span("cube-build"):
                    _busy_until(stop)

        thread = threading.Thread(target=traced_busy, daemon=True)
        thread.start()
        try:
            report = capture(0.5, hz=200)
        finally:
            stop.set()
            thread.join()
        assert report.sweeps > 20
        assert report.phase_samples.get("cube-build", 0) > 0
        # The busy thread was inside the span for the whole window: its
        # phase should dominate that thread's samples, and the collapsed
        # output must lead with the phase as the synthetic root.
        build_lines = [
            line
            for line in report.collapsed().splitlines()
            if line.startswith("cube-build;")
        ]
        assert build_lines
        assert any("_busy_until" in line for line in build_lines)

    def test_overhead_under_five_percent(self):
        """Sampling at 100 Hz steals <5% of wall time.

        The profiler's overhead is ``hz * seconds_per_sweep`` — the
        fraction of each second the sampler spends walking frames with
        the lock (and GIL) held — so that product is what the 5% budget
        bounds.  It's measured directly (min-of-N over batched sweeps
        against live busy threads) because an end-to-end wall-clock A/B
        at the 5% level is swamped by machine noise; a separate generous
        wall-clock smoke below catches catastrophic regressions.
        """
        stop = threading.Event()
        threads = [
            threading.Thread(target=_busy_until, args=(stop,), daemon=True)
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        try:
            profiler = SamplingProfiler(hz=100)
            for _ in range(5):
                profiler._sample(set())  # warm caches / name lookups
            best = float("inf")
            for _ in range(5):
                started = time.perf_counter()
                for _ in range(40):
                    profiler._sample(set())
                best = min(best, (time.perf_counter() - started) / 40)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert profiler.report().samples > 0
        overhead = best * 100  # fraction of wall time at 100 sweeps/s
        assert overhead < 0.05, (
            f"sampling at 100 Hz would steal {overhead * 100:.1f}% of wall "
            f"time ({best * 1e6:.0f}us per sweep)"
        )

    def test_overhead_wall_clock_smoke(self):
        """End-to-end catastrophe detector: a profiled workload must not
        blow past its bare wall time (generous bound — machine noise on
        shared CI boxes drowns the true ~2% cost; the precise 5% budget
        is asserted per-sweep above)."""

        def timed():
            started = time.perf_counter()
            total = 0
            for _ in range(40):
                total += sum(i * i for i in range(20000))
            assert total
            return time.perf_counter() - started

        timed()  # warm allocators / code paths
        bare, profiled = float("inf"), float("inf")
        for _ in range(4):
            bare = min(bare, timed())
            profiler = SamplingProfiler(hz=100).start()
            try:
                profiled = min(profiled, timed())
            finally:
                profiler.stop()
        assert profiled <= bare * 1.25 + 0.01, (
            f"profiled workload {profiled * 1e3:.1f}ms vs bare "
            f"{bare * 1e3:.1f}ms"
        )

    def test_thread_safety_under_concurrent_spans(self):
        """Many threads churning spans while the profiler sweeps; the
        report stays internally consistent and every phase seen is real."""
        stop = threading.Event()
        names = [f"phase-{i}" for i in range(4)]

        def churn(name):
            while not stop.is_set():
                with start_trace(f"/{name}"):
                    with span(name):
                        sum(i * i for i in range(200))

        threads = [
            threading.Thread(target=churn, args=(name,), daemon=True)
            for name in names
        ]
        for thread in threads:
            thread.start()
        try:
            with SamplingProfiler(hz=300) as profiler:
                time.sleep(0.4)
                mid = profiler.report()  # snapshot while running
            report = profiler.report()
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert mid.samples <= report.samples
        assert report.samples == sum(report.stacks.values())
        expected = set(names) | {UNTRACED} | {f"/{name}" for name in names}
        assert set(report.phase_samples) <= expected
        assert sum(report.phase_samples.values()) == report.samples

    def test_exclude_threads(self):
        stop = threading.Event()
        thread = threading.Thread(target=_busy_until, args=(stop,), daemon=True)
        thread.start()
        try:
            report = capture(0.3, hz=100, exclude_threads=(thread.ident,))
        finally:
            stop.set()
            thread.join()
        assert not any(
            "_busy_until" in frame for (_p, stack) in report.stacks for frame in stack
        )

    def test_phase_counter_feed(self):
        class Counter:
            def __init__(self):
                self.by_phase = {}

            def inc(self, amount, phase):
                self.by_phase[phase] = self.by_phase.get(phase, 0.0) + amount

        counter = Counter()
        stop = threading.Event()
        thread = threading.Thread(target=_busy_until, args=(stop,), daemon=True)
        thread.start()
        try:
            profiler = SamplingProfiler(hz=100, phase_counter=counter).start()
            time.sleep(0.3)
            report = profiler.stop()
        finally:
            stop.set()
            thread.join()
        assert counter.by_phase
        assert sum(counter.by_phase.values()) == pytest.approx(
            report.samples * (1.0 / report.hz)
        )

    def test_validation(self):
        with pytest.raises(QueryError, match="hz"):
            SamplingProfiler(hz=0)
        with pytest.raises(QueryError, match="hz"):
            SamplingProfiler(hz=MAX_HZ * 2)
        with pytest.raises(QueryError, match="seconds"):
            capture(0)
        profiler = SamplingProfiler(hz=50).start()
        with pytest.raises(QueryError, match="one-shot"):
            profiler.start()
        profiler.stop()


# ----------------------------------------------------------------------
# ProfileReport formats
# ----------------------------------------------------------------------
class TestProfileReport:
    def _report(self):
        stacks = {
            ("score", ("mod.outer", "mod.inner")): 30,
            ("score", ("mod.outer", "mod.other")): 10,
            (UNTRACED, ("threading.wait",)): 20,
        }
        return ProfileReport(hz=100.0, duration_seconds=0.6, sweeps=60, stacks=stacks)

    def test_phase_self_seconds_uses_achieved_interval(self):
        report = self._report()
        assert report.interval_seconds == pytest.approx(0.01)
        self_seconds = report.phase_self_seconds()
        assert self_seconds["score"] == pytest.approx(0.4)
        assert self_seconds[UNTRACED] == pytest.approx(0.2)
        assert list(self_seconds)[0] == "score"  # largest first

    def test_collapsed_and_parse_round_trip(self):
        report = self._report()
        text = report.collapsed()
        assert "score;mod.outer;mod.inner 30" in text.splitlines()
        parsed = parse_collapsed(text)
        assert parsed.stacks == report.stacks

    def test_json_round_trip_and_merge(self):
        report = self._report()
        clone = ProfileReport.from_json(json.loads(json.dumps(report.to_json())))
        assert clone.stacks == report.stacks
        assert clone.sweeps == report.sweeps
        merged = ProfileReport.merge([report, clone])
        assert merged.samples == 2 * report.samples
        assert merged.duration_seconds == pytest.approx(1.2)
        assert merged.stacks[("score", ("mod.outer", "mod.inner"))] == 60

    def test_top_ranks_leaf_frames(self):
        top = self._report().top(2)
        assert top[0][0] == "mod.inner" and top[0][1] == 30
        assert top[0][2] == pytest.approx(0.3)

    def test_parse_collapsed_skips_garbage(self):
        parsed = parse_collapsed("not a stack line\nphase;frame 3\n\nbroken NaNx\n")
        assert parsed.stacks == {("phase", ("frame",)): 3}


# ----------------------------------------------------------------------
# Rotation (JsonLinesExporter + profile files share the policy)
# ----------------------------------------------------------------------
class TestRotation:
    def test_append_jsonl_rotating_bounds_disk(self, tmp_path):
        path = tmp_path / "lines.jsonl"
        line = "x" * 100
        for _ in range(50):
            append_jsonl_rotating(path, line, max_bytes=1000)
        assert path.stat().st_size <= 1000
        rotated = rotated_path(path)
        assert rotated.exists()
        assert rotated.stat().st_size <= 1000
        # Only current + one predecessor, ever.
        assert not rotated_path(rotated).exists()

    def test_exporter_rotates_and_read_survives(self, tmp_path):
        exporter = JsonLinesExporter(tmp_path / "traces.jsonl", max_bytes=2000)
        assert exporter._max_bytes < DEFAULT_EXPORT_MAX_BYTES
        for index in range(60):
            trace = Trace(f"/req-{index}")
            trace.finish()
            assert exporter.export(trace)
        assert exporter.path.stat().st_size <= 2000
        assert exporter.rotated.exists()
        current = JsonLinesExporter.read(exporter.path)
        rotated = JsonLinesExporter.read(exporter.rotated)
        assert current and rotated
        # Newest traces live in the current file, older ones rotated out.
        assert current[-1]["name"] == "/req-59"
        names = [t["name"] for t in rotated] + [t["name"] for t in current]
        assert names == sorted(names, key=lambda n: int(n.rsplit("-", 1)[1]))

    def test_unsampled_traces_never_export(self, tmp_path):
        exporter = JsonLinesExporter(tmp_path / "traces.jsonl")
        assert not exporter.export(Trace("/req", sampled=False))
        assert not exporter.path.exists()


# ----------------------------------------------------------------------
# SlowProfileWriter
# ----------------------------------------------------------------------
class TestSlowProfileWriter:
    def test_capture_writes_entry_keyed_by_trace_id(self, tmp_path):
        writer = SlowProfileWriter(tmp_path / "slowprof.jsonl", seconds=0.15, hz=100)
        stop = threading.Event()
        thread = threading.Thread(target=_busy_until, args=(stop,), daemon=True)
        thread.start()
        try:
            assert writer.maybe_capture("abcd1234", "/explain", 512.5, wait=True)
        finally:
            stop.set()
            thread.join()
        entries = SlowProfileWriter.read(writer.path)
        assert len(entries) == 1 and writer.captures == 1
        entry = entries[0]
        assert entry["trace_id"] == "abcd1234"
        assert entry["path"] == "/explain"
        assert entry["latency_ms"] == 512.5
        report = ProfileReport.from_json(entry)
        assert report.samples > 0

    def test_single_flight(self, tmp_path):
        writer = SlowProfileWriter(tmp_path / "slowprof.jsonl", seconds=0.3, hz=50)
        first = writer.maybe_capture("t1", "/a", 100.0)
        second = writer.maybe_capture("t2", "/b", 100.0)  # still in flight
        assert first and not second
        assert writer.skipped == 1
        deadline = time.time() + 5.0
        while writer.captures < 1 and time.time() < deadline:
            time.sleep(0.02)
        assert SlowProfileWriter.read(writer.path)[0]["trace_id"] == "t1"

    def test_rotation_policy_applies(self, tmp_path):
        writer = SlowProfileWriter(
            tmp_path / "slowprof.jsonl", seconds=0.05, hz=100, max_bytes=600
        )
        for index in range(8):
            assert writer.maybe_capture(f"t{index}", "/x", 50.0, wait=True)
        assert rotated_path(writer.path).exists()
        current = SlowProfileWriter.read(writer.path)
        rotated = SlowProfileWriter.read(rotated_path(writer.path))
        # Old captures rotated out (and at most one predecessor kept);
        # the newest capture always survives in the current file.
        assert current
        assert len(current) + len(rotated) < 8
        assert current[-1]["trace_id"] == "t7"


# ----------------------------------------------------------------------
# Live ServeApp: /debug/profile + --profile-slow + continuous profiler
# ----------------------------------------------------------------------
class TestServeProfile:
    def test_debug_profile_round_trip(self, tmp_path, fresh_registry):
        """The acceptance bound: capture mid-load, and every request-phase's
        profiled self time stays consistent with the span trees the same
        window exported (≤ recorded span duration within sampling error)."""
        from repro.serve.http import make_app

        app = make_app(
            datasets=["covid-total"],
            port=0,
            cache_dir=str(tmp_path / "cache"),
            artifacts=True,
            access_log=False,
            slow_query_ms=0.0,
            profile_slow=True,
            profile_slow_seconds=0.2,
            worker_id="t0",
        ).start()
        try:
            stop = threading.Event()

            def loader():
                while not stop.is_set():
                    try:
                        with urllib.request.urlopen(
                            f"{app.url}/explain?dataset=covid-total"
                        ) as response:
                            response.read()
                    except OSError:
                        pass

            thread = threading.Thread(target=loader, daemon=True)
            thread.start()
            started = time.perf_counter()
            try:
                with urllib.request.urlopen(
                    f"{app.url}/debug/profile?seconds=1.2&hz=200"
                ) as response:
                    window = time.perf_counter() - started
                    assert response.status == 200
                    assert response.headers["Content-Type"].startswith("text/plain")
                    body = response.read().decode("utf-8")
            finally:
                stop.set()
                thread.join()

            report = parse_collapsed(body)
            assert report.samples > 0
            # Collapsed lines are flamegraph.pl-compatible and carry repro
            # frames under real request phases.
            phases = set(report.phase_samples)
            assert phases & {"score", "segment", "cube-build", "prepare", "query:explain"}
            assert any(
                frame.startswith("repro.")
                for (_phase, stack) in report.stacks
                for frame in stack
            )

            # --- acceptance: profiled phase self time vs span trees ----
            # Request-phase samples cannot exceed the wall-clock the span
            # trees actually recorded for that phase during the window
            # (the capture achieved ~hz sweeps over `window` seconds, so
            # one sample ≈ window/sweeps seconds; allow generous error).
            traces = JsonLinesExporter.read(app.trace_export_path)
            span_seconds: dict[str, float] = {}
            for trace in traces:
                for row in trace.get("spans", ()):
                    if row.get("parent") is None or row.get("duration_ms") is None:
                        continue
                    name = row["name"]
                    span_seconds[name] = span_seconds.get(name, 0.0) + (
                        row["duration_ms"] / 1000.0
                    )
            for phase, samples in report.phase_samples.items():
                if phase == UNTRACED or phase.startswith("/"):
                    continue  # server plumbing / root spans
                recorded = span_seconds.get(phase)
                assert recorded is not None, f"profiled phase {phase} never spanned"
                profiled = samples * (1.2 / 200)  # nominal interval
                assert profiled <= recorded * 1.5 + 0.25, (
                    f"{phase}: profiled {profiled:.3f}s vs recorded "
                    f"{recorded:.3f}s over a {window:.2f}s window"
                )

            # --- slow-profile auto-capture landed next to the slow log --
            deadline = time.time() + 5.0
            while not SlowProfileWriter.read(app.slow_profile_path) and time.time() < deadline:
                time.sleep(0.05)
            entries = SlowProfileWriter.read(app.slow_profile_path)
            assert entries, "profile_slow never captured despite threshold 0"
            assert entries[0]["trace_id"]
            assert app.slow_profile_path.parent == app.trace_export_path.parent

            # --- malformed parameters are rejected loudly ---------------
            for query in ("seconds=99", "seconds=abc", "minutes=1"):
                with pytest.raises(urllib.error.HTTPError) as failure:
                    urllib.request.urlopen(f"{app.url}/debug/profile?{query}")
                assert failure.value.code == 400
        finally:
            app.shutdown()

    def test_continuous_profiler_lifecycle(self, tmp_path, fresh_registry):
        from repro.serve.http import make_app

        app = make_app(
            datasets=["covid-total"],
            port=0,
            cache_dir=str(tmp_path / "cache"),
            access_log=False,
            profile_hz=50.0,
            worker_id="t0",
        ).start()
        try:
            assert app.continuous_profiler is not None
            assert app.continuous_profiler.running
            time.sleep(0.2)
            with urllib.request.urlopen(f"{app.url}/metrics") as response:
                scrape = response.read().decode("utf-8")
            assert "repro_profile_phase_self_seconds_total" in scrape
            assert app.continuous_profiler.report().sweeps > 0
        finally:
            app.shutdown()
        assert not app.continuous_profiler.running


# ----------------------------------------------------------------------
# Bench trajectory gate
# ----------------------------------------------------------------------
def _record(p95=10.0, speedup=20.0, bench="b", scale="small"):
    return {
        "bench": bench,
        "scale": scale,
        "git_rev": "abc1234",
        "rows": 1000,
        "warm": {"p95_ms": p95, "p50_ms": 4.0},
        "speedup": speedup,
    }


class TestBenchGate:
    def test_metric_direction(self):
        assert metric_direction("warm.routed_p95_ms") == "lower"
        assert metric_direction("cold.single_scan_lattice_seconds") == "lower"
        assert metric_direction("sweep.0.throughput_rps") == "higher"
        assert metric_direction("scan.cells_per_second") == "higher"
        assert metric_direction("append.speedup") == "higher"
        assert metric_direction("resident_cube_bytes") is None
        assert metric_direction("rows") is None

    def test_flatten_nested_dicts_and_sweep_lists(self):
        flat = flatten(
            {
                "bench": "serve",  # metadata, dropped
                "git_rev": "abc",
                "rows": 100,
                "cold": {"speedup": 2.5},
                "sweep": [{"workers": 1, "p50_ms": 9.0}, {"workers": 2, "p50_ms": 11.0}],
                "ok": True,  # bool, dropped
                "rss": [1.0, 2.0],  # scalar list, dropped
            }
        )
        assert flat["cold.speedup"] == 2.5
        assert flat["sweep.0.p50_ms"] == 9.0
        assert flat["sweep.1.workers"] == 2.0
        assert "ok" not in flat and "bench" not in flat and "rss" not in flat

    def test_latency_spike_fails_and_names_metric(self):
        records = [_record() for _ in range(3)] + [_record(p95=20.0)]
        check = check_trajectory(records, name="t", tolerance=1.5)
        assert not check.ok
        assert [r.metric for r in check.regressions] == ["warm.p95_ms"]
        regression = check.regressions[0]
        assert regression.ratio == pytest.approx(2.0)
        assert "warm.p95_ms" in regression.message()
        # The same spike passes at the default (cross-machine) tolerance.
        assert check_trajectory(records, name="t").ok

    def test_throughput_drop_fails(self):
        records = [_record() for _ in range(3)] + [_record(speedup=5.0)]
        check = check_trajectory(records, name="t", tolerance=1.5)
        assert [r.metric for r in check.regressions] == ["speedup"]

    def test_rolling_median_absorbs_one_outlier(self):
        records = [_record(), _record(p95=100.0), _record(), _record()]
        assert check_trajectory(records, name="t", tolerance=1.5).ok

    def test_groups_by_bench_and_scale(self):
        """Records from another bench/scale never contaminate the median,
        and a legacy record without a bench key is its own group."""
        legacy = {"warm": {"p95_ms": 1000.0}}
        other_scale = _record(p95=1000.0, scale="paper")
        records = [legacy, other_scale, _record(), _record(), _record(p95=11.0)]
        check = check_trajectory(records, name="t", tolerance=1.5)
        assert check.ok and check.history == 2

    def test_min_history_seeds_quietly(self):
        check = check_trajectory([_record(p95=500.0)], name="t", tolerance=1.5)
        assert check.ok and check.history == 0
        assert "seeded" in check.summary()
        strict = check_trajectory(
            [_record(), _record(p95=500.0)], name="t", tolerance=1.5, min_history=3
        )
        assert strict.ok and strict.compared == 0

    def test_sub_millisecond_noise_floor(self):
        records = [_record(p95=0.04) for _ in range(3)] + [_record(p95=0.09)]
        check = check_trajectory(records, name="t", tolerance=1.5)
        assert check.ok and check.skipped >= 1

    def test_load_trajectory_accepts_legacy_dict(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"scale": "small", "p95_ms": 5.0}))
        assert load_trajectory(path) == [{"scale": "small", "p95_ms": 5.0}]
        path.write_text("42")
        with pytest.raises(QueryError):
            load_trajectory(path)

    def test_tolerance_validation(self):
        with pytest.raises(QueryError, match="tolerance"):
            check_trajectory([_record()], tolerance=0.5)
        with pytest.raises(QueryError, match="no records"):
            check_trajectory([])


class TestBenchCli:
    def _write(self, tmp_path, records):
        path = tmp_path / "BENCH_t.json"
        path.write_text(json.dumps(records), encoding="utf-8")
        return path

    def test_check_passes_clean_trajectory(self, tmp_path, capsys):
        self._write(tmp_path, [_record() for _ in range(3)])
        code = main(["bench", "check", "--results-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "bench check OK" in out

    def test_check_fails_on_synthetic_spike(self, tmp_path, capsys):
        """The acceptance criterion: a 2x p95 spike exits non-zero with
        the offending metric named."""
        self._write(tmp_path, [_record() for _ in range(3)] + [_record(p95=20.0)])
        code = main(
            ["bench", "check", "--results-dir", str(tmp_path), "--tolerance", "1.5"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "REGRESSION warm.p95_ms" in captured.out
        assert "FAILED" in captured.err

    def test_check_real_repo_trajectories(self, capsys):
        """The four checked-in BENCH files pass the gate as shipped."""
        results = Path(__file__).resolve().parents[1] / "benchmarks"
        code = main(["bench", "check", "--results-dir", str(results)])
        out = capsys.readouterr().out
        assert code == 0, out
        for name in ("streaming", "lattice", "detect", "serve"):
            assert f"BENCH_{name}.json" in out

    def test_no_files_is_an_error(self, tmp_path, capsys):
        code = main(["bench", "check", "--results-dir", str(tmp_path)])
        assert code == 2
        assert "no BENCH_*.json" in capsys.readouterr().err


class TestObsCli:
    def _seed_obs(self, tmp_path):
        obs = tmp_path / "obs"
        obs.mkdir()
        report = ProfileReport(
            hz=100.0,
            duration_seconds=0.5,
            sweeps=50,
            stacks={
                ("score", ("repro.solver.run", "repro.solver.step")): 40,
                (UNTRACED, ("threading.wait",)): 10,
            },
        )
        entry = {"ts": 1.0, "trace_id": "aaaa", "path": "/explain", "latency_ms": 900.0}
        entry.update(report.to_json())
        (obs / "slowprof-t0.jsonl").write_text(
            json.dumps(entry) + "\n", encoding="utf-8"
        )
        trace = {
            "trace_id": "aaaa",
            "name": "/explain",
            "duration_ms": 900.0,
            "spans": [
                {"id": 0, "parent": None, "name": "/explain", "duration_ms": 900.0},
                {"id": 1, "parent": 0, "name": "score", "duration_ms": 700.0},
            ],
        }
        (obs / "traces-t0.jsonl").write_text(
            json.dumps(trace) + "\n", encoding="utf-8"
        )
        return obs

    def test_top(self, tmp_path, capsys):
        obs = self._seed_obs(tmp_path)
        assert main(["obs", "top", "--obs-dir", str(obs)]) == 0
        out = capsys.readouterr().out
        assert "score" in out
        assert "repro.solver.step" in out

    def test_flame_merges_to_file(self, tmp_path, capsys):
        obs = self._seed_obs(tmp_path)
        out_file = tmp_path / "flame.collapsed"
        assert main(["obs", "flame", "--obs-dir", str(obs), "--out", str(out_file)]) == 0
        text = out_file.read_text(encoding="utf-8")
        assert "score;repro.solver.run;repro.solver.step 40" in text

    def test_traces_summary(self, tmp_path, capsys):
        obs = self._seed_obs(tmp_path)
        assert main(["obs", "traces", "--obs-dir", str(obs)]) == 0
        out = capsys.readouterr().out
        assert "/explain" in out and "aaaa" in out
        assert "score 700.0ms" in out

    def test_empty_inputs_fail_loudly(self, tmp_path, capsys):
        empty = tmp_path / "obs"
        empty.mkdir()
        assert main(["obs", "top", "--obs-dir", str(empty)]) == 1
        assert main(["obs", "traces", "--obs-dir", str(empty)]) == 1
