"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.relation.csvio import write_csv
from tests.conftest import regime_relation


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "kpi.csv"
    write_csv(regime_relation(), path)
    return str(path)


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_explain_csv(capsys, csv_path):
    code, out, _ = run_cli(
        capsys,
        "explain",
        "--csv", csv_path,
        "--time", "t",
        "--dimensions", "cat",
        "--measure", "sales",
        "--k", "2",
        "--vanilla",
    )
    assert code == 0
    assert "cat=a" in out and "cat=b" in out
    assert "K=2" in out


def test_explain_report_styles(capsys, csv_path):
    for report in ("full", "table", "sparklines"):
        code, out, _ = run_cli(
            capsys,
            "explain",
            "--csv", csv_path,
            "--time", "t",
            "--dimensions", "cat",
            "--measure", "sales",
            "--k", "2",
            "--vanilla",
            "--report", report,
        )
        assert code == 0
        assert out.strip()


def test_explain_window(capsys, csv_path):
    code, out, _ = run_cli(
        capsys,
        "explain",
        "--csv", csv_path,
        "--time", "t",
        "--dimensions", "cat",
        "--measure", "sales",
        "--k", "2",
        "--vanilla",
        "--start", "t006",
        "--stop", "t018",
    )
    assert code == 0
    assert "t006" in out


def test_diff_command(capsys, csv_path):
    code, out, _ = run_cli(
        capsys,
        "diff",
        "--csv", csv_path,
        "--time", "t",
        "--dimensions", "cat",
        "--measure", "sales",
        "--start", "t000",
        "--stop", "t011",
    )
    assert code == 0
    assert out.splitlines()[0].startswith("cat=a")


def test_recommend_command(capsys, csv_path):
    code, out, _ = run_cli(
        capsys,
        "recommend",
        "--csv", csv_path,
        "--time", "t",
        "--dimensions", "cat",
        "--measure", "sales",
    )
    assert code == 0
    assert "cat" in out and "coverage=" in out


def test_datasets_command(capsys):
    code, out, _ = run_cli(capsys, "datasets")
    assert code == 0
    for name in ("covid-total", "sp500", "liquor"):
        assert name in out


def test_source_validation_errors(capsys, csv_path):
    # Neither --dataset nor --csv.
    code, _, err = run_cli(capsys, "explain", "--measure", "sales")
    assert code == 2
    assert "error" in err
    # CSV without required column arguments.
    code, _, err = run_cli(capsys, "explain", "--csv", csv_path)
    assert code == 2


def test_explain_dataset_source(capsys):
    code, out, _ = run_cli(
        capsys, "explain", "--dataset", "covid-deaths", "--k", "2"
    )
    assert code == 0
    assert "vaccinated=NO" in out


def test_cache_build_inspect_clear(capsys, csv_path, tmp_path):
    cache_dir = str(tmp_path / "rollups")
    source = (
        "--csv", csv_path,
        "--time", "t",
        "--dimensions", "cat",
        "--measure", "sales",
    )
    code, out, _ = run_cli(capsys, "cache", "build", "--cache-dir", cache_dir, *source)
    assert code == 0
    assert "built and stored" in out
    code, out, _ = run_cli(capsys, "cache", "build", "--cache-dir", cache_dir, *source)
    assert code == 0
    assert "reused existing entry" in out
    code, out, _ = run_cli(capsys, "cache", "inspect", "--cache-dir", cache_dir)
    assert code == 0
    assert "measure=sales" in out and "1 entry" in out
    code, out, _ = run_cli(capsys, "cache", "clear", "--cache-dir", cache_dir)
    assert code == 0
    assert "removed 1" in out
    code, out, _ = run_cli(capsys, "cache", "inspect", "--cache-dir", cache_dir)
    assert code == 0
    assert "empty" in out


def test_cache_build_requires_source(capsys, tmp_path):
    code, _, err = run_cli(capsys, "cache", "build", "--cache-dir", str(tmp_path))
    assert code == 2
    assert "error" in err


def test_explain_with_cache_dir(capsys, csv_path, tmp_path):
    cache_dir = str(tmp_path / "rollups")
    argv = (
        "explain",
        "--csv", csv_path,
        "--time", "t",
        "--dimensions", "cat",
        "--measure", "sales",
        "--k", "2",
        "--cache-dir", cache_dir,
    )
    code, first, _ = run_cli(capsys, *argv)
    assert code == 0
    code, second, _ = run_cli(capsys, *argv)
    assert code == 0
    # The warm run reads the cube from the cache; everything but the
    # latency line must match the cold run verbatim.
    strip = lambda text: [
        line for line in text.splitlines() if "latency=" not in line
    ]
    assert strip(first) == strip(second)


def test_explain_max_order_matches_prewarm(capsys, tmp_path):
    """cache build --max-order N prewarm is served by explain --max-order N."""
    cache_dir = str(tmp_path / "rollups")
    from tests.conftest import two_attr_relation

    path = str(tmp_path / "kpi2.csv")
    write_csv(two_attr_relation(), path)
    source = ("--csv", path, "--time", "t", "--dimensions", "a,b", "--measure", "m")
    code, out, _ = run_cli(
        capsys, "cache", "build", "--cache-dir", cache_dir, "--max-order", "1", *source
    )
    assert code == 0 and "built and stored" in out
    code, _, _ = run_cli(
        capsys, "explain", *source, "--k", "2", "--max-order", "1",
        "--cache-dir", cache_dir,
    )
    assert code == 0
    from repro.cube.cache import RollupCache

    # The explain hit the prewarmed entry instead of adding a second one.
    assert len(RollupCache(cache_dir).entries()) == 1


def test_cache_build_reports_store_failure(capsys, csv_path, tmp_path, monkeypatch):
    """A prewarm that could not persist must not claim success."""
    from repro.cube.cache import RollupCache

    def broken_store(self, key, cube):
        raise OSError("disk full")

    monkeypatch.setattr(RollupCache, "store", broken_store)
    code, out, err = run_cli(
        capsys,
        "cache", "build",
        "--cache-dir", str(tmp_path / "r"),
        "--csv", csv_path,
        "--time", "t",
        "--dimensions", "cat",
        "--measure", "sales",
    )
    assert code == 1
    assert "NOT stored" in err
    assert "built and stored" not in out


def test_version_flag(capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert out.strip() == f"repro {__version__}"


def test_serve_parser_accepts_options():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        [
            "serve",
            "--port", "0",
            "--datasets", "covid-total,sp500",
            "--memory-budget-mb", "256",
            "--ttl", "300",
            "--query-workers", "4",
            "--build-shards", "4",
            "--max-requests", "10",
        ]
    )
    assert args.port == 0 and args.build_shards == 4
    assert args.handler.__name__ == "_command_serve"


def test_serve_rejects_unknown_dataset(capsys):
    code = main(["serve", "--datasets", "no-such-dataset", "--port", "0"])
    assert code == 2
    assert "unknown dataset" in capsys.readouterr().err


def test_serve_rejects_malformed_source_uri(capsys):
    code = main([
        "serve", "--datasets", "csv:kpi.csv?tme=t&measure=v", "--port", "0",
    ])
    err = capsys.readouterr().err
    assert code == 2
    assert "tme" in err  # fails at startup, not per request
