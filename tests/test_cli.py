"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.relation.csvio import write_csv
from tests.conftest import regime_relation


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "kpi.csv"
    write_csv(regime_relation(), path)
    return str(path)


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_explain_csv(capsys, csv_path):
    code, out, _ = run_cli(
        capsys,
        "explain",
        "--csv", csv_path,
        "--time", "t",
        "--dimensions", "cat",
        "--measure", "sales",
        "--k", "2",
        "--vanilla",
    )
    assert code == 0
    assert "cat=a" in out and "cat=b" in out
    assert "K=2" in out


def test_explain_report_styles(capsys, csv_path):
    for report in ("full", "table", "sparklines"):
        code, out, _ = run_cli(
            capsys,
            "explain",
            "--csv", csv_path,
            "--time", "t",
            "--dimensions", "cat",
            "--measure", "sales",
            "--k", "2",
            "--vanilla",
            "--report", report,
        )
        assert code == 0
        assert out.strip()


def test_explain_window(capsys, csv_path):
    code, out, _ = run_cli(
        capsys,
        "explain",
        "--csv", csv_path,
        "--time", "t",
        "--dimensions", "cat",
        "--measure", "sales",
        "--k", "2",
        "--vanilla",
        "--start", "t006",
        "--stop", "t018",
    )
    assert code == 0
    assert "t006" in out


def test_diff_command(capsys, csv_path):
    code, out, _ = run_cli(
        capsys,
        "diff",
        "--csv", csv_path,
        "--time", "t",
        "--dimensions", "cat",
        "--measure", "sales",
        "--start", "t000",
        "--stop", "t011",
    )
    assert code == 0
    assert out.splitlines()[0].startswith("cat=a")


def test_recommend_command(capsys, csv_path):
    code, out, _ = run_cli(
        capsys,
        "recommend",
        "--csv", csv_path,
        "--time", "t",
        "--dimensions", "cat",
        "--measure", "sales",
    )
    assert code == 0
    assert "cat" in out and "coverage=" in out


def test_datasets_command(capsys):
    code, out, _ = run_cli(capsys, "datasets")
    assert code == 0
    for name in ("covid-total", "sp500", "liquor"):
        assert name in out


def test_source_validation_errors(capsys, csv_path):
    # Neither --dataset nor --csv.
    code, _, err = run_cli(capsys, "explain", "--measure", "sales")
    assert code == 2
    assert "error" in err
    # CSV without required column arguments.
    code, _, err = run_cli(capsys, "explain", "--csv", csv_path)
    assert code == 2


def test_explain_dataset_source(capsys):
    code, out, _ = run_cli(
        capsys, "explain", "--dataset", "covid-deaths", "--k", "2"
    )
    assert code == 0
    assert "vaccinated=NO" in out
