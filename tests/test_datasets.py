"""Tests for dataset generators (synthetic suite and real-world sims)."""

import numpy as np
import pytest

from repro.datasets import (
    SNR_LEVELS,
    STATES,
    available_datasets,
    generate_synthetic,
    load_dataset,
    synthetic_suite,
)
from repro.datasets.synthetic import MIN_SEGMENT_LENGTH
from repro.exceptions import QueryError
from repro.relation.groupby import aggregate_over_time


def test_registry():
    assert set(available_datasets()) == {
        "covid-total",
        "covid-daily",
        "sp500",
        "liquor",
        "covid-deaths",
    }
    with pytest.raises(QueryError):
        load_dataset("bogus")


def test_synthetic_determinism():
    first = generate_synthetic(5, 30)
    second = generate_synthetic(5, 30)
    assert first.boundaries == second.boundaries
    assert first.dataset.relation.equals(second.dataset.relation)


def test_synthetic_ground_truth_constraints():
    for seed in range(8):
        data = generate_synthetic(seed, 40)
        gaps = np.diff(data.boundaries)
        assert gaps.min() >= MIN_SEGMENT_LENGTH
        assert 2 <= data.k <= 10
        assert data.boundaries[0] == 0 and data.boundaries[-1] == 99


def test_synthetic_aggregate_is_category_sum():
    data = generate_synthetic(2, 50)
    series = aggregate_over_time(data.dataset.relation, "sales")
    summed = sum(data.category_series.values())
    assert np.allclose(series.values, summed, atol=1e-6)


def test_synthetic_same_shape_across_snr():
    noisy = generate_synthetic(4, 20)
    clean = generate_synthetic(4, 50)
    assert noisy.boundaries == clean.boundaries
    for category in noisy.clean_category_series:
        assert np.allclose(
            noisy.clean_category_series[category],
            clean.clean_category_series[category],
        )


def test_snr_controls_noise_magnitude():
    noisy = generate_synthetic(1, 20)
    clean = generate_synthetic(1, 50)
    def residual(ds):
        return sum(
            float(np.abs(ds.category_series[c] - ds.clean_category_series[c]).mean())
            for c in ds.category_series
        )
    assert residual(noisy) > 10 * residual(clean)


def test_suite_size():
    suite = synthetic_suite(n_datasets=2, snr_levels=(20, 50))
    assert len(suite) == 4
    assert {d.snr_db for d in suite} == {20.0, 50.0}
    assert SNR_LEVELS == (20, 25, 30, 35, 40, 45, 50)


def test_covid_dataset_shape():
    data = load_dataset("covid-total")
    assert len(STATES) == 58
    series = data.series()
    assert len(series) == 345  # 2020-01-22 .. 2020-12-31
    # Cumulative cases are non-decreasing.
    assert np.all(np.diff(series.values) >= 0)


def test_covid_daily_measure():
    data = load_dataset("covid-daily")
    assert data.measure == "daily_confirmed_cases"
    assert data.smoothing_window == 7


def test_sp500_dataset_shape():
    data = load_dataset("sp500")
    relation = data.relation
    assert len(relation.distinct_values("stock")) == 503
    assert len(relation.distinct_values("category")) == 11
    series = data.series()
    # Crash: the minimum is well below the February peak.
    values = series.values
    assert values.min() < 0.75 * values.max()


def test_liquor_dataset_shape():
    data = load_dataset("liquor", n_products=120)
    assert set(data.explain_by) == {
        "bottle_volume_ml",
        "pack",
        "category_name",
        "vendor_name",
    }
    assert len(data.series()) == 128  # business days Jan 2 - Jun 30, 2020 (Table 6: n=128)
    assert data.relation.column("bottles_sold").min() >= 0


def test_covid_deaths_dataset_shape():
    data = load_dataset("covid-deaths")
    series = data.series()
    assert len(series) == 39  # weeks 14..52
    assert series.labels[0] == "2021-W14"


def test_datasets_deterministic():
    first = load_dataset("sp500")
    second = load_dataset("sp500")
    assert first.relation.equals(second.relation)
