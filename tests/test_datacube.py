"""Unit tests for the per-explanation data cube."""

import numpy as np
import pytest

from repro.cube.datacube import ExplanationCube
from repro.exceptions import ExplanationError
from repro.relation.predicates import Conjunction, Eq
from repro.relation.groupby import aggregate_over_time
from tests.conftest import regime_relation


@pytest.fixture
def cube():
    return ExplanationCube(regime_relation(), ["cat"], "sales")


def test_overall_matches_groupby(cube):
    relation = regime_relation()
    expected = aggregate_over_time(relation, "sales")
    assert np.allclose(cube.overall_values, expected.values)
    assert cube.overall_series() == expected


def test_included_plus_excluded_is_overall(cube):
    for index in range(cube.n_explanations):
        assert np.allclose(
            cube.included_values[index] + cube.excluded_values[index],
            cube.overall_values,
        )


def test_included_matches_filtered_groupby(cube):
    relation = regime_relation()
    index = cube.index_of(Conjunction.from_items([("cat", "a")]))
    expected = aggregate_over_time(relation.filter(Eq("cat", "a")), "sales")
    assert np.allclose(cube.included_values[index], expected.values)


def test_signed_contributions_definition(cube):
    """delta(E) == [f(Rt)-f(Rc)] - [f(Rt - sE Rt) - f(Rc - sE Rc)] from rows."""
    relation = regime_relation()
    index = cube.index_of(Conjunction.from_items([("cat", "b")]))
    start, stop = 3, 20
    excluded = aggregate_over_time(relation.exclude(Eq("cat", "b")), "sales")
    expected = (
        cube.overall_values[stop] - cube.overall_values[start]
    ) - (excluded.values[stop] - excluded.values[start])
    got = cube.signed_contributions(start, stop, np.asarray([index]))[0]
    assert got == pytest.approx(expected)


def test_signed_contributions_many_matches_single(cube):
    starts = np.asarray([0, 2, 5])
    stops = np.asarray([4, 9, 23])
    bulk = cube.signed_contributions_many(starts, stops)
    for column, (start, stop) in enumerate(zip(starts, stops)):
        single = cube.signed_contributions(int(start), int(stop))
        assert np.allclose(bulk[:, column], single)


def test_avg_aggregate_cube():
    cube = ExplanationCube(regime_relation(), ["cat"], "sales", aggregate="avg")
    # Excluding one of three categories leaves the average of the others.
    index = cube.index_of(Conjunction.from_items([("cat", "c")]))
    relation = regime_relation()
    excluded = aggregate_over_time(relation.exclude(Eq("cat", "c")), "sales", "avg")
    assert np.allclose(cube.excluded_values[index], excluded.values)


def test_min_aggregate_rejected():
    from repro.exceptions import AggregateError

    with pytest.raises(AggregateError):
        ExplanationCube(regime_relation(), ["cat"], "sales", aggregate="min")


def test_restrict_preserves_alignment(cube):
    keep = np.asarray([0, 2])
    restricted = cube.restrict(keep)
    assert restricted.n_explanations == 2
    assert restricted.explanations[1] == cube.explanations[2]
    assert np.allclose(restricted.included_values[1], cube.included_values[2])
    assert np.allclose(restricted.overall_values, cube.overall_values)


def test_restrict_boolean_mask(cube):
    mask = np.asarray([True, False, True])
    assert cube.restrict(mask).n_explanations == 2


def test_index_of_unknown(cube):
    with pytest.raises(ExplanationError):
        cube.index_of(Conjunction.from_items([("cat", "zz")]))


def test_series_accessor(cube):
    series = cube.series(0)
    assert len(series) == cube.n_times
    assert series.labels == cube.labels


@pytest.mark.parametrize("aggregate", ["sum", "count", "avg", "var"])
def test_columnar_matches_legacy_build(aggregate):
    from tests.conftest import two_attr_relation

    relation = two_attr_relation()
    fast = ExplanationCube(relation, ["a", "b"], "m", aggregate=aggregate)
    slow = ExplanationCube(
        relation, ["a", "b"], "m", aggregate=aggregate, columnar=False
    )
    assert fast.explanations == slow.explanations
    assert np.array_equal(fast.included_values, slow.included_values)
    assert np.array_equal(fast.excluded_values, slow.excluded_values)
    assert np.array_equal(fast.supports, slow.supports)


def test_public_from_arrays_roundtrip(cube):
    clone = ExplanationCube.from_arrays(
        aggregate=cube.aggregate,
        measure=cube.measure,
        explain_by=cube.explain_by,
        labels=cube.labels,
        overall=cube.overall_values,
        explanations=cube.explanations,
        supports=cube.supports,
        included=cube.included_values,
        excluded=cube.excluded_values,
    )
    assert clone.n_explanations == cube.n_explanations
    assert clone.index_of(cube.explanations[0]) == 0
    assert np.array_equal(clone.included_values, cube.included_values)
