"""Tests for evaluation protocols (distance percent, ground-truth rank)."""

import numpy as np
import pytest

from repro.ca.cascade import CascadingAnalysts, DrillDownTree
from repro.cube.datacube import ExplanationCube
from repro.datasets import generate_synthetic
from repro.diff.scorer import SegmentScorer
from repro.evaluation.editdist import cut_displacement, distance_percent
from repro.evaluation.rank import (
    ground_truth_rank,
    relative_metric_ranks,
    variance_design_ranks,
)
from repro.exceptions import SegmentationError
from repro.segmentation.variance import SegmentationCosts
from tests.conftest import regime_relation


def test_distance_percent_zero_for_exact_match():
    assert distance_percent((0, 10, 50, 99), (0, 10, 50, 99), 100) == 0.0


def test_distance_percent_scales_with_displacement():
    near = distance_percent((0, 12, 99), (0, 10, 99), 100)
    far = distance_percent((0, 40, 99), (0, 10, 99), 100)
    assert 0 < near < far


def test_distance_percent_normalization():
    # One cut displaced by 10 over n=100, K=2 -> 100 * 10 / 200 = 5%.
    assert distance_percent((0, 20, 99), (0, 10, 99), 100) == pytest.approx(5.0)


def test_missing_cut_penalized():
    missing = distance_percent((0, 99), (0, 50, 99), 100)
    present = distance_percent((0, 45, 99), (0, 50, 99), 100)
    assert missing > present


def test_extra_cut_penalized():
    extra = distance_percent((0, 30, 50, 99), (0, 50, 99), 100)
    assert extra > 0


def test_cut_displacement_symmetric_count():
    assert cut_displacement((0, 10, 99), (0, 15, 99), 100) == 5.0


def test_invalid_boundaries():
    with pytest.raises(SegmentationError):
        distance_percent((0,), (0, 99), 100)


def test_ground_truth_rank_perfect_on_clean_data():
    relation = regime_relation()
    cube = ExplanationCube(relation, ["cat"], "sales")
    scorer = SegmentScorer(cube)
    solver = CascadingAnalysts(DrillDownTree(cube.explanations), m=3)
    costs = SegmentationCosts(scorer, solver)
    rank = ground_truth_rank(costs, (0, 12, 23), n_samples=200, seed=1)
    assert rank == 1


def test_variance_design_ranks_clean_synthetic():
    data = generate_synthetic(0, 50)
    ranks = variance_design_ranks(data, ("tse", "dist1"), n_samples=300)
    # At SNR 50 every reasonable design should put the truth at rank 1
    # (the paper's Figure 6 shows all metrics at rank 1 for SNR 50).
    assert ranks["tse"] == 1


def test_relative_metric_ranks_orders_and_ties():
    ranks = relative_metric_ranks({"a": 1, "b": 5, "c": 1, "d": 9})
    assert ranks["a"] == ranks["c"] == 1.5
    assert ranks["b"] == 3.0
    assert ranks["d"] == 4.0
