"""Tests for the vectorized SegmentationCosts against the reference path."""

import numpy as np
import pytest

from repro.ca.cascade import CascadingAnalysts, DrillDownTree
from repro.cube.datacube import ExplanationCube
from repro.diff.scorer import SegmentScorer
from repro.exceptions import SegmentationError
from repro.segmentation.distance import VARIANTS, explanation_distance
from repro.segmentation.variance import SegmentationCosts, scheme_total_variance
from tests.conftest import regime_relation, two_attr_relation


def make_parts(relation, explain_by, measure, m=3):
    cube = ExplanationCube(relation, explain_by, measure)
    scorer = SegmentScorer(cube)
    solver = CascadingAnalysts(DrillDownTree(cube.explanations), m=m)
    return scorer, solver


@pytest.fixture(scope="module")
def covid_like():
    return make_parts(regime_relation(), ["cat"], "sales")


@pytest.mark.parametrize("variant", [v for v in VARIANTS if v not in ("allpair", "Sallpair")])
def test_centroid_cost_matches_reference(covid_like, variant):
    """Vectorized centroid costs == sum of reference distances."""
    scorer, solver = covid_like
    costs = SegmentationCosts(scorer, solver, m=3, variant=variant)
    for start, stop in [(0, 4), (3, 9), (10, 16), (0, 23)]:
        centroid = costs.segment_result(start, stop)
        reference = 0.0
        for x in range(start, stop):
            unit = costs.unit_result(x)
            reference += explanation_distance(
                scorer, (start, stop), (x, x + 1), centroid, unit, variant
            )
        assert costs.cost(start, stop) == pytest.approx(reference, abs=1e-9), (
            variant,
            start,
            stop,
        )


@pytest.mark.parametrize("variant", ["allpair", "Sallpair"])
def test_allpair_cost_matches_reference(covid_like, variant):
    scorer, solver = covid_like
    costs = SegmentationCosts(scorer, solver, m=3, variant=variant)
    for start, stop in [(0, 4), (5, 10), (8, 15)]:
        units = [costs.unit_result(x) for x in range(start, stop)]
        pairs = []
        for i in range(len(units)):
            for j in range(i + 1, len(units)):
                pairs.append(
                    explanation_distance(
                        scorer,
                        (start + i, start + i + 1),
                        (start + j, start + j + 1),
                        units[i],
                        units[j],
                        variant,
                    )
                )
        length = stop - start
        expected = 0.0 if not pairs else length * (sum(pairs) / len(pairs))
        assert costs.cost(start, stop) == pytest.approx(expected, abs=1e-9)


def test_unit_cost_zero(covid_like):
    scorer, solver = covid_like
    costs = SegmentationCosts(scorer, solver)
    for x in range(costs.n_points - 1):
        assert costs.cost(x, x + 1) == 0.0


def test_cohesive_segment_low_variance(covid_like):
    """Within-regime variance is far below cross-regime variance."""
    scorer, solver = covid_like
    costs = SegmentationCosts(scorer, solver)
    within = costs.variance(0, 11)
    across = costs.variance(6, 18)
    assert within < across


def test_cost_matrix_marks_length_violations(covid_like):
    scorer, solver = covid_like
    costs = SegmentationCosts(scorer, solver, max_length=4)
    assert np.isinf(costs.cost(0, 10))
    assert np.isfinite(costs.cost(0, 4))


def test_cut_grid_subset(covid_like):
    """Restricting cut positions must not change segment costs.

    The variance is always measured over full-resolution unit objects, so
    a segment between two grid points costs exactly what it costs on the
    full grid (the paper's phase-II semantics, O(m |S|^2 n)).
    """
    scorer, solver = covid_like
    full = SegmentationCosts(scorer, solver)
    grid = np.asarray([0, 6, 12, 23])
    costs = SegmentationCosts(scorer, solver, cut_positions=grid)
    assert costs.n_points == 4
    # Objects stay full resolution.
    unit = costs.unit_result(7)
    assert unit.source_segment == (7, 8)
    # Reduced (1, 2) spans original [6, 12]: identical cost and variance.
    assert costs.cost(1, 2) == pytest.approx(full.cost(6, 12))
    assert costs.variance(1, 2) == pytest.approx(full.variance(6, 12))
    assert np.isfinite(costs.cost(0, 3))


def test_positions_validation(covid_like):
    scorer, solver = covid_like
    with pytest.raises(SegmentationError):
        SegmentationCosts(scorer, solver, cut_positions=np.asarray([5]))
    with pytest.raises(SegmentationError):
        SegmentationCosts(scorer, solver, cut_positions=np.asarray([3, 3, 5]))
    with pytest.raises(SegmentationError):
        SegmentationCosts(scorer, solver, cut_positions=np.asarray([0, 99]))
    with pytest.raises(SegmentationError):
        SegmentationCosts(scorer, solver, variant="nope")


def test_total_cost_and_bounds(covid_like):
    scorer, solver = covid_like
    costs = SegmentationCosts(scorer, solver)
    n = costs.n_points
    total = costs.total_cost([0, 12, n - 1])
    assert total == pytest.approx(costs.cost(0, 12) + costs.cost(12, n - 1))
    with pytest.raises(SegmentationError):
        costs.total_cost([1, 5, n - 1])
    with pytest.raises(SegmentationError):
        costs.cost(5, 5)


def test_segments_restriction(covid_like):
    scorer, solver = covid_like
    costs = SegmentationCosts(scorer, solver, segments=[(0, 12), (12, 23)])
    assert np.isfinite(costs.cost(0, 12))
    assert np.isinf(costs.cost(0, 23))  # not requested


def test_scheme_total_variance_matches_full(covid_like):
    scorer, solver = covid_like
    full = SegmentationCosts(scorer, solver)
    boundaries = [0, 12, full.n_points - 1]
    total, per_segment = scheme_total_variance(scorer, solver, boundaries)
    assert total == pytest.approx(full.total_cost(boundaries))
    assert len(per_segment) == 2
    assert per_segment[0] == pytest.approx(full.variance(0, 12))


def test_multi_attribute_costs_consistent():
    scorer, solver = make_parts(two_attr_relation(), ["a", "b"], "m")
    costs = SegmentationCosts(scorer, solver, m=2)
    centroid = costs.segment_result(0, 7)
    reference = sum(
        explanation_distance(
            scorer, (0, 7), (x, x + 1), centroid, costs.unit_result(x), "tse"
        )
        for x in range(0, 7)
    )
    assert costs.cost(0, 7) == pytest.approx(reference, abs=1e-9)


def test_timings_populated(covid_like):
    scorer, solver = covid_like
    costs = SegmentationCosts(scorer, solver)
    assert costs.timings["cascading"] >= 0.0
    assert costs.timings["segmentation"] >= 0.0
