"""Tests for the K-segmentation dynamic program (Eq. 11)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import SegmentationError
from repro.segmentation.bruteforce import exhaustive_best_segmentation, random_schemes
from repro.segmentation.dp import solve_k_segmentation


def random_cost_matrix(rng: np.random.Generator, n: int) -> np.ndarray:
    cost = np.full((n, n), np.inf)
    for i in range(n):
        cost[i, i] = 0.0
        for j in range(i + 1, n):
            cost[i, j] = float(rng.uniform(0, 10))
    return cost


def test_single_segment():
    cost = random_cost_matrix(np.random.default_rng(0), 5)
    schemes = solve_k_segmentation(cost, k_max=1)
    assert schemes[0].boundaries == (0, 4)
    assert schemes[0].total_cost == pytest.approx(cost[0, 4])


def test_full_resolution_zero_cost():
    n = 6
    cost = np.zeros((n, n))
    schemes = solve_k_segmentation(cost, k_max=n - 1)
    finest = schemes[-1]
    assert finest.k == n - 1
    assert finest.boundaries == tuple(range(n))
    assert finest.total_cost == 0.0


def test_matches_exhaustive_on_random_matrices():
    rng = np.random.default_rng(42)
    for _ in range(10):
        n = int(rng.integers(4, 9))
        cost = random_cost_matrix(rng, n)
        schemes = solve_k_segmentation(cost, k_max=min(4, n - 1))
        for scheme in schemes:
            boundaries, best = exhaustive_best_segmentation(cost, scheme.k)
            assert scheme.total_cost == pytest.approx(best)
            # The DP's scheme must achieve the optimal cost too.
            total = sum(
                cost[a, b] for a, b in zip(scheme.boundaries, scheme.boundaries[1:])
            )
            assert total == pytest.approx(best)


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_dp_optimal_property(data):
    n = data.draw(st.integers(3, 8))
    k = data.draw(st.integers(1, n - 1))
    seed = data.draw(st.integers(0, 10_000))
    cost = random_cost_matrix(np.random.default_rng(seed), n)
    schemes = solve_k_segmentation(cost, k_max=k)
    scheme = schemes[k - 1]
    _, best = exhaustive_best_segmentation(cost, k)
    assert scheme.total_cost == pytest.approx(best)


def test_monotone_in_k_for_superadditive_costs():
    """D(n, K) decreases in K when splitting a segment never hurts.

    Arbitrary matrices need not satisfy this; segment-variance costs do in
    practice (the premise of the K-variance curve).  ``cost = (j - i)^2``
    is superadditive under concatenation, so the property must hold.
    """
    n = 10
    cost = np.zeros((n, n))
    for i in range(n):
        for j in range(i, n):
            cost[i, j] = float((j - i) ** 2)
    schemes = solve_k_segmentation(cost, k_max=9)
    totals = [s.total_cost for s in schemes]
    assert all(b <= a + 1e-9 for a, b in zip(totals, totals[1:]))


def test_max_length_constraint_respected():
    rng = np.random.default_rng(1)
    n = 10
    cost = random_cost_matrix(rng, n)
    # Disallow segments longer than 3 reduced steps.
    for i in range(n):
        for j in range(i + 4, n):
            cost[i, j] = np.inf
    schemes = solve_k_segmentation(cost, k_max=9)
    for scheme in schemes:
        lengths = np.diff(scheme.boundaries)
        assert lengths.max() <= 3


def test_infeasible_constraint_raises():
    n = 10
    cost = np.full((n, n), np.inf)  # nothing allowed
    with pytest.raises(SegmentationError):
        solve_k_segmentation(cost, k_max=2)


def test_k_max_clamped_to_feasible():
    cost = np.zeros((4, 4))
    schemes = solve_k_segmentation(cost, k_max=50)
    assert max(s.k for s in schemes) == 3


def test_validation():
    with pytest.raises(SegmentationError):
        solve_k_segmentation(np.zeros((3, 4)), k_max=1)
    with pytest.raises(SegmentationError):
        solve_k_segmentation(np.zeros((1, 1)), k_max=1)
    with pytest.raises(SegmentationError):
        solve_k_segmentation(np.zeros((4, 4)), k_max=0)


def test_scheme_accessors():
    cost = np.zeros((5, 5))
    scheme = solve_k_segmentation(cost, k_max=2)[1]
    assert scheme.k == 2
    assert scheme.cuts == scheme.boundaries[1:-1]
    assert scheme.segments() == list(zip(scheme.boundaries, scheme.boundaries[1:]))


def test_random_schemes_are_valid():
    rng = np.random.default_rng(0)
    schemes = random_schemes(20, 4, 50, rng)
    for boundaries in schemes:
        assert boundaries[0] == 0 and boundaries[-1] == 19
        assert list(boundaries) == sorted(set(boundaries))
        assert len(boundaries) == 5


def test_random_schemes_enumerate_small_spaces():
    rng = np.random.default_rng(0)
    schemes = random_schemes(6, 2, 1000, rng)
    # interior positions 1..4 -> exactly 4 possible schemes.
    assert len(schemes) == 4
    assert len(set(schemes)) == 4
