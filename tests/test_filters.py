"""Unit tests for the support filter (w filter, section 7.5.1)."""

import numpy as np

from repro.cube.datacube import ExplanationCube
from repro.cube.filters import apply_support_filter, support_filter_mask
from repro.relation.predicates import Conjunction
from tests.conftest import build_relation


def make_cube(tiny_value: float) -> ExplanationCube:
    rows = {"t": [], "cat": [], "v": []}
    for t in range(5):
        for cat, value in (("big", 1000.0), ("mid", 100.0), ("tiny", tiny_value)):
            rows["t"].append(f"t{t}")
            rows["cat"].append(cat)
            rows["v"].append(value)
    relation = build_relation(rows, dimensions=["cat"], measures=["v"], time="t")
    return ExplanationCube(relation, ["cat"], "v")


def test_low_support_candidate_dropped():
    cube = make_cube(tiny_value=0.5)  # 0.5 < 0.001 * 1100.5 everywhere
    mask = support_filter_mask(cube, ratio=0.001)
    dropped = [c for c, keep in zip(cube.explanations, mask) if not keep]
    assert dropped == [Conjunction.from_items([("cat", "tiny")])]
    filtered = apply_support_filter(cube, ratio=0.001)
    assert filtered.n_explanations == 2


def test_candidate_kept_if_any_point_significant():
    # One large day rescues the candidate even if all other days are tiny.
    rows = {"t": [], "cat": [], "v": []}
    for t in range(5):
        rows["t"].append(f"t{t}")
        rows["cat"].append("big")
        rows["v"].append(1000.0)
        rows["t"].append(f"t{t}")
        rows["cat"].append("tiny")
        rows["v"].append(500.0 if t == 3 else 0.01)
    relation = build_relation(rows, dimensions=["cat"], measures=["v"], time="t")
    cube = ExplanationCube(relation, ["cat"], "v")
    assert support_filter_mask(cube, ratio=0.001).all()


def test_zero_ratio_keeps_everything():
    cube = make_cube(tiny_value=0.0)
    # ratio 0 -> threshold 0 -> strict < never true except... |0| < 0 false.
    mask = support_filter_mask(cube, ratio=0.0)
    assert mask.all()


def test_filter_mask_shape():
    cube = make_cube(tiny_value=1.0)
    assert support_filter_mask(cube).shape == (cube.n_explanations,)
