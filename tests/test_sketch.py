"""Tests for the sketching optimization (O2, section 5.3.2)."""

import numpy as np
import pytest

from repro.ca.cascade import CascadingAnalysts, DrillDownTree
from repro.cube.datacube import ExplanationCube
from repro.diff.scorer import SegmentScorer
from repro.exceptions import SegmentationError
from repro.segmentation.sketch import default_sketch_parameters, select_sketch
from tests.conftest import regime_relation


@pytest.fixture(scope="module")
def parts():
    relation = regime_relation(n=40, switch=20)
    cube = ExplanationCube(relation, ["cat"], "sales")
    scorer = SegmentScorer(cube)
    solver = CascadingAnalysts(DrillDownTree(cube.explanations), m=3)
    return scorer, solver


def test_default_parameters_paper_formula():
    length, size = default_sketch_parameters(300)
    assert length == 15  # ceil(0.05 * 300)
    assert size == 60  # 3 * 300 / 15


def test_default_parameters_cap_at_20():
    length, _ = default_sketch_parameters(1000)
    assert length == 20


def test_default_parameters_feasibility():
    for n in (8, 20, 50, 345, 1000):
        length, size = default_sketch_parameters(n)
        assert size * length >= n - 1
        assert size <= n - 1


def test_too_short_series_rejected():
    with pytest.raises(SegmentationError):
        default_sketch_parameters(2)


def test_sketch_includes_endpoints_and_is_sorted(parts):
    scorer, solver = parts
    positions = select_sketch(scorer, solver)
    assert positions[0] == 0
    assert positions[-1] == scorer.cube.n_times - 1
    assert np.all(np.diff(positions) > 0)


def test_sketch_respects_length_cap(parts):
    scorer, solver = parts
    positions = select_sketch(scorer, solver, length_cap=5, size=10)
    assert np.diff(positions).max() <= 5


def test_sketch_contains_true_cut(parts):
    """The regime switch at 20 must survive into the sketch."""
    scorer, solver = parts
    positions = select_sketch(scorer, solver)
    assert 20 in positions.tolist() or 19 in positions.tolist() or 21 in positions.tolist()


def test_infeasible_sketch_parameters_rejected(parts):
    scorer, solver = parts
    with pytest.raises(SegmentationError):
        select_sketch(scorer, solver, length_cap=2, size=3)  # 3*2 < 39


def test_timings_accumulated(parts):
    scorer, solver = parts
    sink: dict[str, float] = {}
    select_sketch(scorer, solver, timings=sink)
    assert set(sink) == {"precompute", "cascading", "segmentation"}
