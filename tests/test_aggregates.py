"""Unit and property tests for decomposable aggregates."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import AggregateError
from repro.relation.aggregates import available_aggregates, get_aggregate

FLOATS = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


def test_registry_contents():
    assert set(available_aggregates()) == {"sum", "count", "avg", "var", "min", "max"}
    with pytest.raises(AggregateError):
        get_aggregate("median")


@pytest.mark.parametrize(
    "name,values,expected",
    [
        ("sum", [1.0, 2.0, 3.0], 6.0),
        ("count", [5.0, 5.0], 2.0),
        ("avg", [2.0, 4.0], 3.0),
        ("var", [1.0, 3.0], 1.0),
        ("min", [3.0, -1.0, 2.0], -1.0),
        ("max", [3.0, -1.0, 2.0], 3.0),
    ],
)
def test_compute_simple(name, values, expected):
    assert get_aggregate(name).compute(np.asarray(values)) == pytest.approx(expected)


@pytest.mark.parametrize("name", ["sum", "count", "avg", "var"])
def test_accumulate_groups_match_per_group_compute(name):
    aggregate = get_aggregate(name)
    values = np.asarray([1.0, 2.0, 3.0, 4.0, 10.0])
    group_ids = np.asarray([0, 1, 0, 1, 2])
    state = aggregate.accumulate(values, group_ids, 3)
    finalized = aggregate.finalize(state)
    for group in range(3):
        expected = aggregate.compute(values[group_ids == group])
        assert finalized[group] == pytest.approx(expected)


@pytest.mark.parametrize("name", ["sum", "count", "avg", "var"])
@given(data=st.data())
def test_subtraction_matches_recomputation(name, data):
    """f(R - sigma_E R) from state subtraction == recomputing from rows."""
    aggregate = get_aggregate(name)
    values = np.asarray(
        data.draw(st.lists(FLOATS, min_size=1, max_size=30)), dtype=np.float64
    )
    mask = np.asarray(
        data.draw(
            st.lists(st.booleans(), min_size=len(values), max_size=len(values))
        )
    )
    everything = np.zeros(len(values), dtype=np.intp)
    total = aggregate.accumulate(values, everything, 1)
    part = aggregate.accumulate(
        values[mask], np.zeros(int(mask.sum()), dtype=np.intp), 1
    )
    derived = aggregate.finalize(aggregate.subtract(total, part))[0]
    expected = aggregate.compute(values[~mask]) if (~mask).any() else 0.0
    # Sum-of-squares state subtraction cancels catastrophically for widely
    # spread values; the achievable accuracy is eps * sum(v^2), so the
    # tolerance scales with the squared magnitude.
    scale = float(np.max(np.abs(values))) if len(values) else 1.0
    tolerance = 1e-12 * max(1.0, scale) ** 2 * len(values) + 1e-9
    assert derived == pytest.approx(expected, rel=1e-6, abs=tolerance)


@pytest.mark.parametrize("name", ["min", "max"])
def test_extremes_not_subtractable(name):
    aggregate = get_aggregate(name)
    assert not aggregate.subtractable
    with pytest.raises(AggregateError):
        aggregate.subtract(aggregate.empty_state(1), aggregate.empty_state(1))


def test_min_max_merge():
    aggregate = get_aggregate("min")
    left = aggregate.accumulate(np.asarray([3.0]), np.asarray([0]), 1)
    right = aggregate.accumulate(np.asarray([1.0]), np.asarray([0]), 1)
    assert aggregate.finalize(aggregate.merge(left, right))[0] == 1.0


def test_empty_groups_finalize_to_zero():
    for name in ("sum", "count", "avg", "var", "min", "max"):
        aggregate = get_aggregate(name)
        out = aggregate.finalize(aggregate.empty_state(2))
        assert out.shape == (2,)
        assert np.all(out == 0.0)


def test_var_never_negative():
    aggregate = get_aggregate("var")
    values = np.asarray([1e6, 1e6, 1e6])
    assert aggregate.compute(values) >= 0.0
