"""Tests for the explanation-agnostic baselines."""

import numpy as np
import pytest

from repro.baselines.base import attach_explanations
from repro.baselines.bottomup import BottomUpSegmenter, interpolation_error
from repro.baselines.fluss import FlussSegmenter, corrected_arc_curve
from repro.baselines.nnsegment import NNSegmenter, novelty_curve
from repro.baselines import all_baselines
from repro.ca.cascade import CascadingAnalysts, DrillDownTree
from repro.cube.datacube import ExplanationCube
from repro.diff.scorer import SegmentScorer
from repro.exceptions import SegmentationError
from tests.conftest import regime_relation


def piecewise(rng=None, breaks=(40, 70), n=100, noise=0.2):
    rng = rng or np.random.default_rng(0)
    xs = [np.linspace(0, 10, breaks[0])]
    xs.append(np.linspace(10, -5, breaks[1] - breaks[0]))
    xs.append(np.linspace(-5, 20, n - breaks[1]))
    values = np.concatenate(xs)
    return values + rng.normal(0, noise, n)


@pytest.mark.parametrize("segmenter", all_baselines(), ids=lambda s: s.name)
def test_boundaries_are_valid(segmenter):
    values = piecewise()
    for k in (1, 2, 3, 5):
        boundaries = segmenter.segment(values, k)
        assert boundaries[0] == 0
        assert boundaries[-1] == len(values) - 1
        assert list(boundaries) == sorted(set(boundaries))
        assert len(boundaries) == k + 1


@pytest.mark.parametrize("segmenter", all_baselines(), ids=lambda s: s.name)
def test_invalid_k_rejected(segmenter):
    with pytest.raises(SegmentationError):
        segmenter.segment(np.zeros(10), 0)
    with pytest.raises(SegmentationError):
        segmenter.segment(np.zeros(10), 10)


def test_bottomup_finds_clear_breaks():
    boundaries = BottomUpSegmenter().segment(piecewise(noise=0.0), 3)
    assert abs(boundaries[1] - 39) <= 2
    assert abs(boundaries[2] - 69) <= 2


def test_interpolation_error_zero_for_line():
    values = np.linspace(0, 9, 10)
    assert interpolation_error(values, 0, 9) == pytest.approx(0.0)
    bent = values.copy()
    bent[5] += 3.0
    assert interpolation_error(bent, 0, 9) > 0


def test_bottomup_full_resolution_identity():
    values = np.asarray([1.0, 5.0, 2.0, 8.0])
    assert BottomUpSegmenter().segment(values, 3) == (0, 1, 2, 3)


def test_corrected_arc_curve_range():
    indices = np.asarray([3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8])
    cac = corrected_arc_curve(indices, window=2)
    assert cac.min() >= 0.0
    assert cac.max() <= 1.0


def test_fluss_dips_at_regime_change():
    # Two alternating regimes with different frequencies.
    t = np.arange(400, dtype=np.float64)
    values = np.where(t < 200, np.sin(t / 4.0), np.sin(t / 20.0))
    boundaries = FlussSegmenter(window=20).segment(values, 2)
    assert abs(boundaries[1] - 200) < 40


def test_novelty_curve_peaks_at_break():
    values = np.concatenate([np.zeros(30), np.linspace(0, 30, 30)])
    scores = novelty_curve(values, window=8)
    assert 22 <= int(np.argmax(scores)) <= 38


def test_nnsegment_detects_break():
    boundaries = NNSegmenter(window=10).segment(piecewise(noise=0.0), 3)
    interior = boundaries[1:-1]
    assert any(abs(c - 39) <= 6 for c in interior)
    assert any(abs(c - 69) <= 6 for c in interior)


def test_attach_explanations_labels_each_segment():
    relation = regime_relation()
    cube = ExplanationCube(relation, ["cat"], "sales")
    scorer = SegmentScorer(cube)
    solver = CascadingAnalysts(DrillDownTree(cube.explanations), m=3)
    segments = attach_explanations(scorer, solver, [0, 12, 23])
    assert len(segments) == 2
    assert repr(segments[0].explanations[0].explanation) == "cat=a"
    assert repr(segments[1].explanations[0].explanation) == "cat=b"
    assert segments[0].start_label == "t000"
